//! Weight initialisation schemes.

use tensor::{Rng, Tensor};

/// Initialisation scheme for a weight tensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// Constant fill.
    Constant(f32),
    /// Uniform in `[-bound, bound]`.
    Uniform(f32),
    /// Glorot/Xavier uniform: `bound = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
    /// He/Kaiming normal: `std = sqrt(2 / fan_in)` — the right choice ahead
    /// of ReLU nonlinearities (all TCN blocks).
    KaimingNormal,
    /// Plain Gaussian with the given standard deviation.
    Normal(f32),
}

impl Init {
    /// Sample a tensor of `shape`. `fan_in`/`fan_out` are taken from the
    /// shape: for matrices `[in, out]`; for conv weights `[out, in, k]`
    /// fan_in = in·k, fan_out = out·k.
    pub fn sample(self, shape: &[usize], rng: &mut Rng) -> Tensor {
        let (fan_in, fan_out) = fans(shape);
        match self {
            Init::Constant(c) => Tensor::full(shape, c),
            Init::Uniform(b) => Tensor::rand_uniform(shape, -b, b, rng),
            Init::XavierUniform => {
                let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
                Tensor::rand_uniform(shape, -bound, bound, rng)
            }
            Init::KaimingNormal => {
                let std = (2.0 / fan_in as f32).sqrt();
                Tensor::rand_normal(shape, 0.0, std, rng)
            }
            Init::Normal(std) => Tensor::rand_normal(shape, 0.0, std, rng),
        }
    }
}

fn fans(shape: &[usize]) -> (usize, usize) {
    match shape.len() {
        0 => (1, 1),
        1 => (shape[0], shape[0]),
        2 => (shape[0], shape[1]),
        // Conv weights [out_ch, in_ch, k].
        3 => (shape[1] * shape[2], shape[0] * shape[2]),
        _ => {
            let receptive: usize = shape[2..].iter().product();
            (shape[1] * receptive, shape[0] * receptive)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_fill() {
        let mut rng = Rng::seed_from(1);
        let t = Init::Constant(0.5).sample(&[3, 3], &mut rng);
        assert!(t.as_slice().iter().all(|&x| x == 0.5));
    }

    #[test]
    fn xavier_bound_respected() {
        let mut rng = Rng::seed_from(2);
        let t = Init::XavierUniform.sample(&[100, 50], &mut rng);
        let bound = (6.0f32 / 150.0).sqrt();
        assert!(t.as_slice().iter().all(|&x| x.abs() <= bound));
        // Values actually spread out, not collapsed near zero.
        let spread = t
            .as_slice()
            .iter()
            .filter(|&&x| x.abs() > bound / 2.0)
            .count();
        assert!(spread > 100);
    }

    #[test]
    fn kaiming_std_is_close() {
        let mut rng = Rng::seed_from(3);
        let t = Init::KaimingNormal.sample(&[4000, 100], &mut rng);
        let std_expected = (2.0f32 / 4000.0).sqrt();
        let var: f64 = t
            .as_slice()
            .iter()
            .map(|&x| (x as f64).powi(2))
            .sum::<f64>()
            / t.len() as f64;
        assert!(((var.sqrt() as f32) - std_expected).abs() < std_expected * 0.1);
    }

    #[test]
    fn conv_fans_use_receptive_field() {
        assert_eq!(fans(&[8, 4, 3]), (12, 24));
        assert_eq!(fans(&[5]), (5, 5));
        assert_eq!(fans(&[2, 7]), (2, 7));
    }
}
