//! Trainable-parameter storage shared by layers, the tape and the optimisers.

use tensor::Tensor;

/// Error raised when a snapshot or named-tensor table does not match the
/// store it is being restored into (wrong length, unknown name, shape
/// mismatch). Restoring mismatched weights would silently corrupt a model,
/// so every import path validates and reports instead of asserting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RestoreError(pub String);

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parameter restore failed: {}", self.0)
    }
}

impl std::error::Error for RestoreError {}

/// Opaque handle to one parameter tensor inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Index into the store (also the index into [`Gradients`]).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Owns every trainable tensor of a model. Layers register parameters at
/// construction and keep only [`ParamId`]s, so the whole model's state lives
/// in one place — simple to snapshot, count and update.
#[derive(Debug, Default, Clone)]
pub struct ParamStore {
    values: Vec<Tensor>,
    names: Vec<String>,
}

impl ParamStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new parameter, returning its handle.
    pub fn register(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        self.values.push(value);
        self.names.push(name.into());
        ParamId(self.values.len() - 1)
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Mutable value (used by the optimisers).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.0]
    }

    /// Diagnostic name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total number of scalar weights across all parameters.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }

    /// Snapshot every value (used to restore the best-validation weights
    /// after early stopping).
    pub fn snapshot(&self) -> Vec<Tensor> {
        self.values.clone()
    }

    /// Restore a snapshot taken with [`ParamStore::snapshot`]. Rejects
    /// snapshots whose length or tensor shapes do not match this store.
    pub fn restore(&mut self, snapshot: &[Tensor]) -> Result<(), RestoreError> {
        if snapshot.len() != self.values.len() {
            return Err(RestoreError(format!(
                "snapshot has {} tensors, store has {}",
                snapshot.len(),
                self.values.len()
            )));
        }
        for (i, s) in snapshot.iter().enumerate() {
            if s.shape() != self.values[i].shape() {
                return Err(RestoreError(format!(
                    "parameter '{}' has shape {:?}, snapshot has {:?}",
                    self.names[i],
                    self.values[i].shape(),
                    s.shape()
                )));
            }
        }
        for (v, s) in self.values.iter_mut().zip(snapshot) {
            *v = s.clone();
        }
        Ok(())
    }

    /// Export every parameter as a `(name, value)` table — the portable
    /// form checkpoint files serialise. Names follow registration order.
    pub fn export_named(&self) -> Vec<(String, Tensor)> {
        self.names
            .iter()
            .cloned()
            .zip(self.values.iter().cloned())
            .collect()
    }

    /// Import a named-tensor table produced by [`ParamStore::export_named`]
    /// on an identically built store. Entries are matched by *name* (not
    /// position), so a checkpoint survives registration-order refactors as
    /// long as layer names stay stable. Every entry must resolve to a
    /// registered parameter of the same shape, every parameter must be
    /// covered exactly once, and nothing is written until the whole table
    /// validates — a failed import leaves the store untouched.
    pub fn import_named(&mut self, entries: &[(String, Tensor)]) -> Result<(), RestoreError> {
        if entries.len() != self.values.len() {
            return Err(RestoreError(format!(
                "checkpoint has {} tensors, store has {}",
                entries.len(),
                self.values.len()
            )));
        }
        let mut resolved = vec![usize::MAX; self.values.len()];
        for (slot, (name, value)) in resolved.iter_mut().zip(entries) {
            let idx = self
                .names
                .iter()
                .position(|n| n == name)
                .ok_or_else(|| RestoreError(format!("unknown parameter '{name}'")))?;
            if value.shape() != self.values[idx].shape() {
                return Err(RestoreError(format!(
                    "parameter '{name}' has shape {:?}, checkpoint has {:?}",
                    self.values[idx].shape(),
                    value.shape()
                )));
            }
            *slot = idx;
        }
        let mut seen = vec![false; self.values.len()];
        for &idx in &resolved {
            if seen[idx] {
                return Err(RestoreError(format!(
                    "duplicate parameter '{}' in checkpoint",
                    self.names[idx]
                )));
            }
            seen[idx] = true;
        }
        for (&idx, (_, value)) in resolved.iter().zip(entries) {
            self.values[idx] = value.clone();
        }
        Ok(())
    }

    /// Iterate over `(id, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Tensor)> {
        self.values.iter().enumerate().map(|(i, t)| (ParamId(i), t))
    }

    /// True when every scalar weight in the store is finite. A store that
    /// fails this check has been poisoned by a diverged update and must be
    /// rolled back before it can serve predictions.
    pub fn all_finite(&self) -> bool {
        self.values.iter().all(Tensor::all_finite)
    }
}

/// Per-parameter gradients produced by one backward pass.
#[derive(Debug, Clone)]
pub struct Gradients {
    by_param: Vec<Option<Tensor>>,
}

impl Gradients {
    pub(crate) fn new(num_params: usize) -> Self {
        Self {
            by_param: vec![None; num_params],
        }
    }

    pub(crate) fn accumulate(&mut self, id: ParamId, grad: &Tensor) {
        match &mut self.by_param[id.0] {
            Some(g) => tensor::ops::axpy(g, 1.0, grad),
            slot @ None => *slot = Some(grad.clone()),
        }
    }

    /// Gradient for a parameter; `None` when the parameter did not
    /// participate in the forward pass.
    pub fn get(&self, id: ParamId) -> Option<&Tensor> {
        self.by_param[id.0].as_ref()
    }

    /// Merge another gradient set into this one (gradient accumulation
    /// across micro-batches).
    pub fn merge(&mut self, other: &Gradients) {
        assert_eq!(self.by_param.len(), other.by_param.len());
        for (i, g) in other.by_param.iter().enumerate() {
            if let Some(g) = g {
                self.accumulate(ParamId(i), g);
            }
        }
    }

    /// Scale all gradients by `s` (e.g. 1/num_micro_batches).
    pub fn scale(&mut self, s: f32) {
        for g in self.by_param.iter_mut().flatten() {
            g.map_inplace(|x| x * s);
        }
    }

    /// Global L2 norm across every gradient element.
    pub fn global_norm(&self) -> f32 {
        let ss: f64 = self
            .by_param
            .iter()
            .flatten()
            .flat_map(|g| g.as_slice())
            .map(|&x| x as f64 * x as f64)
            .sum();
        ss.sqrt() as f32
    }

    /// Clip gradients so the global norm does not exceed `max_norm`
    /// (the standard recipe for stabilising recurrent nets).
    pub fn clip_global_norm(&mut self, max_norm: f32) {
        let norm = self.global_norm();
        if norm > max_norm && norm > 0.0 {
            self.scale(max_norm / norm);
        }
    }

    /// True if every present gradient element is finite.
    pub fn all_finite(&self) -> bool {
        self.by_param.iter().flatten().all(Tensor::all_finite)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::ones(&[2, 3]));
        assert_eq!(store.value(id).shape(), &[2, 3]);
        assert_eq!(store.name(id), "w");
        assert_eq!(store.len(), 1);
        assert_eq!(store.num_scalars(), 6);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::ones(&[4]));
        let snap = store.snapshot();
        store.value_mut(id).map_inplace(|x| x * 5.0);
        assert_eq!(store.value(id).as_slice(), &[5.0; 4]);
        store.restore(&snap).unwrap();
        assert_eq!(store.value(id).as_slice(), &[1.0; 4]);
    }

    #[test]
    fn restore_rejects_length_and_shape_mismatch() {
        let mut store = ParamStore::new();
        store.register("w", Tensor::ones(&[4]));
        assert!(store.restore(&[]).is_err());
        assert!(store.restore(&[Tensor::ones(&[3])]).is_err());
        // A failed restore leaves the original values intact.
        assert_eq!(store.value(ParamId(0)).as_slice(), &[1.0; 4]);
    }

    #[test]
    fn named_export_import_roundtrip() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::ones(&[2, 2]));
        let b = store.register("b", Tensor::zeros(&[2]));
        let exported = store.export_named();
        assert_eq!(exported.len(), 2);
        store.value_mut(w).map_inplace(|x| x + 7.0);
        store.value_mut(b).map_inplace(|x| x - 3.0);
        store.import_named(&exported).unwrap();
        assert_eq!(store.value(w).as_slice(), &[1.0; 4]);
        assert_eq!(store.value(b).as_slice(), &[0.0; 2]);
    }

    #[test]
    fn import_named_matches_by_name_not_position() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::ones(&[2]));
        let b = store.register("b", Tensor::zeros(&[3]));
        // Reversed order relative to registration.
        let table = vec![
            ("b".to_string(), Tensor::full(&[3], 9.0)),
            ("w".to_string(), Tensor::full(&[2], 5.0)),
        ];
        store.import_named(&table).unwrap();
        assert_eq!(store.value(w).as_slice(), &[5.0; 2]);
        assert_eq!(store.value(b).as_slice(), &[9.0; 3]);
    }

    #[test]
    fn import_named_rejects_bad_tables() {
        let mut store = ParamStore::new();
        store.register("w", Tensor::ones(&[2]));
        store.register("b", Tensor::zeros(&[3]));
        // Unknown name.
        let unknown = vec![
            ("w".to_string(), Tensor::ones(&[2])),
            ("nope".to_string(), Tensor::ones(&[3])),
        ];
        assert!(store.import_named(&unknown).is_err());
        // Wrong shape.
        let misshapen = vec![
            ("w".to_string(), Tensor::ones(&[5])),
            ("b".to_string(), Tensor::ones(&[3])),
        ];
        assert!(store.import_named(&misshapen).is_err());
        // Duplicate entry.
        let duplicated = vec![
            ("w".to_string(), Tensor::ones(&[2])),
            ("w".to_string(), Tensor::ones(&[2])),
        ];
        assert!(store.import_named(&duplicated).is_err());
        // Wrong count.
        assert!(store
            .import_named(&[("w".to_string(), Tensor::ones(&[2]))])
            .is_err());
        // Nothing was clobbered by the failed imports.
        assert_eq!(store.value(ParamId(0)).as_slice(), &[1.0; 2]);
        assert_eq!(store.value(ParamId(1)).as_slice(), &[0.0; 3]);
    }

    #[test]
    fn all_finite_detects_poisoned_weights() {
        let mut store = ParamStore::new();
        let id = store.register("w", Tensor::ones(&[3]));
        assert!(store.all_finite());
        store.value_mut(id).map_inplace(|_| f32::NAN);
        assert!(!store.all_finite());
    }

    #[test]
    fn gradients_accumulate() {
        let mut g = Gradients::new(2);
        let id = ParamId(0);
        g.accumulate(id, &Tensor::ones(&[3]));
        g.accumulate(id, &Tensor::full(&[3], 2.0));
        assert_eq!(g.get(id).unwrap().as_slice(), &[3.0; 3]);
        assert!(g.get(ParamId(1)).is_none());
    }

    #[test]
    fn global_norm_and_clipping() {
        let mut g = Gradients::new(1);
        g.accumulate(ParamId(0), &Tensor::from_vec(vec![3.0, 4.0], &[2]));
        assert!((g.global_norm() - 5.0).abs() < 1e-6);
        g.clip_global_norm(1.0);
        assert!((g.global_norm() - 1.0).abs() < 1e-5);
        // Clipping below the threshold is a no-op.
        let mut g2 = Gradients::new(1);
        g2.accumulate(ParamId(0), &Tensor::from_vec(vec![0.3, 0.4], &[2]));
        g2.clip_global_norm(1.0);
        assert!((g2.global_norm() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn merge_and_scale() {
        let mut a = Gradients::new(2);
        a.accumulate(ParamId(0), &Tensor::ones(&[2]));
        let mut b = Gradients::new(2);
        b.accumulate(ParamId(0), &Tensor::full(&[2], 3.0));
        b.accumulate(ParamId(1), &Tensor::ones(&[1]));
        a.merge(&b);
        assert_eq!(a.get(ParamId(0)).unwrap().as_slice(), &[4.0, 4.0]);
        assert_eq!(a.get(ParamId(1)).unwrap().as_slice(), &[1.0]);
        a.scale(0.5);
        assert_eq!(a.get(ParamId(0)).unwrap().as_slice(), &[2.0, 2.0]);
    }
}
