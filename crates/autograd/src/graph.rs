//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] is an append-only tape: every builder method evaluates its
//! result eagerly and records the operation, so the forward pass *is* the
//! graph construction. [`Graph::backward`] then walks the tape in reverse,
//! propagating vector-Jacobian products, and returns per-parameter
//! [`Gradients`]. One graph corresponds to one training step and is dropped
//! afterwards — no retained state, no reference counting.

use tensor::reduce;
use tensor::{matmul, ops, Tensor};

use crate::conv_kernels;
use crate::params::{Gradients, ParamId, ParamStore};

/// Handle to a node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

/// The recorded operation for one tape node.
enum Op {
    /// Constant leaf: data, targets, dropout masks. Receives no gradient.
    Input,
    /// Trainable leaf: gradient flows into the [`ParamStore`] slot.
    Param(ParamId),
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Div(Var, Var),
    MatMul(Var, Var),
    Relu(Var),
    Tanh(Var),
    Sigmoid(Var),
    Exp(Var),
    Sqrt(Var),
    Square(Var),
    Abs(Var),
    Neg(Var),
    Scale(Var, f32),
    // The shift constant is not needed for the backward pass, so it is not
    // stored: d(x + c)/dx = 1.
    AddScalar(Var),
    Reshape(Var),
    SoftmaxRows(Var),
    SliceCols(Var, usize, usize),
    ConcatCols(Vec<Var>),
    SelectTime(Var, usize),
    SumAll(Var),
    MeanAll(Var),
    SumAxisKeepdim(Var, usize),
    /// Elementwise product with a constant mask (dropout).
    MulMask(Var, Tensor),
    /// Dilated causal 1-D convolution (see [`conv_kernels`]).
    Conv1d {
        x: Var,
        w: Var,
        dilation: usize,
    },
    /// Elementwise Huber penalty applied to a difference tensor.
    HuberOnDiff(Var, f32),
}

struct Node {
    value: Tensor,
    op: Op,
}

/// The autodiff tape. Borrows the parameter store immutably: parameter
/// *values* are read during construction, and gradients are returned as a
/// separate [`Gradients`] object so the caller can hand them to an optimiser.
pub struct Graph<'s> {
    store: &'s ParamStore,
    nodes: Vec<Node>,
}

impl<'s> Graph<'s> {
    pub fn new(store: &'s ParamStore) -> Self {
        Self {
            store,
            nodes: Vec::with_capacity(64),
        }
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// Current value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Number of nodes on the tape.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    // ---- leaves -----------------------------------------------------------

    /// Add a constant leaf (input data, targets, masks).
    pub fn input(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Input)
    }

    /// Add a trainable-parameter leaf.
    pub fn param(&mut self, id: ParamId) -> Var {
        let value = self.store.value(id).clone();
        self.push(value, Op::Param(id))
    }

    // ---- binary broadcasting ops -------------------------------------------

    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = ops::add(self.value(a), self.value(b));
        self.push(v, Op::Add(a, b))
    }

    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = ops::sub(self.value(a), self.value(b));
        self.push(v, Op::Sub(a, b))
    }

    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = ops::mul(self.value(a), self.value(b));
        self.push(v, Op::Mul(a, b))
    }

    pub fn div(&mut self, a: Var, b: Var) -> Var {
        let v = ops::div(self.value(a), self.value(b));
        self.push(v, Op::Div(a, b))
    }

    /// `[m, k] · [k, n]` matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = matmul::matmul(self.value(a), self.value(b));
        self.push(v, Op::MatMul(a, b))
    }

    // ---- unary ops ---------------------------------------------------------

    pub fn relu(&mut self, a: Var) -> Var {
        let v = ops::relu(self.value(a));
        self.push(v, Op::Relu(a))
    }

    pub fn tanh(&mut self, a: Var) -> Var {
        let v = ops::tanh(self.value(a));
        self.push(v, Op::Tanh(a))
    }

    pub fn sigmoid(&mut self, a: Var) -> Var {
        let v = ops::sigmoid(self.value(a));
        self.push(v, Op::Sigmoid(a))
    }

    pub fn exp(&mut self, a: Var) -> Var {
        let v = ops::exp(self.value(a));
        self.push(v, Op::Exp(a))
    }

    pub fn sqrt(&mut self, a: Var) -> Var {
        let v = ops::sqrt(self.value(a));
        self.push(v, Op::Sqrt(a))
    }

    pub fn square(&mut self, a: Var) -> Var {
        let v = ops::square(self.value(a));
        self.push(v, Op::Square(a))
    }

    pub fn abs(&mut self, a: Var) -> Var {
        let v = ops::abs(self.value(a));
        self.push(v, Op::Abs(a))
    }

    pub fn neg(&mut self, a: Var) -> Var {
        let v = ops::neg(self.value(a));
        self.push(v, Op::Neg(a))
    }

    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let v = ops::scale(self.value(a), c);
        self.push(v, Op::Scale(a, c))
    }

    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let v = ops::add_scalar(self.value(a), c);
        self.push(v, Op::AddScalar(a))
    }

    // ---- shape ops ---------------------------------------------------------

    pub fn reshape(&mut self, a: Var, shape: &[usize]) -> Var {
        let v = self
            .value(a)
            .reshape(shape)
            .expect("graph reshape: bad shape");
        self.push(v, Op::Reshape(a))
    }

    /// Columns `[from, to)` of a rank-2 node.
    pub fn slice_cols(&mut self, a: Var, from: usize, to: usize) -> Var {
        let src = self.value(a);
        assert_eq!(src.rank(), 2, "slice_cols requires rank-2");
        let (m, n) = (src.shape()[0], src.shape()[1]);
        assert!(
            from < to && to <= n,
            "slice_cols range {from}..{to} out of {n}"
        );
        let width = to - from;
        let mut out = vec![0.0f32; m * width];
        for i in 0..m {
            out[i * width..(i + 1) * width]
                .copy_from_slice(&src.as_slice()[i * n + from..i * n + to]);
        }
        self.push(
            Tensor::from_vec(out, &[m, width]),
            Op::SliceCols(a, from, to),
        )
    }

    /// Concatenate rank-2 nodes with equal row counts along the column axis.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols of nothing");
        let m = self.value(parts[0]).shape()[0];
        let total: usize = parts.iter().map(|&p| self.value(p).shape()[1]).sum();
        let mut out = vec![0.0f32; m * total];
        let mut offset = 0;
        for &p in parts {
            let t = self.value(p);
            assert_eq!(t.rank(), 2, "concat_cols requires rank-2 parts");
            assert_eq!(t.shape()[0], m, "concat_cols row mismatch");
            let w = t.shape()[1];
            for i in 0..m {
                out[i * total + offset..i * total + offset + w]
                    .copy_from_slice(&t.as_slice()[i * w..(i + 1) * w]);
            }
            offset += w;
        }
        self.push(
            Tensor::from_vec(out, &[m, total]),
            Op::ConcatCols(parts.to_vec()),
        )
    }

    /// Time slice `t` of a `[batch, channels, time]` node, yielding
    /// `[batch, channels]`.
    pub fn select_time(&mut self, a: Var, t: usize) -> Var {
        let src = self.value(a);
        assert_eq!(src.rank(), 3, "select_time requires [batch, ch, time]");
        let (b, c, time) = (src.shape()[0], src.shape()[1], src.shape()[2]);
        assert!(t < time, "select_time {t} out of {time}");
        let mut out = vec![0.0f32; b * c];
        for bi in 0..b {
            for ci in 0..c {
                out[bi * c + ci] = src.as_slice()[(bi * c + ci) * time + t];
            }
        }
        self.push(Tensor::from_vec(out, &[b, c]), Op::SelectTime(a, t))
    }

    // ---- reductions --------------------------------------------------------

    /// Scalar sum of all elements.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(reduce::sum(self.value(a)));
        self.push(v, Op::SumAll(a))
    }

    /// Scalar mean of all elements.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let v = Tensor::scalar(reduce::mean(self.value(a)));
        self.push(v, Op::MeanAll(a))
    }

    /// Sum along `axis`, keeping that axis with size 1.
    pub fn sum_axis_keepdim(&mut self, a: Var, axis: usize) -> Var {
        let reduced = reduce::sum_axis(self.value(a), axis);
        let mut shape = self.value(a).shape().to_vec();
        shape[axis] = 1;
        let v = reduced.into_reshape(&shape).expect("keepdim reshape");
        self.push(v, Op::SumAxisKeepdim(a, axis))
    }

    /// Row-wise softmax of a rank-2 node.
    pub fn softmax_rows(&mut self, a: Var) -> Var {
        let v = reduce::softmax_rows(self.value(a));
        self.push(v, Op::SoftmaxRows(a))
    }

    // ---- special ops -------------------------------------------------------

    /// Elementwise product with a fixed mask; the mask receives no gradient.
    /// This is how dropout enters the tape.
    pub fn mul_mask(&mut self, a: Var, mask: Tensor) -> Var {
        let v = ops::mul(self.value(a), &mask);
        self.push(v, Op::MulMask(a, mask))
    }

    /// Dilated causal convolution; see [`conv_kernels::conv1d_forward`].
    pub fn conv1d(&mut self, x: Var, w: Var, dilation: usize) -> Var {
        let v = conv_kernels::conv1d_forward(self.value(x), self.value(w), dilation);
        self.push(v, Op::Conv1d { x, w, dilation })
    }

    /// Elementwise Huber penalty of a difference tensor with threshold
    /// `delta`; combine with [`Graph::mean_all`] for the usual loss.
    pub fn huber_on_diff(&mut self, diff: Var, delta: f32) -> Var {
        assert!(delta > 0.0);
        let v = self.value(diff).map(|d| {
            if d.abs() <= delta {
                0.5 * d * d
            } else {
                delta * (d.abs() - 0.5 * delta)
            }
        });
        self.push(v, Op::HuberOnDiff(diff, delta))
    }

    // ---- backward ----------------------------------------------------------

    /// Reverse-mode sweep from the scalar node `loss`. Returns gradients for
    /// every parameter that participated in the tape.
    ///
    /// # Panics
    /// Panics when `loss` is not a single-element tensor.
    pub fn backward(self, loss: Var) -> Gradients {
        assert_eq!(
            self.nodes[loss.0].value.len(),
            1,
            "backward requires a scalar loss, got shape {:?}",
            self.nodes[loss.0].value.shape()
        );
        let n = self.nodes.len();
        let mut grads: Vec<Option<Tensor>> = (0..n).map(|_| None).collect();
        grads[loss.0] = Some(Tensor::full(self.nodes[loss.0].value.shape(), 1.0));
        let mut out = Gradients::new(self.store.len());

        for i in (0..n).rev() {
            let g = match grads[i].take() {
                Some(g) => g,
                None => continue,
            };
            let node = &self.nodes[i];
            match &node.op {
                Op::Input => {}
                Op::Param(id) => out.accumulate(*id, &g),
                Op::Add(a, b) => {
                    accumulate(&mut grads, *a, reduce_grad_to(&g, self.shape_of(*a)));
                    accumulate(&mut grads, *b, reduce_grad_to(&g, self.shape_of(*b)));
                }
                Op::Sub(a, b) => {
                    accumulate(&mut grads, *a, reduce_grad_to(&g, self.shape_of(*a)));
                    accumulate(
                        &mut grads,
                        *b,
                        reduce_grad_to(&ops::neg(&g), self.shape_of(*b)),
                    );
                }
                Op::Mul(a, b) => {
                    let ga = ops::mul(&g, &self.nodes[b.0].value);
                    let gb = ops::mul(&g, &self.nodes[a.0].value);
                    accumulate(&mut grads, *a, reduce_grad_to(&ga, self.shape_of(*a)));
                    accumulate(&mut grads, *b, reduce_grad_to(&gb, self.shape_of(*b)));
                }
                Op::Div(a, b) => {
                    let bv = &self.nodes[b.0].value;
                    let ga = ops::div(&g, bv);
                    // d/db (a/b) = -a / b^2
                    let gb = ops::neg(&ops::div(
                        &ops::mul(&g, &self.nodes[a.0].value),
                        &ops::square(bv),
                    ));
                    accumulate(&mut grads, *a, reduce_grad_to(&ga, self.shape_of(*a)));
                    accumulate(&mut grads, *b, reduce_grad_to(&gb, self.shape_of(*b)));
                }
                Op::MatMul(a, b) => {
                    let ga = matmul::matmul_a_bt(&g, &self.nodes[b.0].value);
                    let gb = matmul::matmul_at_b(&self.nodes[a.0].value, &g);
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::Relu(a) => {
                    let xa = &self.nodes[a.0].value;
                    let ga = Tensor::from_vec(
                        g.as_slice()
                            .iter()
                            .zip(xa.as_slice())
                            .map(|(&gv, &xv)| if xv > 0.0 { gv } else { 0.0 })
                            .collect(),
                        xa.shape(),
                    );
                    accumulate(&mut grads, *a, ga);
                }
                Op::Tanh(a) => {
                    // dx = g * (1 - y^2), using the cached output y.
                    let y = &node.value;
                    let ga = ops::mul(&g, &y.map(|v| 1.0 - v * v));
                    accumulate(&mut grads, *a, ga);
                }
                Op::Sigmoid(a) => {
                    let y = &node.value;
                    let ga = ops::mul(&g, &y.map(|v| v * (1.0 - v)));
                    accumulate(&mut grads, *a, ga);
                }
                Op::Exp(a) => {
                    accumulate(&mut grads, *a, ops::mul(&g, &node.value));
                }
                Op::Sqrt(a) => {
                    // dx = g / (2*sqrt(x)); guard the origin.
                    let y = &node.value;
                    let ga = ops::mul(&g, &y.map(|v| 0.5 / v.max(1e-12)));
                    accumulate(&mut grads, *a, ga);
                }
                Op::Square(a) => {
                    let xa = &self.nodes[a.0].value;
                    let ga = ops::mul(&g, &xa.map(|v| 2.0 * v));
                    accumulate(&mut grads, *a, ga);
                }
                Op::Abs(a) => {
                    let xa = &self.nodes[a.0].value;
                    let ga = ops::mul(&g, &xa.map(|v| if v >= 0.0 { 1.0 } else { -1.0 }));
                    accumulate(&mut grads, *a, ga);
                }
                Op::Neg(a) => accumulate(&mut grads, *a, ops::neg(&g)),
                Op::Scale(a, c) => accumulate(&mut grads, *a, ops::scale(&g, *c)),
                Op::AddScalar(a) => accumulate(&mut grads, *a, g),
                Op::Reshape(a) => {
                    let target = self.shape_of(*a).to_vec();
                    accumulate(
                        &mut grads,
                        *a,
                        g.into_reshape(&target).expect("reshape grad"),
                    );
                }
                Op::SoftmaxRows(a) => {
                    // dx_ij = y_ij * (g_ij - sum_k g_ik y_ik)
                    let y = &node.value;
                    let (m, ncols) = (y.shape()[0], y.shape()[1]);
                    let mut ga = vec![0.0f32; m * ncols];
                    for r in 0..m {
                        let yr = &y.as_slice()[r * ncols..(r + 1) * ncols];
                        let gr = &g.as_slice()[r * ncols..(r + 1) * ncols];
                        let dot: f64 = yr
                            .iter()
                            .zip(gr)
                            .map(|(&yv, &gv)| yv as f64 * gv as f64)
                            .sum();
                        for c in 0..ncols {
                            ga[r * ncols + c] = yr[c] * (gr[c] - dot as f32);
                        }
                    }
                    accumulate(&mut grads, *a, Tensor::from_vec(ga, &[m, ncols]));
                }
                Op::SliceCols(a, from, to) => {
                    let pshape = self.shape_of(*a);
                    let (m, ncols) = (pshape[0], pshape[1]);
                    let width = to - from;
                    let mut ga = Tensor::zeros(pshape);
                    for r in 0..m {
                        ga.as_mut_slice()[r * ncols + from..r * ncols + to]
                            .copy_from_slice(&g.as_slice()[r * width..(r + 1) * width]);
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::ConcatCols(parts) => {
                    let m = node.value.shape()[0];
                    let total = node.value.shape()[1];
                    let mut offset = 0;
                    for &p in parts {
                        let w = self.shape_of(p)[1];
                        let mut gp = vec![0.0f32; m * w];
                        for r in 0..m {
                            gp[r * w..(r + 1) * w].copy_from_slice(
                                &g.as_slice()[r * total + offset..r * total + offset + w],
                            );
                        }
                        accumulate(&mut grads, p, Tensor::from_vec(gp, &[m, w]));
                        offset += w;
                    }
                }
                Op::SelectTime(a, t) => {
                    let pshape = self.shape_of(*a);
                    let (b, c, time) = (pshape[0], pshape[1], pshape[2]);
                    let mut ga = Tensor::zeros(pshape);
                    for bi in 0..b {
                        for ci in 0..c {
                            ga.as_mut_slice()[(bi * c + ci) * time + t] = g.as_slice()[bi * c + ci];
                        }
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::SumAll(a) => {
                    let ga = Tensor::full(self.shape_of(*a), g.item());
                    accumulate(&mut grads, *a, ga);
                }
                Op::MeanAll(a) => {
                    let n_elems = self.nodes[a.0].value.len().max(1) as f32;
                    let ga = Tensor::full(self.shape_of(*a), g.item() / n_elems);
                    accumulate(&mut grads, *a, ga);
                }
                Op::SumAxisKeepdim(a, _axis) => {
                    let ga = g.broadcast_to(self.shape_of(*a)).expect("keepdim grad");
                    accumulate(&mut grads, *a, ga);
                }
                Op::MulMask(a, mask) => {
                    accumulate(&mut grads, *a, ops::mul(&g, mask));
                }
                Op::Conv1d { x, w, dilation } => {
                    let gx = conv_kernels::conv1d_backward_input(
                        &g,
                        &self.nodes[w.0].value,
                        self.shape_of(*x),
                        *dilation,
                    );
                    let kernel = self.shape_of(*w)[2];
                    let gw = conv_kernels::conv1d_backward_weight(
                        &g,
                        &self.nodes[x.0].value,
                        kernel,
                        *dilation,
                    );
                    accumulate(&mut grads, *x, gx);
                    accumulate(&mut grads, *w, gw);
                }
                Op::HuberOnDiff(a, delta) => {
                    let d = &self.nodes[a.0].value;
                    let ga = ops::mul(&g, &d.map(|v| v.clamp(-*delta, *delta)));
                    accumulate(&mut grads, *a, ga);
                }
            }
        }
        out
    }

    fn shape_of(&self, v: Var) -> &[usize] {
        self.nodes[v.0].value.shape()
    }
}

fn accumulate(grads: &mut [Option<Tensor>], v: Var, g: Tensor) {
    match &mut grads[v.0] {
        Some(existing) => ops::axpy(existing, 1.0, &g),
        slot @ None => *slot = Some(g),
    }
}

/// Collapse a gradient back to the (possibly broadcast) shape of its source:
/// sum over prepended axes, then over axes the source held with size 1.
fn reduce_grad_to(grad: &Tensor, target: &[usize]) -> Tensor {
    if grad.shape() == target {
        return grad.clone();
    }
    let mut g = grad.clone();
    while g.rank() > target.len() {
        g = reduce::sum_axis(&g, 0);
    }
    for axis in 0..target.len() {
        if target[axis] == 1 && g.shape()[axis] != 1 {
            let mut keep = g.shape().to_vec();
            keep[axis] = 1;
            g = reduce::sum_axis(&g, axis)
                .into_reshape(&keep)
                .expect("reduce_grad_to");
        }
    }
    debug_assert_eq!(g.shape(), target);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::Rng;

    fn store_with(values: &[(&str, Tensor)]) -> (ParamStore, Vec<ParamId>) {
        let mut store = ParamStore::new();
        let ids = values
            .iter()
            .map(|(n, t)| store.register(*n, t.clone()))
            .collect();
        (store, ids)
    }

    #[test]
    fn gradient_of_squared_param() {
        // L = mean((w)^2), w = [1, 2, 3] => dL/dw = 2w/3.
        let (store, ids) = store_with(&[("w", Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]))]);
        let mut g = Graph::new(&store);
        let w = g.param(ids[0]);
        let sq = g.square(w);
        let loss = g.mean_all(sq);
        let grads = g.backward(loss);
        let gw = grads.get(ids[0]).unwrap();
        assert!(gw.allclose(
            &Tensor::from_vec(vec![2.0 / 3.0, 4.0 / 3.0, 2.0], &[3]),
            1e-6
        ));
    }

    #[test]
    fn gradient_through_matmul_and_bias() {
        // L = sum(x·W + b); dW = xᵀ·1, db = column sums of ones.
        let (store, ids) = store_with(&[
            (
                "w",
                Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]),
            ),
            ("b", Tensor::from_vec(vec![0.1, 0.2, 0.3], &[3])),
        ]);
        let mut g = Graph::new(&store);
        let x = g.input(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]));
        let w = g.param(ids[0]);
        let b = g.param(ids[1]);
        let xw = g.matmul(x, w);
        let y = g.add(xw, b);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        // dW[i][j] = sum_batch x[batch][i]
        let gw = grads.get(ids[0]).unwrap();
        assert!(gw.allclose(
            &Tensor::from_vec(vec![4.0, 4.0, 4.0, 6.0, 6.0, 6.0], &[2, 3]),
            1e-5
        ));
        let gb = grads.get(ids[1]).unwrap();
        assert!(gb.allclose(&Tensor::from_vec(vec![2.0, 2.0, 2.0], &[3]), 1e-6));
    }

    #[test]
    fn chain_rule_through_activations() {
        // L = sum(tanh(w)); dL/dw = 1 - tanh(w)^2.
        let (store, ids) = store_with(&[("w", Tensor::from_vec(vec![0.5, -1.0], &[2]))]);
        let mut g = Graph::new(&store);
        let w = g.param(ids[0]);
        let y = g.tanh(w);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        let expected = Tensor::from_vec(
            vec![1.0 - 0.5f32.tanh().powi(2), 1.0 - (-1.0f32).tanh().powi(2)],
            &[2],
        );
        assert!(grads.get(ids[0]).unwrap().allclose(&expected, 1e-6));
    }

    #[test]
    fn reused_node_accumulates_gradient() {
        // L = sum(w * w') where both operands are the SAME node: dL/dw = 2w.
        let (store, ids) = store_with(&[("w", Tensor::from_vec(vec![3.0, -2.0], &[2]))]);
        let mut g = Graph::new(&store);
        let w = g.param(ids[0]);
        let prod = g.mul(w, w);
        let loss = g.sum_all(prod);
        let grads = g.backward(loss);
        assert!(grads
            .get(ids[0])
            .unwrap()
            .allclose(&Tensor::from_vec(vec![6.0, -4.0], &[2]), 1e-6));
    }

    #[test]
    fn broadcast_bias_gradient_is_reduced() {
        // y = x + b with x: [4, 3], b: [3]; L = sum(y) => db = [4, 4, 4].
        let (store, ids) = store_with(&[("b", Tensor::zeros(&[3]))]);
        let mut g = Graph::new(&store);
        let x = g.input(Tensor::ones(&[4, 3]));
        let b = g.param(ids[0]);
        let y = g.add(x, b);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        assert!(grads
            .get(ids[0])
            .unwrap()
            .allclose(&Tensor::full(&[3], 4.0), 1e-6));
    }

    #[test]
    fn softmax_gradient_sums_to_zero_per_row() {
        // Softmax outputs sum to 1 per row, so grad wrt logits sums to 0.
        let (store, ids) = store_with(&[(
            "w",
            Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]),
        )]);
        let mut g = Graph::new(&store);
        let w = g.param(ids[0]);
        let s = g.softmax_rows(w);
        let weights = g.input(Tensor::from_vec(
            vec![1.0, 5.0, 2.0, 0.5, 1.5, 2.5],
            &[2, 3],
        ));
        let weighted = g.mul(s, weights);
        let loss = g.sum_all(weighted);
        let grads = g.backward(loss);
        let gw = grads.get(ids[0]).unwrap();
        for r in 0..2 {
            let row_sum: f32 = gw.row(r).as_slice().iter().sum();
            assert!(row_sum.abs() < 1e-5, "row {r} grad sum {row_sum}");
        }
    }

    #[test]
    fn slice_and_concat_are_inverse_for_gradients() {
        let (store, ids) = store_with(&[(
            "w",
            Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[3, 4]),
        )]);
        let mut g = Graph::new(&store);
        let w = g.param(ids[0]);
        let left = g.slice_cols(w, 0, 2);
        let right = g.slice_cols(w, 2, 4);
        let rejoined = g.concat_cols(&[left, right]);
        assert_eq!(g.value(rejoined), store.value(ids[0]));
        let loss = g.sum_all(rejoined);
        let grads = g.backward(loss);
        assert!(grads
            .get(ids[0])
            .unwrap()
            .allclose(&Tensor::ones(&[3, 4]), 1e-6));
    }

    #[test]
    fn select_time_routes_gradient_to_one_step() {
        let (store, ids) = store_with(&[("w", Tensor::ones(&[2, 3, 4]))]);
        let mut g = Graph::new(&store);
        let w = g.param(ids[0]);
        let last = g.select_time(w, 3);
        assert_eq!(g.value(last).shape(), &[2, 3]);
        let loss = g.sum_all(last);
        let grads = g.backward(loss);
        let gw = grads.get(ids[0]).unwrap();
        for bi in 0..2 {
            for ci in 0..3 {
                for t in 0..4 {
                    let expected = if t == 3 { 1.0 } else { 0.0 };
                    assert_eq!(gw.at(&[bi, ci, t]), expected);
                }
            }
        }
    }

    #[test]
    fn division_gradients() {
        // L = sum(a/b): da = 1/b, db = -a/b^2.
        let (store, ids) = store_with(&[
            ("a", Tensor::from_vec(vec![2.0, 6.0], &[2])),
            ("b", Tensor::from_vec(vec![1.0, 3.0], &[2])),
        ]);
        let mut g = Graph::new(&store);
        let a = g.param(ids[0]);
        let b = g.param(ids[1]);
        let q = g.div(a, b);
        let loss = g.sum_all(q);
        let grads = g.backward(loss);
        assert!(grads
            .get(ids[0])
            .unwrap()
            .allclose(&Tensor::from_vec(vec![1.0, 1.0 / 3.0], &[2]), 1e-6));
        assert!(grads
            .get(ids[1])
            .unwrap()
            .allclose(&Tensor::from_vec(vec![-2.0, -6.0 / 9.0], &[2]), 1e-6));
    }

    #[test]
    fn unused_param_has_no_gradient() {
        let (store, ids) =
            store_with(&[("used", Tensor::ones(&[2])), ("unused", Tensor::ones(&[2]))]);
        let mut g = Graph::new(&store);
        let w = g.param(ids[0]);
        let loss = g.sum_all(w);
        let grads = g.backward(loss);
        assert!(grads.get(ids[0]).is_some());
        assert!(grads.get(ids[1]).is_none());
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_rejects_non_scalar() {
        let (store, ids) = store_with(&[("w", Tensor::ones(&[3]))]);
        let mut g = Graph::new(&store);
        let w = g.param(ids[0]);
        g.backward(w);
    }

    /// Finite-difference validation of a realistic composite expression that
    /// exercises matmul, conv, softmax, attention-style mul and reductions.
    #[test]
    fn finite_difference_composite() {
        let mut rng = Rng::seed_from(21);
        let w0 = Tensor::rand_normal(&[2, 2, 3], 0.0, 0.5, &mut rng);
        let w1 = Tensor::rand_normal(&[2, 4], 0.0, 0.5, &mut rng);
        let (store, ids) = store_with(&[("conv_w", w0.clone()), ("fc_w", w1.clone())]);
        let x_data = Tensor::rand_normal(&[3, 2, 5], 0.0, 1.0, &mut rng);
        let target = Tensor::rand_normal(&[3, 4], 0.0, 1.0, &mut rng);

        let eval = |store: &ParamStore| -> (f32, Option<Gradients>) {
            let mut g = Graph::new(store);
            let x = g.input(x_data.clone());
            let cw = g.param(ids[0]);
            let conv = g.conv1d(x, cw, 2);
            let act = g.relu(conv);
            let last = g.select_time(act, 4);
            let fw = g.param(ids[1]);
            let logits = g.matmul(last, fw);
            let attn = g.softmax_rows(logits);
            let gated = g.mul(attn, logits);
            let tgt = g.input(target.clone());
            let diff = g.sub(gated, tgt);
            let sq = g.square(diff);
            let loss = g.mean_all(sq);
            let lv = g.value(loss).item();
            (lv, Some(g.backward(loss)))
        };

        let (_, grads) = eval(&store);
        let grads = grads.unwrap();
        let eps = 1e-2f32;
        for (pid, base) in [(ids[0], &w0), (ids[1], &w1)] {
            let analytic = grads.get(pid).unwrap();
            for idx in [0usize, base.len() / 2, base.len() - 1] {
                let mut s_plus = store.clone();
                s_plus.value_mut(pid).as_mut_slice()[idx] += eps;
                let mut s_minus = store.clone();
                s_minus.value_mut(pid).as_mut_slice()[idx] -= eps;
                let (lp, _) = eval(&s_plus);
                let (lm, _) = eval(&s_minus);
                let fd = (lp - lm) / (2.0 * eps);
                let an = analytic.as_slice()[idx];
                assert!(
                    (an - fd).abs() < 2e-2 + 0.05 * fd.abs(),
                    "param {pid:?} idx {idx}: analytic {an} vs fd {fd}"
                );
            }
        }
    }
}
