//! Dilated causal 1-D convolution layer with optional weight normalisation —
//! the building block of every TCN residual branch (paper §III-D).

use tensor::{Rng, Tensor};

use crate::graph::{Graph, Var};
use crate::init::Init;
use crate::params::{ParamId, ParamStore};

/// Causal, dilated 1-D convolution over `[batch, channels, time]`.
///
/// With `weight_norm` enabled the effective weight is reparameterised as
/// `w = gain · v / ‖v‖` with the norm taken per output channel, exactly the
/// Salimans & Kingma scheme TCNs use to stabilise training; the
/// normalisation is expressed on the tape so gradients flow into both `v`
/// and `gain`.
#[derive(Debug, Clone)]
pub struct CausalConv1d {
    v: ParamId,
    gain: Option<ParamId>,
    bias: ParamId,
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    dilation: usize,
}

impl CausalConv1d {
    #[allow(clippy::too_many_arguments)] // layer hyper-parameters
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        dilation: usize,
        weight_norm: bool,
        rng: &mut Rng,
    ) -> Self {
        assert!(kernel >= 1 && dilation >= 1);
        let v = store.register(
            format!("{name}.v"),
            Init::KaimingNormal.sample(&[out_ch, in_ch, kernel], rng),
        );
        let gain = weight_norm.then(|| {
            // Initialise the gain to the initial per-channel norm so the
            // reparameterised weight starts identical to `v`.
            let init_v = store.value(v).clone();
            let mut gains = vec![0.0f32; out_ch];
            let per = in_ch * kernel;
            for (oc, gslot) in gains.iter_mut().enumerate() {
                let ss: f32 = init_v.as_slice()[oc * per..(oc + 1) * per]
                    .iter()
                    .map(|&x| x * x)
                    .sum();
                *gslot = ss.sqrt();
            }
            store.register(format!("{name}.g"), Tensor::from_vec(gains, &[out_ch, 1]))
        });
        let bias = store.register(format!("{name}.b"), Tensor::zeros(&[out_ch, 1]));
        Self {
            v,
            gain,
            bias,
            in_ch,
            out_ch,
            kernel,
            dilation,
        }
    }

    /// `[batch, in_ch, T] -> [batch, out_ch, T]`.
    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        debug_assert_eq!(
            g.value(x).shape()[1],
            self.in_ch,
            "conv input channels mismatch"
        );
        let v = g.param(self.v);
        let w = match self.gain {
            Some(gain_id) => {
                let flat = g.reshape(v, &[self.out_ch, self.in_ch * self.kernel]);
                let sq = g.square(flat);
                let ssum = g.sum_axis_keepdim(sq, 1);
                let norm_raw = g.sqrt(ssum);
                let norm = g.add_scalar(norm_raw, 1e-6);
                let dir = g.div(flat, norm);
                let gain = g.param(gain_id);
                let scaled = g.mul(dir, gain);
                g.reshape(scaled, &[self.out_ch, self.in_ch, self.kernel])
            }
            None => v,
        };
        let y = g.conv1d(x, w, self.dilation);
        let b = g.param(self.bias);
        g.add(y, b)
    }

    /// Fold the weight-norm reparameterisation into a dense `[out, in, k]`
    /// weight, replicating the tape's op sequence exactly (f32 squares
    /// accumulated in f64, sqrt, `+ 1e-6`, divide, then gain) so the folded
    /// weight is bit-identical to the one the taped forward convolves with.
    pub fn materialize_weight(&self, store: &ParamStore, out: &mut [f32]) {
        let v = store.value(self.v).as_slice();
        assert_eq!(out.len(), v.len(), "materialize_weight buffer size");
        match self.gain {
            Some(gain_id) => {
                let gain = store.value(gain_id).as_slice();
                let per = self.in_ch * self.kernel;
                for oc in 0..self.out_ch {
                    let row = &v[oc * per..(oc + 1) * per];
                    let mut ss = 0.0f64;
                    for &x in row {
                        ss += (x * x) as f64;
                    }
                    let norm = (ss as f32).sqrt() + 1e-6;
                    let gn = gain[oc];
                    for (o, &x) in out[oc * per..(oc + 1) * per].iter_mut().zip(row) {
                        *o = (x / norm) * gn;
                    }
                }
            }
            None => out.copy_from_slice(v),
        }
    }

    /// Tape-free forward: `x` is `[batch, in_ch, time]` row-major, returns a
    /// `[batch, out_ch, time]` buffer drawn from `ctx`. Shares the conv
    /// kernel with the taped path.
    pub fn infer(
        &self,
        store: &ParamStore,
        ctx: &mut crate::infer::InferenceContext,
        x: &[f32],
        batch: usize,
        time: usize,
    ) -> Vec<f32> {
        let mut w = ctx.take(self.out_ch * self.in_ch * self.kernel);
        self.materialize_weight(store, &mut w);
        let mut out = ctx.take(batch * self.out_ch * time);
        crate::conv_kernels::conv1d_into(
            x,
            &w,
            &mut out,
            batch,
            self.in_ch,
            self.out_ch,
            time,
            self.kernel,
            self.dilation,
        );
        ctx.give(w);
        crate::infer::add_channel_bias(
            &mut out,
            store.value(self.bias).as_slice(),
            batch,
            self.out_ch,
            time,
        );
        out
    }

    /// Raw bias values `[out_ch]` (for streaming inference).
    pub fn bias_values<'a>(&self, store: &'a ParamStore) -> &'a [f32] {
        store.value(self.bias).as_slice()
    }

    /// Receptive field of this single layer: `(k - 1)·d + 1`.
    pub fn receptive_field(&self) -> usize {
        (self.kernel - 1) * self.dilation + 1
    }

    pub fn in_channels(&self) -> usize {
        self.in_ch
    }

    pub fn out_channels(&self) -> usize {
        self.out_ch
    }

    pub fn kernel_size(&self) -> usize {
        self.kernel
    }

    pub fn dilation(&self) -> usize {
        self.dilation
    }

    pub fn param_ids(&self) -> Vec<ParamId> {
        let mut ids = vec![self.v];
        ids.extend(self.gain);
        ids.push(self.bias);
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_conv_forward_shape_and_bias() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(1);
        let conv = CausalConv1d::new(&mut store, "c", 2, 4, 3, 2, false, &mut rng);
        let mut g = Graph::new(&store);
        let x = g.input(Tensor::ones(&[3, 2, 7]));
        let y = conv.forward(&mut g, x);
        assert_eq!(g.value(y).shape(), &[3, 4, 7]);
        assert_eq!(conv.receptive_field(), 5);
    }

    #[test]
    fn weight_norm_starts_equivalent_to_plain_weights() {
        // gain is initialised to ||v||, so w == v at construction and the
        // outputs of normalised and raw convs coincide.
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(2);
        let conv = CausalConv1d::new(&mut store, "c", 3, 5, 3, 1, true, &mut rng);
        let mut g = Graph::new(&store);
        let xdata = Tensor::rand_normal(&[2, 3, 6], 0.0, 1.0, &mut rng);
        let x = g.input(xdata.clone());
        let y_norm = conv.forward(&mut g, x);

        // Raw conv with the same v and bias.
        let x2 = g.input(xdata);
        let v = g.param(conv.v);
        let raw = g.conv1d(x2, v, 1);
        let b = g.param(conv.bias);
        let y_raw = g.add(raw, b);
        assert!(g.value(y_norm).allclose(g.value(y_raw), 1e-4));
    }

    #[test]
    fn weight_norm_gradients_reach_gain_and_direction() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(3);
        let conv = CausalConv1d::new(&mut store, "c", 2, 2, 2, 1, true, &mut rng);
        let mut g = Graph::new(&store);
        let x = g.input(Tensor::rand_normal(&[1, 2, 5], 0.0, 1.0, &mut rng));
        let y = conv.forward(&mut g, x);
        let sq = g.square(y);
        let loss = g.mean_all(sq);
        let grads = g.backward(loss);
        for id in conv.param_ids() {
            assert!(grads.get(id).is_some(), "no grad for {:?}", store.name(id));
            assert!(grads.get(id).unwrap().all_finite());
        }
    }

    #[test]
    fn infer_matches_taped_forward_bitwise() {
        let mut rng = Rng::seed_from(11);
        for weight_norm in [false, true] {
            let mut store = ParamStore::new();
            let conv = CausalConv1d::new(&mut store, "c", 3, 4, 3, 2, weight_norm, &mut rng);
            let xdata = Tensor::rand_normal(&[2, 3, 9], 0.0, 1.0, &mut rng);
            let mut g = Graph::new(&store);
            let x = g.input(xdata.clone());
            let y = conv.forward(&mut g, x);
            let taped = g.value(y).clone();

            let mut ctx = crate::infer::InferenceContext::new();
            let out = conv.infer(&store, &mut ctx, xdata.as_slice(), 2, 9);
            assert_eq!(out.as_slice(), taped.as_slice(), "wn={weight_norm}");
        }
    }

    #[test]
    fn stacking_dilations_grows_receptive_field() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(4);
        // Dilations 1, 2, 4 with k=3: receptive field 1 + 2*(1+2+4) = 15.
        let convs: Vec<CausalConv1d> = [1usize, 2, 4]
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                CausalConv1d::new(&mut store, &format!("c{i}"), 1, 1, 3, d, false, &mut rng)
            })
            .collect();
        let total_rf: usize = 1 + convs.iter().map(|c| c.receptive_field() - 1).sum::<usize>();
        assert_eq!(total_rf, 15);

        // Verify empirically: output at t=14 depends on x[0], output at
        // t=15.. would not (we use T=16 and perturb x[0]).
        let mut x1 = Tensor::zeros(&[1, 1, 16]);
        x1.set(&[0, 0, 0], 1.0);
        let x2 = Tensor::zeros(&[1, 1, 16]);
        let run = |xd: &Tensor| {
            let mut g = Graph::new(&store);
            let mut h = g.input(xd.clone());
            for c in &convs {
                h = c.forward(&mut g, h);
            }
            g.value(h).clone()
        };
        let y1 = run(&x1);
        let y2 = run(&x2);
        // Influence present within the receptive field...
        assert!((y1.at(&[0, 0, 14]) - y2.at(&[0, 0, 14])).abs() > 0.0);
        // ...and absent beyond it.
        assert_eq!(y1.at(&[0, 0, 15]), y2.at(&[0, 0, 15]));
    }
}
