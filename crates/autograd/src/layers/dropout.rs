//! Dropout, including the *spatial* (channel) variant TCN residual blocks
//! use: entire channels are zeroed together so temporally-adjacent
//! activations are not decorrelated.

use tensor::{Rng, Tensor};

use crate::graph::{Graph, Var};

/// Inverted dropout: surviving activations are scaled by `1/(1-p)` during
/// training so inference needs no rescaling.
#[derive(Debug, Clone, Copy)]
pub struct Dropout {
    p: f32,
}

impl Dropout {
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout rate must be in [0, 1)");
        Self { p }
    }

    pub fn rate(&self) -> f32 {
        self.p
    }

    /// Standard elementwise dropout. Identity when not training or `p == 0`.
    pub fn apply(&self, g: &mut Graph, x: Var, training: bool, rng: &mut Rng) -> Var {
        if !training || self.p == 0.0 {
            return x;
        }
        let shape = g.value(x).shape().to_vec();
        let mask = self.sample_mask(&shape, rng);
        g.mul_mask(x, mask)
    }

    /// Spatial dropout on `[batch, channels, time]`: one Bernoulli draw per
    /// (batch, channel), broadcast across time.
    pub fn apply_spatial(&self, g: &mut Graph, x: Var, training: bool, rng: &mut Rng) -> Var {
        if !training || self.p == 0.0 {
            return x;
        }
        let shape = g.value(x).shape();
        assert_eq!(shape.len(), 3, "spatial dropout expects [batch, ch, time]");
        let mask = self.sample_mask(&[shape[0], shape[1], 1], rng);
        let mask = mask
            .broadcast_to(shape)
            .expect("spatial dropout mask broadcast");
        g.mul_mask(x, mask)
    }

    fn sample_mask(&self, shape: &[usize], rng: &mut Rng) -> Tensor {
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let n: usize = shape.iter().product();
        let data = (0..n)
            .map(|_| if rng.chance(keep as f64) { scale } else { 0.0 })
            .collect();
        Tensor::from_vec(data, shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamStore;

    #[test]
    fn inference_is_identity() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let mut rng = Rng::seed_from(1);
        let x = g.input(Tensor::ones(&[4, 4]));
        let y = Dropout::new(0.5).apply(&mut g, x, false, &mut rng);
        assert_eq!(g.value(y), g.value(x));
    }

    #[test]
    fn zero_rate_is_identity_even_in_training() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let mut rng = Rng::seed_from(2);
        let x = g.input(Tensor::ones(&[4, 4]));
        let y = Dropout::new(0.0).apply(&mut g, x, true, &mut rng);
        assert_eq!(g.value(y), g.value(x));
    }

    #[test]
    fn expected_value_is_preserved() {
        let store = ParamStore::new();
        let mut rng = Rng::seed_from(3);
        let drop = Dropout::new(0.3);
        let mut total = 0.0f64;
        let n_trials = 200;
        for _ in 0..n_trials {
            let mut g = Graph::new(&store);
            let x = g.input(Tensor::ones(&[10, 10]));
            let y = drop.apply(&mut g, x, true, &mut rng);
            total += tensor::reduce::mean(g.value(y)) as f64;
        }
        let avg = total / n_trials as f64;
        assert!(
            (avg - 1.0).abs() < 0.05,
            "inverted dropout broke the mean: {avg}"
        );
    }

    #[test]
    fn spatial_dropout_zeroes_whole_channels() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let mut rng = Rng::seed_from(4);
        let x = g.input(Tensor::ones(&[2, 8, 6]));
        let y = Dropout::new(0.5).apply_spatial(&mut g, x, true, &mut rng);
        let out = g.value(y);
        let mut zeroed = 0;
        for b in 0..2 {
            for c in 0..8 {
                let vals: Vec<f32> = (0..6).map(|t| out.at(&[b, c, t])).collect();
                let all_zero = vals.iter().all(|&v| v == 0.0);
                let all_scaled = vals.iter().all(|&v| (v - 2.0).abs() < 1e-6);
                assert!(
                    all_zero || all_scaled,
                    "channel partially dropped: {vals:?}"
                );
                zeroed += all_zero as usize;
            }
        }
        assert!(
            zeroed > 0 && zeroed < 16,
            "degenerate mask: {zeroed}/16 channels zeroed"
        );
    }

    #[test]
    fn gradient_is_masked_consistently() {
        let mut store = ParamStore::new();
        let wid = store.register("w", Tensor::ones(&[3, 3]));
        let mut rng = Rng::seed_from(5);
        let mut g = Graph::new(&store);
        let w = g.param(wid);
        let y = Dropout::new(0.5).apply(&mut g, w, true, &mut rng);
        let dropped: Vec<bool> = g.value(y).as_slice().iter().map(|&v| v == 0.0).collect();
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        let gw = grads.get(wid).unwrap();
        for (i, &was_dropped) in dropped.iter().enumerate() {
            if was_dropped {
                assert_eq!(gw.as_slice()[i], 0.0);
            } else {
                assert!((gw.as_slice()[i] - 2.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    #[should_panic(expected = "dropout rate")]
    fn invalid_rate_panics() {
        Dropout::new(1.0);
    }
}
