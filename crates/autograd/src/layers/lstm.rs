//! LSTM cell and multi-layer sequence module — the substrate for the paper's
//! LSTM and CNN-LSTM baselines.

use tensor::{Rng, Tensor};

use crate::graph::{Graph, Var};
use crate::init::Init;
use crate::params::{ParamId, ParamStore};

/// A single LSTM cell with the standard four gates packed into one matmul:
/// gate order is `[input, forget, cell, output]` along the `4·hidden` axis.
#[derive(Debug, Clone)]
pub struct LstmCell {
    w_ih: ParamId,
    w_hh: ParamId,
    bias: ParamId,
    input_dim: usize,
    hidden: usize,
}

impl LstmCell {
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        input_dim: usize,
        hidden: usize,
        rng: &mut Rng,
    ) -> Self {
        let w_ih = store.register(
            format!("{name}.w_ih"),
            Init::XavierUniform.sample(&[input_dim, 4 * hidden], rng),
        );
        let w_hh = store.register(
            format!("{name}.w_hh"),
            Init::XavierUniform.sample(&[hidden, 4 * hidden], rng),
        );
        // Forget-gate bias starts at 1 so early training does not erase the
        // cell state — the standard Jozefowicz et al. trick.
        let mut b = Tensor::zeros(&[4 * hidden]);
        for i in hidden..2 * hidden {
            b.as_mut_slice()[i] = 1.0;
        }
        let bias = store.register(format!("{name}.b"), b);
        Self {
            w_ih,
            w_hh,
            bias,
            input_dim,
            hidden,
        }
    }

    /// One step: `(x_t, h, c) -> (h', c')` where `x_t` is `[batch, input]`
    /// and the states are `[batch, hidden]`.
    pub fn step(&self, g: &mut Graph, x: Var, h: Var, c: Var) -> (Var, Var) {
        debug_assert_eq!(g.value(x).shape()[1], self.input_dim);
        let w_ih = g.param(self.w_ih);
        let w_hh = g.param(self.w_hh);
        let b = g.param(self.bias);
        let xi = g.matmul(x, w_ih);
        let hi = g.matmul(h, w_hh);
        let z0 = g.add(xi, hi);
        let z = g.add(z0, b);
        let hsz = self.hidden;
        let i_gate = {
            let s = g.slice_cols(z, 0, hsz);
            g.sigmoid(s)
        };
        let f_gate = {
            let s = g.slice_cols(z, hsz, 2 * hsz);
            g.sigmoid(s)
        };
        let g_gate = {
            let s = g.slice_cols(z, 2 * hsz, 3 * hsz);
            g.tanh(s)
        };
        let o_gate = {
            let s = g.slice_cols(z, 3 * hsz, 4 * hsz);
            g.sigmoid(s)
        };
        let fc = g.mul(f_gate, c);
        let ig = g.mul(i_gate, g_gate);
        let c_next = g.add(fc, ig);
        let tc = g.tanh(c_next);
        let h_next = g.mul(o_gate, tc);
        (h_next, c_next)
    }

    /// One tape-free step. `x` is `[batch, input_dim]`; `h`/`c` are
    /// `[batch, hidden]` states updated in place; `xi`/`hi` are
    /// `[batch, 4·hidden]` scratch. The gate arithmetic replicates the taped
    /// op sequence — `xi` and `hi` are each computed fully, then combined
    /// elementwise as `(xi + hi) + b` — so results are bit-identical.
    #[allow(clippy::too_many_arguments)]
    pub fn infer_step(
        &self,
        store: &ParamStore,
        x: &[f32],
        batch: usize,
        h: &mut [f32],
        c: &mut [f32],
        xi: &mut [f32],
        hi: &mut [f32],
    ) {
        let hsz = self.hidden;
        let w_ih = store.value(self.w_ih).as_slice();
        let w_hh = store.value(self.w_hh).as_slice();
        let b = store.value(self.bias).as_slice();
        tensor::matmul::matmul_into(x, w_ih, xi, batch, self.input_dim, 4 * hsz);
        tensor::matmul::matmul_into(h, w_hh, hi, batch, hsz, 4 * hsz);
        for bi in 0..batch {
            let z = &mut xi[bi * 4 * hsz..(bi + 1) * 4 * hsz];
            let hrow_i = &hi[bi * 4 * hsz..(bi + 1) * 4 * hsz];
            for ((zv, &hv), &bv) in z.iter_mut().zip(hrow_i).zip(b) {
                *zv = (*zv + hv) + bv;
            }
            let hrow = &mut h[bi * hsz..(bi + 1) * hsz];
            let crow = &mut c[bi * hsz..(bi + 1) * hsz];
            for j in 0..hsz {
                let i_gate = crate::infer::stable_sigmoid(z[j]);
                let f_gate = crate::infer::stable_sigmoid(z[hsz + j]);
                let g_gate = z[2 * hsz + j].tanh();
                let o_gate = crate::infer::stable_sigmoid(z[3 * hsz + j]);
                let c_next = (f_gate * crow[j]) + (i_gate * g_gate);
                crow[j] = c_next;
                hrow[j] = o_gate * c_next.tanh();
            }
        }
    }

    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    pub fn param_ids(&self) -> Vec<ParamId> {
        vec![self.w_ih, self.w_hh, self.bias]
    }
}

/// Stacked LSTM unrolled over a sequence of `[batch, features]` steps.
#[derive(Debug, Clone)]
pub struct Lstm {
    cells: Vec<LstmCell>,
}

impl Lstm {
    /// `layers` stacked cells; the first consumes `input_dim` features, the
    /// rest consume the hidden size of the layer below.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        input_dim: usize,
        hidden: usize,
        layers: usize,
        rng: &mut Rng,
    ) -> Self {
        assert!(layers >= 1);
        let cells = (0..layers)
            .map(|l| {
                let in_dim = if l == 0 { input_dim } else { hidden };
                LstmCell::new(store, &format!("{name}.l{l}"), in_dim, hidden, rng)
            })
            .collect();
        Self { cells }
    }

    /// Run the stack over `steps` (each `[batch, features]`), returning the
    /// top-layer hidden state at every step.
    pub fn forward_seq(&self, g: &mut Graph, steps: &[Var]) -> Vec<Var> {
        assert!(!steps.is_empty(), "LSTM over empty sequence");
        let batch = g.value(steps[0]).shape()[0];
        let hidden = self.cells[0].hidden_size();
        let mut layer_inputs: Vec<Var> = steps.to_vec();
        for cell in &self.cells {
            let mut h = g.input(Tensor::zeros(&[batch, hidden]));
            let mut c = g.input(Tensor::zeros(&[batch, hidden]));
            let mut outputs = Vec::with_capacity(layer_inputs.len());
            for &x in &layer_inputs {
                let (h2, c2) = cell.step(g, x, h, c);
                h = h2;
                c = c2;
                outputs.push(h);
            }
            layer_inputs = outputs;
        }
        layer_inputs
    }

    /// Run the stack and return only the final hidden state `[batch, hidden]`.
    pub fn forward_last(&self, g: &mut Graph, steps: &[Var]) -> Var {
        *self
            .forward_seq(g, steps)
            .last()
            .expect("LSTM over empty sequence")
    }

    /// Tape-free unroll returning the top-layer hidden state at the final
    /// step (`[batch, hidden]` in a buffer from `ctx`). `fill_step(t, out)`
    /// writes step `t`'s `[batch, input_dim]` inputs into `out` — callers
    /// slice their own window layout without staging `time` tensors.
    pub fn infer_last<F: FnMut(usize, &mut [f32])>(
        &self,
        store: &ParamStore,
        ctx: &mut crate::infer::InferenceContext,
        batch: usize,
        time: usize,
        mut fill_step: F,
    ) -> Vec<f32> {
        assert!(time >= 1, "LSTM over empty sequence");
        let hidden = self.cells[0].hidden_size();
        let in_dim = self.cells[0].input_dim();
        let mut cur = ctx.take(time * batch * in_dim);
        for t in 0..time {
            fill_step(t, &mut cur[t * batch * in_dim..(t + 1) * batch * in_dim]);
        }
        let mut cur_width = in_dim;
        let mut h = ctx.take(batch * hidden);
        let mut c = ctx.take(batch * hidden);
        let mut xi = ctx.take(batch * 4 * hidden);
        let mut hi = ctx.take(batch * 4 * hidden);
        for cell in &self.cells {
            let mut outputs = ctx.take(time * batch * hidden);
            h.fill(0.0);
            c.fill(0.0);
            for t in 0..time {
                let x_t = &cur[t * batch * cur_width..(t + 1) * batch * cur_width];
                cell.infer_step(store, x_t, batch, &mut h, &mut c, &mut xi, &mut hi);
                outputs[t * batch * hidden..(t + 1) * batch * hidden].copy_from_slice(&h);
            }
            ctx.give(std::mem::replace(&mut cur, outputs));
            cur_width = hidden;
        }
        let mut last = ctx.take(batch * hidden);
        last.copy_from_slice(&cur[(time - 1) * batch * hidden..time * batch * hidden]);
        ctx.give(cur);
        ctx.give(h);
        ctx.give(c);
        ctx.give(xi);
        ctx.give(hi);
        last
    }

    pub fn hidden_size(&self) -> usize {
        self.cells[0].hidden_size()
    }

    pub fn input_dim(&self) -> usize {
        self.cells[0].input_dim()
    }

    pub fn num_layers(&self) -> usize {
        self.cells.len()
    }

    pub fn param_ids(&self) -> Vec<ParamId> {
        self.cells.iter().flat_map(LstmCell::param_ids).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_steps(g: &mut Graph, batch: usize, dim: usize, time: usize, rng: &mut Rng) -> Vec<Var> {
        (0..time)
            .map(|_| g.input(Tensor::rand_normal(&[batch, dim], 0.0, 1.0, rng)))
            .collect()
    }

    #[test]
    fn shapes_through_stacked_lstm() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(1);
        let lstm = Lstm::new(&mut store, "lstm", 5, 8, 2, &mut rng);
        assert_eq!(lstm.num_layers(), 2);
        let mut g = Graph::new(&store);
        let steps = make_steps(&mut g, 3, 5, 7, &mut rng);
        let outs = lstm.forward_seq(&mut g, &steps);
        assert_eq!(outs.len(), 7);
        for &o in &outs {
            assert_eq!(g.value(o).shape(), &[3, 8]);
        }
    }

    #[test]
    fn states_stay_bounded() {
        // tanh/sigmoid gating keeps |h| < 1 no matter the input scale.
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(2);
        let lstm = Lstm::new(&mut store, "lstm", 2, 4, 1, &mut rng);
        let mut g = Graph::new(&store);
        let steps: Vec<Var> = (0..20)
            .map(|_| g.input(Tensor::rand_normal(&[1, 2], 0.0, 100.0, &mut rng)))
            .collect();
        let last = lstm.forward_last(&mut g, &steps);
        assert!(g.value(last).as_slice().iter().all(|&h| h.abs() <= 1.0));
    }

    #[test]
    fn gradients_reach_every_cell_parameter() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(3);
        let lstm = Lstm::new(&mut store, "lstm", 3, 4, 2, &mut rng);
        let mut g = Graph::new(&store);
        let steps = make_steps(&mut g, 2, 3, 5, &mut rng);
        let last = lstm.forward_last(&mut g, &steps);
        let sq = g.square(last);
        let loss = g.mean_all(sq);
        let grads = g.backward(loss);
        for id in lstm.param_ids() {
            let grad = grads.get(id);
            assert!(grad.is_some(), "no grad for {}", store.name(id));
            assert!(grad.unwrap().all_finite());
        }
    }

    #[test]
    fn forget_bias_initialised_to_one() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(4);
        let cell = LstmCell::new(&mut store, "cell", 2, 3, &mut rng);
        let b = store.value(cell.param_ids()[2]);
        assert_eq!(&b.as_slice()[3..6], &[1.0, 1.0, 1.0]);
        assert_eq!(&b.as_slice()[0..3], &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn infer_last_matches_taped_forward_bitwise() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(6);
        let lstm = Lstm::new(&mut store, "lstm", 3, 5, 2, &mut rng);
        let (batch, time) = (2, 6);
        let data = Tensor::rand_normal(&[time, batch, 3], 0.0, 1.0, &mut rng);

        let mut g = Graph::new(&store);
        let steps: Vec<Var> = (0..time)
            .map(|t| {
                let step = data.as_slice()[t * batch * 3..(t + 1) * batch * 3].to_vec();
                g.input(Tensor::from_vec(step, &[batch, 3]))
            })
            .collect();
        let last = lstm.forward_last(&mut g, &steps);
        let taped = g.value(last).clone();

        let mut ctx = crate::infer::InferenceContext::new();
        let out = lstm.infer_last(&store, &mut ctx, batch, time, |t, buf| {
            buf.copy_from_slice(&data.as_slice()[t * batch * 3..(t + 1) * batch * 3]);
        });
        assert_eq!(out.as_slice(), taped.as_slice());
    }

    #[test]
    fn order_sensitivity() {
        // An LSTM must distinguish the same multiset of inputs in different
        // orders (unlike a bag-of-steps model).
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(5);
        let lstm = Lstm::new(&mut store, "lstm", 1, 6, 1, &mut rng);
        let a = Tensor::from_vec(vec![1.0], &[1, 1]);
        let b = Tensor::from_vec(vec![-1.0], &[1, 1]);
        let run = |first: &Tensor, second: &Tensor| {
            let mut g = Graph::new(&store);
            let s1 = g.input(first.clone());
            let s2 = g.input(second.clone());
            let last = lstm.forward_last(&mut g, &[s1, s2]);
            g.value(last).clone()
        };
        let fwd = run(&a, &b);
        let rev = run(&b, &a);
        assert!(fwd.max_abs_diff(&rev) > 1e-4, "LSTM ignored input order");
    }
}
