//! GRU cell and stacked-sequence module — the lighter recurrent unit used
//! by several related-work predictors (§VI-B); included so the extended
//! model zoo can compare recurrent architectures beyond the LSTM.

use tensor::{Rng, Tensor};

use crate::graph::{Graph, Var};
use crate::init::Init;
use crate::params::{ParamId, ParamStore};

/// A single GRU cell. Gate order along the packed `3·hidden` axis is
/// `[reset, update, candidate]`.
#[derive(Debug, Clone)]
pub struct GruCell {
    w_ih: ParamId,
    w_hh: ParamId,
    b_ih: ParamId,
    b_hh: ParamId,
    input_dim: usize,
    hidden: usize,
}

impl GruCell {
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        input_dim: usize,
        hidden: usize,
        rng: &mut Rng,
    ) -> Self {
        let w_ih = store.register(
            format!("{name}.w_ih"),
            Init::XavierUniform.sample(&[input_dim, 3 * hidden], rng),
        );
        let w_hh = store.register(
            format!("{name}.w_hh"),
            Init::XavierUniform.sample(&[hidden, 3 * hidden], rng),
        );
        let b_ih = store.register(format!("{name}.b_ih"), Tensor::zeros(&[3 * hidden]));
        let b_hh = store.register(format!("{name}.b_hh"), Tensor::zeros(&[3 * hidden]));
        Self {
            w_ih,
            w_hh,
            b_ih,
            b_hh,
            input_dim,
            hidden,
        }
    }

    /// One step: `(x_t, h) -> h'` with the standard GRU equations
    /// (separate input/hidden biases, as in cuDNN/PyTorch):
    /// `r = σ(W_ir x + b_ir + W_hr h + b_hr)`,
    /// `z = σ(W_iz x + b_iz + W_hz h + b_hz)`,
    /// `n = tanh(W_in x + b_in + r ⊙ (W_hn h + b_hn))`,
    /// `h' = (1 − z) ⊙ n + z ⊙ h`.
    pub fn step(&self, g: &mut Graph, x: Var, h: Var) -> Var {
        debug_assert_eq!(g.value(x).shape()[1], self.input_dim);
        let hsz = self.hidden;
        let w_ih = g.param(self.w_ih);
        let w_hh = g.param(self.w_hh);
        let b_ih = g.param(self.b_ih);
        let b_hh = g.param(self.b_hh);
        let xi0 = g.matmul(x, w_ih);
        let xi = g.add(xi0, b_ih);
        let hi0 = g.matmul(h, w_hh);
        let hi = g.add(hi0, b_hh);

        let r = {
            let a = g.slice_cols(xi, 0, hsz);
            let b = g.slice_cols(hi, 0, hsz);
            let s = g.add(a, b);
            g.sigmoid(s)
        };
        let z = {
            let a = g.slice_cols(xi, hsz, 2 * hsz);
            let b = g.slice_cols(hi, hsz, 2 * hsz);
            let s = g.add(a, b);
            g.sigmoid(s)
        };
        let n = {
            let a = g.slice_cols(xi, 2 * hsz, 3 * hsz);
            let b = g.slice_cols(hi, 2 * hsz, 3 * hsz);
            let gated = g.mul(r, b);
            let s = g.add(a, gated);
            g.tanh(s)
        };
        // h' = (1 - z) * n + z * h = n - z*n + z*h
        let zn = g.mul(z, n);
        let zh = g.mul(z, h);
        let diff = g.sub(n, zn);
        g.add(diff, zh)
    }

    /// One tape-free step. `x` is `[batch, input_dim]`; `h` is the
    /// `[batch, hidden]` state updated in place; `xi`/`hi` are
    /// `[batch, 3·hidden]` scratch. Replicates the taped op order exactly
    /// (`n − z·n + z·h` evaluated as `(n − zn) + zh`).
    pub fn infer_step(
        &self,
        store: &ParamStore,
        x: &[f32],
        batch: usize,
        h: &mut [f32],
        xi: &mut [f32],
        hi: &mut [f32],
    ) {
        let hsz = self.hidden;
        let w_ih = store.value(self.w_ih).as_slice();
        let w_hh = store.value(self.w_hh).as_slice();
        let b_ih = store.value(self.b_ih).as_slice();
        let b_hh = store.value(self.b_hh).as_slice();
        tensor::matmul::matmul_into(x, w_ih, xi, batch, self.input_dim, 3 * hsz);
        crate::infer::add_row_bias(xi, b_ih, batch, 3 * hsz);
        tensor::matmul::matmul_into(h, w_hh, hi, batch, hsz, 3 * hsz);
        crate::infer::add_row_bias(hi, b_hh, batch, 3 * hsz);
        for bi in 0..batch {
            let xrow = &xi[bi * 3 * hsz..(bi + 1) * 3 * hsz];
            let hrow_i = &hi[bi * 3 * hsz..(bi + 1) * 3 * hsz];
            let hrow = &mut h[bi * hsz..(bi + 1) * hsz];
            for j in 0..hsz {
                let r = crate::infer::stable_sigmoid(xrow[j] + hrow_i[j]);
                let z = crate::infer::stable_sigmoid(xrow[hsz + j] + hrow_i[hsz + j]);
                let n = (xrow[2 * hsz + j] + r * hrow_i[2 * hsz + j]).tanh();
                let zn = z * n;
                let zh = z * hrow[j];
                hrow[j] = (n - zn) + zh;
            }
        }
    }

    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    pub fn param_ids(&self) -> Vec<ParamId> {
        vec![self.w_ih, self.w_hh, self.b_ih, self.b_hh]
    }
}

/// Stacked GRU unrolled over a sequence of `[batch, features]` steps.
#[derive(Debug, Clone)]
pub struct Gru {
    cells: Vec<GruCell>,
}

impl Gru {
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        input_dim: usize,
        hidden: usize,
        layers: usize,
        rng: &mut Rng,
    ) -> Self {
        assert!(layers >= 1);
        let cells = (0..layers)
            .map(|l| {
                let in_dim = if l == 0 { input_dim } else { hidden };
                GruCell::new(store, &format!("{name}.l{l}"), in_dim, hidden, rng)
            })
            .collect();
        Self { cells }
    }

    /// Top-layer hidden state at every step.
    pub fn forward_seq(&self, g: &mut Graph, steps: &[Var]) -> Vec<Var> {
        assert!(!steps.is_empty(), "GRU over empty sequence");
        let batch = g.value(steps[0]).shape()[0];
        let hidden = self.cells[0].hidden_size();
        let mut layer_inputs: Vec<Var> = steps.to_vec();
        for cell in &self.cells {
            let mut h = g.input(Tensor::zeros(&[batch, hidden]));
            let mut outputs = Vec::with_capacity(layer_inputs.len());
            for &x in &layer_inputs {
                h = cell.step(g, x, h);
                outputs.push(h);
            }
            layer_inputs = outputs;
        }
        layer_inputs
    }

    /// Final hidden state `[batch, hidden]`.
    pub fn forward_last(&self, g: &mut Graph, steps: &[Var]) -> Var {
        *self
            .forward_seq(g, steps)
            .last()
            .expect("GRU over empty sequence")
    }

    /// Tape-free unroll returning the top-layer hidden state at the final
    /// step (`[batch, hidden]` in a buffer from `ctx`). `fill_step(t, out)`
    /// writes step `t`'s `[batch, input_dim]` inputs into `out`.
    pub fn infer_last<F: FnMut(usize, &mut [f32])>(
        &self,
        store: &ParamStore,
        ctx: &mut crate::infer::InferenceContext,
        batch: usize,
        time: usize,
        mut fill_step: F,
    ) -> Vec<f32> {
        assert!(time >= 1, "GRU over empty sequence");
        let hidden = self.cells[0].hidden_size();
        let in_dim = self.cells[0].input_dim();
        let mut cur = ctx.take(time * batch * in_dim);
        for t in 0..time {
            fill_step(t, &mut cur[t * batch * in_dim..(t + 1) * batch * in_dim]);
        }
        let mut cur_width = in_dim;
        let mut h = ctx.take(batch * hidden);
        let mut xi = ctx.take(batch * 3 * hidden);
        let mut hi = ctx.take(batch * 3 * hidden);
        for cell in &self.cells {
            let mut outputs = ctx.take(time * batch * hidden);
            h.fill(0.0);
            for t in 0..time {
                let x_t = &cur[t * batch * cur_width..(t + 1) * batch * cur_width];
                cell.infer_step(store, x_t, batch, &mut h, &mut xi, &mut hi);
                outputs[t * batch * hidden..(t + 1) * batch * hidden].copy_from_slice(&h);
            }
            ctx.give(std::mem::replace(&mut cur, outputs));
            cur_width = hidden;
        }
        let mut last = ctx.take(batch * hidden);
        last.copy_from_slice(&cur[(time - 1) * batch * hidden..time * batch * hidden]);
        ctx.give(cur);
        ctx.give(h);
        ctx.give(xi);
        ctx.give(hi);
        last
    }

    pub fn hidden_size(&self) -> usize {
        self.cells[0].hidden_size()
    }

    pub fn input_dim(&self) -> usize {
        self.cells[0].input_dim()
    }

    pub fn param_ids(&self) -> Vec<ParamId> {
        self.cells.iter().flat_map(GruCell::param_ids).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_bounds() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(1);
        let gru = Gru::new(&mut store, "gru", 4, 6, 2, &mut rng);
        let mut g = Graph::new(&store);
        let steps: Vec<Var> = (0..5)
            .map(|_| g.input(Tensor::rand_normal(&[3, 4], 0.0, 10.0, &mut rng)))
            .collect();
        let outs = gru.forward_seq(&mut g, &steps);
        assert_eq!(outs.len(), 5);
        for &o in &outs {
            assert_eq!(g.value(o).shape(), &[3, 6]);
            // Convex mixing of tanh values keeps |h| <= 1.
            assert!(g.value(o).as_slice().iter().all(|&v| v.abs() <= 1.0 + 1e-5));
        }
    }

    #[test]
    fn zero_update_gate_bias_starts_balanced() {
        // At init, z ≈ sigmoid(small) ≈ 0.5: the state moves but does not
        // jump to the candidate; one step from zero state stays bounded.
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(2);
        let cell = GruCell::new(&mut store, "c", 2, 3, &mut rng);
        let mut g = Graph::new(&store);
        let x = g.input(Tensor::ones(&[1, 2]));
        let h0 = g.input(Tensor::zeros(&[1, 3]));
        let h1 = cell.step(&mut g, x, h0);
        assert!(g.value(h1).as_slice().iter().all(|&v| v.abs() < 1.0));
    }

    #[test]
    fn gradients_reach_all_parameters() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(3);
        let gru = Gru::new(&mut store, "gru", 3, 4, 2, &mut rng);
        let mut g = Graph::new(&store);
        let steps: Vec<Var> = (0..4)
            .map(|_| g.input(Tensor::rand_normal(&[2, 3], 0.0, 1.0, &mut rng)))
            .collect();
        let last = gru.forward_last(&mut g, &steps);
        let sq = g.square(last);
        let loss = g.mean_all(sq);
        let grads = g.backward(loss);
        for id in gru.param_ids() {
            assert!(grads.get(id).is_some(), "no grad for {}", store.name(id));
            assert!(grads.get(id).unwrap().all_finite());
        }
    }

    #[test]
    fn infer_last_matches_taped_forward_bitwise() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(5);
        let gru = Gru::new(&mut store, "gru", 4, 6, 2, &mut rng);
        let (batch, time) = (3, 5);
        let data = Tensor::rand_normal(&[time, batch, 4], 0.0, 1.0, &mut rng);

        let mut g = Graph::new(&store);
        let steps: Vec<Var> = (0..time)
            .map(|t| {
                let step = data.as_slice()[t * batch * 4..(t + 1) * batch * 4].to_vec();
                g.input(Tensor::from_vec(step, &[batch, 4]))
            })
            .collect();
        let last = gru.forward_last(&mut g, &steps);
        let taped = g.value(last).clone();

        let mut ctx = crate::infer::InferenceContext::new();
        let out = gru.infer_last(&store, &mut ctx, batch, time, |t, buf| {
            buf.copy_from_slice(&data.as_slice()[t * batch * 4..(t + 1) * batch * 4]);
        });
        assert_eq!(out.as_slice(), taped.as_slice());
    }

    #[test]
    fn order_sensitivity() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(4);
        let gru = Gru::new(&mut store, "gru", 1, 5, 1, &mut rng);
        let a = Tensor::from_vec(vec![1.0], &[1, 1]);
        let b = Tensor::from_vec(vec![-1.0], &[1, 1]);
        let run = |first: &Tensor, second: &Tensor| {
            let mut g = Graph::new(&store);
            let s1 = g.input(first.clone());
            let s2 = g.input(second.clone());
            let last = gru.forward_last(&mut g, &[s1, s2]);
            g.value(last).clone()
        };
        assert!(run(&a, &b).max_abs_diff(&run(&b, &a)) > 1e-4);
    }
}
