//! Neural-network layers built on the tape: dense, causal convolution,
//! dropout, attention and LSTM.

pub mod attention;
pub mod conv;
pub mod dropout;
pub mod gru;
pub mod linear;
pub mod lstm;

pub use attention::{FeatureAttention, TemporalAttention};
pub use conv::CausalConv1d;
pub use dropout::Dropout;
pub use gru::{Gru, GruCell};
pub use linear::Linear;
pub use lstm::{Lstm, LstmCell};
