//! Attention mechanisms (paper eqs. 7–8: `a = f_φ(x)`, `g = a ⊙ z`).

use tensor::Rng;

use crate::graph::{Graph, Var};
use crate::init::Init;
use crate::layers::linear::Linear;
use crate::params::{ParamId, ParamStore};

/// Feature attention: a single-layer attention network produces a softmax
/// weighting over the feature vector, which elementwise-gates a value vector
/// (`g = a ⊙ z`). This is the mechanism RPTCN inserts after its fully
/// connected layer.
///
/// The softmax is rescaled by the feature count so an uninformative
/// (uniform) attention leaves the values unchanged instead of shrinking
/// them by `1/dim` — without this the block would start as a heavy
/// attenuation and slow convergence.
#[derive(Debug, Clone)]
pub struct FeatureAttention {
    proj: Linear,
    dim: usize,
}

impl FeatureAttention {
    pub fn new(store: &mut ParamStore, name: &str, dim: usize, rng: &mut Rng) -> Self {
        // Zero-initialised scores give a uniform softmax, so with the
        // dim-rescaling below the block starts as the identity gate and the
        // network's initial loss is not inflated by random attention peaks.
        let proj = Linear::with_init(
            store,
            &format!("{name}.proj"),
            dim,
            dim,
            Init::Constant(0.0),
            true,
            rng,
        );
        Self { proj, dim }
    }

    /// Compute the attention vector from `query` and gate `values` with it.
    /// Both are `[batch, dim]`; so is the result.
    pub fn forward(&self, g: &mut Graph, query: Var, values: Var) -> Var {
        debug_assert_eq!(g.value(query).shape()[1], self.dim);
        let scores = self.proj.forward(g, query);
        let attn = g.softmax_rows(scores);
        let attn = g.scale(attn, self.dim as f32);
        g.mul(attn, values)
    }

    /// Tape-free forward with `query == values`: gates `h` (`[rows, dim]`)
    /// in place, replicating the taped score → softmax → rescale → multiply
    /// chain exactly.
    pub fn infer_in_place(
        &self,
        store: &ParamStore,
        ctx: &mut crate::infer::InferenceContext,
        h: &mut [f32],
        rows: usize,
    ) {
        debug_assert_eq!(h.len(), rows * self.dim, "FeatureAttention input shape");
        let mut scores = self.proj.infer(store, ctx, h, rows);
        crate::infer::softmax_rows_in_place(&mut scores, rows, self.dim);
        let dim = self.dim as f32;
        for (hv, &s) in h.iter_mut().zip(scores.iter()) {
            *hv *= s * dim;
        }
        ctx.give(scores);
    }

    /// The score projection (for streaming inference).
    pub fn proj(&self) -> &Linear {
        &self.proj
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn param_ids(&self) -> Vec<ParamId> {
        self.proj.param_ids()
    }
}

/// Temporal attention over a `[batch, channels, time]` sequence: a learned
/// score per time step, softmax across time, and a weighted sum of the
/// per-step channel vectors. Offered as the `future-work` alternative the
/// paper's discussion mentions; the component ablation bench compares it
/// with [`FeatureAttention`].
#[derive(Debug, Clone)]
pub struct TemporalAttention {
    score: Linear,
    channels: usize,
}

impl TemporalAttention {
    pub fn new(store: &mut ParamStore, name: &str, channels: usize, rng: &mut Rng) -> Self {
        let score = Linear::with_init(
            store,
            &format!("{name}.score"),
            channels,
            1,
            Init::XavierUniform,
            true,
            rng,
        );
        Self { score, channels }
    }

    /// `[batch, channels, time] -> [batch, channels]` context vector.
    pub fn forward(&self, g: &mut Graph, seq: Var) -> Var {
        let shape = g.value(seq).shape().to_vec();
        assert_eq!(
            shape.len(),
            3,
            "temporal attention expects [batch, ch, time]"
        );
        assert_eq!(shape[1], self.channels);
        let time = shape[2];
        // Score each step: tanh(h_t) -> linear -> [batch, 1].
        let mut scores = Vec::with_capacity(time);
        let mut steps = Vec::with_capacity(time);
        for t in 0..time {
            let h_t = g.select_time(seq, t);
            steps.push(h_t);
            let a = g.tanh(h_t);
            scores.push(self.score.forward(g, a));
        }
        let logits = g.concat_cols(&scores); // [batch, time]
        let weights = g.softmax_rows(logits);
        // context = sum_t w_t * h_t
        let mut context: Option<Var> = None;
        for (t, &h_t) in steps.iter().enumerate() {
            let w_t = g.slice_cols(weights, t, t + 1); // [batch, 1]
            let contrib = g.mul(h_t, w_t); // broadcast over channels
            context = Some(match context {
                Some(c) => g.add(c, contrib),
                None => contrib,
            });
        }
        context.expect("temporal attention over empty sequence")
    }

    /// Tape-free forward: `seq` is `[batch, channels, time]` row-major,
    /// returns the `[batch, channels]` context in a buffer from `ctx`.
    /// Mirrors the taped per-step score / softmax / weighted-sum order.
    pub fn infer(
        &self,
        store: &ParamStore,
        ctx: &mut crate::infer::InferenceContext,
        seq: &[f32],
        batch: usize,
        time: usize,
    ) -> Vec<f32> {
        let ch = self.channels;
        debug_assert_eq!(seq.len(), batch * ch * time, "TemporalAttention shape");
        let mut h_t = ctx.take(batch * ch);
        let mut a = ctx.take(batch * ch);
        let mut logits = ctx.take(batch * time);
        for t in 0..time {
            crate::infer::select_time_into(seq, &mut h_t, batch, ch, time, t);
            a.copy_from_slice(&h_t);
            crate::infer::tanh_in_place(&mut a);
            let s = self.score.infer(store, ctx, &a, batch); // [batch, 1]
            for (b, &sv) in s.iter().enumerate() {
                logits[b * time + t] = sv;
            }
            ctx.give(s);
        }
        crate::infer::softmax_rows_in_place(&mut logits, batch, time);
        // context = sum_t w_t * h_t, accumulated in ascending t like the tape.
        let mut context = ctx.take(batch * ch);
        for t in 0..time {
            crate::infer::select_time_into(seq, &mut h_t, batch, ch, time, t);
            for b in 0..batch {
                let w = logits[b * time + t];
                let row = &h_t[b * ch..(b + 1) * ch];
                let out = &mut context[b * ch..(b + 1) * ch];
                for (o, &hv) in out.iter_mut().zip(row) {
                    *o += hv * w;
                }
            }
        }
        ctx.give(h_t);
        ctx.give(a);
        ctx.give(logits);
        context
    }

    pub fn channels(&self) -> usize {
        self.channels
    }

    pub fn param_ids(&self) -> Vec<ParamId> {
        self.score.param_ids()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::Tensor;

    #[test]
    fn feature_attention_shape_and_gradients() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(1);
        let attn = FeatureAttention::new(&mut store, "attn", 4, &mut rng);
        let mut g = Graph::new(&store);
        let x = g.input(Tensor::rand_normal(&[3, 4], 0.0, 1.0, &mut rng));
        let y = attn.forward(&mut g, x, x);
        assert_eq!(g.value(y).shape(), &[3, 4]);
        let sq = g.square(y);
        let loss = g.mean_all(sq);
        let grads = g.backward(loss);
        for id in attn.param_ids() {
            assert!(grads.get(id).is_some());
        }
    }

    #[test]
    fn uniform_attention_is_near_identity_at_init() {
        // With zero weights the softmax is uniform; rescaling by dim makes
        // the gate exactly 1 everywhere.
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(2);
        let attn = FeatureAttention::new(&mut store, "attn", 5, &mut rng);
        for id in attn.param_ids() {
            store.value_mut(id).map_inplace(|_| 0.0);
        }
        let mut g = Graph::new(&store);
        let data = Tensor::rand_normal(&[2, 5], 0.0, 1.0, &mut rng);
        let x = g.input(data.clone());
        let y = attn.forward(&mut g, x, x);
        assert!(g.value(y).allclose(&data, 1e-5));
    }

    #[test]
    fn temporal_attention_contracts_time_axis() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(3);
        let attn = TemporalAttention::new(&mut store, "tattn", 6, &mut rng);
        let mut g = Graph::new(&store);
        let x = g.input(Tensor::rand_normal(&[4, 6, 9], 0.0, 1.0, &mut rng));
        let ctx = attn.forward(&mut g, x);
        assert_eq!(g.value(ctx).shape(), &[4, 6]);
    }

    #[test]
    fn temporal_attention_is_convex_combination() {
        // With a constant-across-time sequence the context equals that
        // constant vector regardless of the learned scores.
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(4);
        let attn = TemporalAttention::new(&mut store, "tattn", 3, &mut rng);
        let step = Tensor::from_vec(vec![1.0, -2.0, 0.5], &[3]);
        let mut data = Tensor::zeros(&[1, 3, 5]);
        for c in 0..3 {
            for t in 0..5 {
                data.set(&[0, c, t], step.as_slice()[c]);
            }
        }
        let mut g = Graph::new(&store);
        let x = g.input(data);
        let ctx = attn.forward(&mut g, x);
        assert!(g.value(ctx).allclose(&step.reshape(&[1, 3]).unwrap(), 1e-5));
    }

    #[test]
    fn feature_attention_infer_matches_taped_forward() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(7);
        let attn = FeatureAttention::new(&mut store, "attn", 6, &mut rng);
        // Give the projection non-trivial weights so the gate is not uniform.
        for id in attn.param_ids() {
            let t = Tensor::rand_normal(store.value(id).shape(), 0.0, 0.5, &mut rng);
            *store.value_mut(id) = t;
        }
        let data = Tensor::rand_normal(&[4, 6], 0.0, 1.0, &mut rng);
        let mut g = Graph::new(&store);
        let x = g.input(data.clone());
        let y = attn.forward(&mut g, x, x);
        let taped = g.value(y).clone();

        let mut ctx = crate::infer::InferenceContext::new();
        let mut buf = data.as_slice().to_vec();
        attn.infer_in_place(&store, &mut ctx, &mut buf, 4);
        assert_eq!(buf.as_slice(), taped.as_slice());
    }

    #[test]
    fn temporal_attention_infer_matches_taped_forward() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(8);
        let attn = TemporalAttention::new(&mut store, "tattn", 5, &mut rng);
        let data = Tensor::rand_normal(&[3, 5, 7], 0.0, 1.0, &mut rng);
        let mut g = Graph::new(&store);
        let x = g.input(data.clone());
        let y = attn.forward(&mut g, x);
        let taped = g.value(y).clone();

        let mut ctx = crate::infer::InferenceContext::new();
        let out = attn.infer(&store, &mut ctx, data.as_slice(), 3, 7);
        assert!(
            out.iter()
                .zip(taped.as_slice())
                .all(|(a, b)| (a - b).abs() <= 1e-6),
            "temporal attention diverged from tape"
        );
    }

    #[test]
    fn temporal_attention_gradients_reach_scores() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(5);
        let attn = TemporalAttention::new(&mut store, "tattn", 3, &mut rng);
        let mut g = Graph::new(&store);
        let x = g.input(Tensor::rand_normal(&[2, 3, 4], 0.0, 1.0, &mut rng));
        let ctx = attn.forward(&mut g, x);
        let sq = g.square(ctx);
        let loss = g.mean_all(sq);
        let grads = g.backward(loss);
        for id in attn.param_ids() {
            assert!(grads.get(id).is_some());
            assert!(grads.get(id).unwrap().all_finite());
        }
    }
}
