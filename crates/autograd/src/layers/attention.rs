//! Attention mechanisms (paper eqs. 7–8: `a = f_φ(x)`, `g = a ⊙ z`).

use tensor::Rng;

use crate::graph::{Graph, Var};
use crate::init::Init;
use crate::layers::linear::Linear;
use crate::params::{ParamId, ParamStore};

/// Feature attention: a single-layer attention network produces a softmax
/// weighting over the feature vector, which elementwise-gates a value vector
/// (`g = a ⊙ z`). This is the mechanism RPTCN inserts after its fully
/// connected layer.
///
/// The softmax is rescaled by the feature count so an uninformative
/// (uniform) attention leaves the values unchanged instead of shrinking
/// them by `1/dim` — without this the block would start as a heavy
/// attenuation and slow convergence.
#[derive(Debug, Clone)]
pub struct FeatureAttention {
    proj: Linear,
    dim: usize,
}

impl FeatureAttention {
    pub fn new(store: &mut ParamStore, name: &str, dim: usize, rng: &mut Rng) -> Self {
        // Zero-initialised scores give a uniform softmax, so with the
        // dim-rescaling below the block starts as the identity gate and the
        // network's initial loss is not inflated by random attention peaks.
        let proj = Linear::with_init(
            store,
            &format!("{name}.proj"),
            dim,
            dim,
            Init::Constant(0.0),
            true,
            rng,
        );
        Self { proj, dim }
    }

    /// Compute the attention vector from `query` and gate `values` with it.
    /// Both are `[batch, dim]`; so is the result.
    pub fn forward(&self, g: &mut Graph, query: Var, values: Var) -> Var {
        debug_assert_eq!(g.value(query).shape()[1], self.dim);
        let scores = self.proj.forward(g, query);
        let attn = g.softmax_rows(scores);
        let attn = g.scale(attn, self.dim as f32);
        g.mul(attn, values)
    }

    pub fn param_ids(&self) -> Vec<ParamId> {
        self.proj.param_ids()
    }
}

/// Temporal attention over a `[batch, channels, time]` sequence: a learned
/// score per time step, softmax across time, and a weighted sum of the
/// per-step channel vectors. Offered as the `future-work` alternative the
/// paper's discussion mentions; the component ablation bench compares it
/// with [`FeatureAttention`].
#[derive(Debug, Clone)]
pub struct TemporalAttention {
    score: Linear,
    channels: usize,
}

impl TemporalAttention {
    pub fn new(store: &mut ParamStore, name: &str, channels: usize, rng: &mut Rng) -> Self {
        let score = Linear::with_init(
            store,
            &format!("{name}.score"),
            channels,
            1,
            Init::XavierUniform,
            true,
            rng,
        );
        Self { score, channels }
    }

    /// `[batch, channels, time] -> [batch, channels]` context vector.
    pub fn forward(&self, g: &mut Graph, seq: Var) -> Var {
        let shape = g.value(seq).shape().to_vec();
        assert_eq!(
            shape.len(),
            3,
            "temporal attention expects [batch, ch, time]"
        );
        assert_eq!(shape[1], self.channels);
        let time = shape[2];
        // Score each step: tanh(h_t) -> linear -> [batch, 1].
        let mut scores = Vec::with_capacity(time);
        let mut steps = Vec::with_capacity(time);
        for t in 0..time {
            let h_t = g.select_time(seq, t);
            steps.push(h_t);
            let a = g.tanh(h_t);
            scores.push(self.score.forward(g, a));
        }
        let logits = g.concat_cols(&scores); // [batch, time]
        let weights = g.softmax_rows(logits);
        // context = sum_t w_t * h_t
        let mut context: Option<Var> = None;
        for (t, &h_t) in steps.iter().enumerate() {
            let w_t = g.slice_cols(weights, t, t + 1); // [batch, 1]
            let contrib = g.mul(h_t, w_t); // broadcast over channels
            context = Some(match context {
                Some(c) => g.add(c, contrib),
                None => contrib,
            });
        }
        context.expect("temporal attention over empty sequence")
    }

    pub fn param_ids(&self) -> Vec<ParamId> {
        self.score.param_ids()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::Tensor;

    #[test]
    fn feature_attention_shape_and_gradients() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(1);
        let attn = FeatureAttention::new(&mut store, "attn", 4, &mut rng);
        let mut g = Graph::new(&store);
        let x = g.input(Tensor::rand_normal(&[3, 4], 0.0, 1.0, &mut rng));
        let y = attn.forward(&mut g, x, x);
        assert_eq!(g.value(y).shape(), &[3, 4]);
        let sq = g.square(y);
        let loss = g.mean_all(sq);
        let grads = g.backward(loss);
        for id in attn.param_ids() {
            assert!(grads.get(id).is_some());
        }
    }

    #[test]
    fn uniform_attention_is_near_identity_at_init() {
        // With zero weights the softmax is uniform; rescaling by dim makes
        // the gate exactly 1 everywhere.
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(2);
        let attn = FeatureAttention::new(&mut store, "attn", 5, &mut rng);
        for id in attn.param_ids() {
            store.value_mut(id).map_inplace(|_| 0.0);
        }
        let mut g = Graph::new(&store);
        let data = Tensor::rand_normal(&[2, 5], 0.0, 1.0, &mut rng);
        let x = g.input(data.clone());
        let y = attn.forward(&mut g, x, x);
        assert!(g.value(y).allclose(&data, 1e-5));
    }

    #[test]
    fn temporal_attention_contracts_time_axis() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(3);
        let attn = TemporalAttention::new(&mut store, "tattn", 6, &mut rng);
        let mut g = Graph::new(&store);
        let x = g.input(Tensor::rand_normal(&[4, 6, 9], 0.0, 1.0, &mut rng));
        let ctx = attn.forward(&mut g, x);
        assert_eq!(g.value(ctx).shape(), &[4, 6]);
    }

    #[test]
    fn temporal_attention_is_convex_combination() {
        // With a constant-across-time sequence the context equals that
        // constant vector regardless of the learned scores.
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(4);
        let attn = TemporalAttention::new(&mut store, "tattn", 3, &mut rng);
        let step = Tensor::from_vec(vec![1.0, -2.0, 0.5], &[3]);
        let mut data = Tensor::zeros(&[1, 3, 5]);
        for c in 0..3 {
            for t in 0..5 {
                data.set(&[0, c, t], step.as_slice()[c]);
            }
        }
        let mut g = Graph::new(&store);
        let x = g.input(data);
        let ctx = attn.forward(&mut g, x);
        assert!(g.value(ctx).allclose(&step.reshape(&[1, 3]).unwrap(), 1e-5));
    }

    #[test]
    fn temporal_attention_gradients_reach_scores() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(5);
        let attn = TemporalAttention::new(&mut store, "tattn", 3, &mut rng);
        let mut g = Graph::new(&store);
        let x = g.input(Tensor::rand_normal(&[2, 3, 4], 0.0, 1.0, &mut rng));
        let ctx = attn.forward(&mut g, x);
        let sq = g.square(ctx);
        let loss = g.mean_all(sq);
        let grads = g.backward(loss);
        for id in attn.param_ids() {
            assert!(grads.get(id).is_some());
            assert!(grads.get(id).unwrap().all_finite());
        }
    }
}
