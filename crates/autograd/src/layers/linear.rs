//! Fully connected layer (paper eq. 6: `y = W·x + b`).

use tensor::{Rng, Tensor};

use crate::graph::{Graph, Var};
use crate::init::Init;
use crate::params::{ParamId, ParamStore};

/// Dense affine map from `in_dim` to `out_dim` features.
///
/// Weights are stored `[in_dim, out_dim]` so the forward pass is a plain
/// `x · W` on `[batch, in_dim]` activations.
#[derive(Debug, Clone)]
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Create with Xavier-uniform weights and zero bias.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut Rng,
    ) -> Self {
        Self::with_init(store, name, in_dim, out_dim, Init::XavierUniform, true, rng)
    }

    /// Create with an explicit weight initialiser and optional bias.
    pub fn with_init(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        init: Init,
        bias: bool,
        rng: &mut Rng,
    ) -> Self {
        let w = store.register(format!("{name}.w"), init.sample(&[in_dim, out_dim], rng));
        let b = bias.then(|| store.register(format!("{name}.b"), Tensor::zeros(&[out_dim])));
        Self {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// `[batch, in_dim] -> [batch, out_dim]`.
    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        debug_assert_eq!(
            g.value(x).shape()[1],
            self.in_dim,
            "Linear input width mismatch"
        );
        let w = g.param(self.w);
        let y = g.matmul(x, w);
        match self.b {
            Some(b) => {
                let bv = g.param(b);
                g.add(y, bv)
            }
            None => y,
        }
    }

    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Parameter handles (weight first, then bias if present).
    pub fn param_ids(&self) -> Vec<ParamId> {
        let mut ids = vec![self.w];
        ids.extend(self.b);
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matches_manual_affine() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(1);
        let layer = Linear::new(&mut store, "fc", 2, 3, &mut rng);
        // Overwrite with known weights.
        *store.value_mut(layer.param_ids()[0]) =
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        *store.value_mut(layer.param_ids()[1]) = Tensor::from_vec(vec![0.1, 0.2, 0.3], &[3]);

        let mut g = Graph::new(&store);
        let x = g.input(Tensor::from_vec(vec![1.0, 1.0], &[1, 2]));
        let y = layer.forward(&mut g, x);
        assert!(g
            .value(y)
            .allclose(&Tensor::from_vec(vec![5.1, 7.2, 9.3], &[1, 3]), 1e-5));
    }

    #[test]
    fn bias_free_variant() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(2);
        let layer = Linear::with_init(&mut store, "fc", 4, 2, Init::Constant(0.5), false, &mut rng);
        assert_eq!(layer.param_ids().len(), 1);
        let mut g = Graph::new(&store);
        let x = g.input(Tensor::ones(&[3, 4]));
        let y = layer.forward(&mut g, x);
        assert!(g.value(y).allclose(&Tensor::full(&[3, 2], 2.0), 1e-6));
    }

    #[test]
    fn gradients_flow_through_both_params() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(3);
        let layer = Linear::new(&mut store, "fc", 3, 2, &mut rng);
        let mut g = Graph::new(&store);
        let x = g.input(Tensor::ones(&[5, 3]));
        let y = layer.forward(&mut g, x);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        for id in layer.param_ids() {
            assert!(grads.get(id).is_some(), "missing grad for {id:?}");
        }
        // db = batch count per output.
        assert!(grads
            .get(layer.param_ids()[1])
            .unwrap()
            .allclose(&Tensor::full(&[2], 5.0), 1e-5));
    }
}
