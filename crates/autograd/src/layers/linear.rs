//! Fully connected layer (paper eq. 6: `y = W·x + b`).

use tensor::{Rng, Tensor};

use crate::graph::{Graph, Var};
use crate::init::Init;
use crate::params::{ParamId, ParamStore};

/// Dense affine map from `in_dim` to `out_dim` features.
///
/// Weights are stored `[in_dim, out_dim]` so the forward pass is a plain
/// `x · W` on `[batch, in_dim]` activations.
#[derive(Debug, Clone)]
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Create with Xavier-uniform weights and zero bias.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut Rng,
    ) -> Self {
        Self::with_init(store, name, in_dim, out_dim, Init::XavierUniform, true, rng)
    }

    /// Create with an explicit weight initialiser and optional bias.
    pub fn with_init(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        init: Init,
        bias: bool,
        rng: &mut Rng,
    ) -> Self {
        let w = store.register(format!("{name}.w"), init.sample(&[in_dim, out_dim], rng));
        let b = bias.then(|| store.register(format!("{name}.b"), Tensor::zeros(&[out_dim])));
        Self {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// `[batch, in_dim] -> [batch, out_dim]`.
    pub fn forward(&self, g: &mut Graph, x: Var) -> Var {
        debug_assert_eq!(
            g.value(x).shape()[1],
            self.in_dim,
            "Linear input width mismatch"
        );
        let w = g.param(self.w);
        let y = g.matmul(x, w);
        match self.b {
            Some(b) => {
                let bv = g.param(b);
                g.add(y, bv)
            }
            None => y,
        }
    }

    /// Tape-free forward: `x` is `[rows, in_dim]` row-major, returns a
    /// `[rows, out_dim]` buffer drawn from `ctx`. Shares the matmul kernel
    /// with the taped path, so the outputs are bit-identical.
    pub fn infer(
        &self,
        store: &ParamStore,
        ctx: &mut crate::infer::InferenceContext,
        x: &[f32],
        rows: usize,
    ) -> Vec<f32> {
        debug_assert_eq!(x.len(), rows * self.in_dim, "Linear::infer input shape");
        let w = store.value(self.w).as_slice();
        let mut out = ctx.take(rows * self.out_dim);
        tensor::matmul::matmul_into(x, w, &mut out, rows, self.in_dim, self.out_dim);
        if let Some(b) = self.b {
            crate::infer::add_row_bias(&mut out, store.value(b).as_slice(), rows, self.out_dim);
        }
        out
    }

    /// Raw weight values `[in_dim, out_dim]` (for streaming inference).
    pub fn weight_values<'a>(&self, store: &'a ParamStore) -> &'a [f32] {
        store.value(self.w).as_slice()
    }

    /// Raw bias values `[out_dim]`, when the layer has a bias.
    pub fn bias_values<'a>(&self, store: &'a ParamStore) -> Option<&'a [f32]> {
        self.b.map(|b| store.value(b).as_slice())
    }

    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Parameter handles (weight first, then bias if present).
    pub fn param_ids(&self) -> Vec<ParamId> {
        let mut ids = vec![self.w];
        ids.extend(self.b);
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matches_manual_affine() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(1);
        let layer = Linear::new(&mut store, "fc", 2, 3, &mut rng);
        // Overwrite with known weights.
        *store.value_mut(layer.param_ids()[0]) =
            Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        *store.value_mut(layer.param_ids()[1]) = Tensor::from_vec(vec![0.1, 0.2, 0.3], &[3]);

        let mut g = Graph::new(&store);
        let x = g.input(Tensor::from_vec(vec![1.0, 1.0], &[1, 2]));
        let y = layer.forward(&mut g, x);
        assert!(g
            .value(y)
            .allclose(&Tensor::from_vec(vec![5.1, 7.2, 9.3], &[1, 3]), 1e-5));
    }

    #[test]
    fn bias_free_variant() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(2);
        let layer = Linear::with_init(&mut store, "fc", 4, 2, Init::Constant(0.5), false, &mut rng);
        assert_eq!(layer.param_ids().len(), 1);
        let mut g = Graph::new(&store);
        let x = g.input(Tensor::ones(&[3, 4]));
        let y = layer.forward(&mut g, x);
        assert!(g.value(y).allclose(&Tensor::full(&[3, 2], 2.0), 1e-6));
    }

    #[test]
    fn infer_matches_taped_forward_bitwise() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(9);
        let layer = Linear::new(&mut store, "fc", 6, 4, &mut rng);
        let xdata = Tensor::rand_normal(&[5, 6], 0.0, 1.0, &mut rng);
        let mut g = Graph::new(&store);
        let x = g.input(xdata.clone());
        let y = layer.forward(&mut g, x);
        let taped = g.value(y).clone();

        let mut ctx = crate::infer::InferenceContext::new();
        let out = layer.infer(&store, &mut ctx, xdata.as_slice(), 5);
        assert_eq!(out.as_slice(), taped.as_slice());
    }

    #[test]
    fn gradients_flow_through_both_params() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(3);
        let layer = Linear::new(&mut store, "fc", 3, 2, &mut rng);
        let mut g = Graph::new(&store);
        let x = g.input(Tensor::ones(&[5, 3]));
        let y = layer.forward(&mut g, x);
        let loss = g.sum_all(y);
        let grads = g.backward(loss);
        for id in layer.param_ids() {
            assert!(grads.get(id).is_some(), "missing grad for {id:?}");
        }
        // db = batch count per output.
        assert!(grads
            .get(layer.param_ids()[1])
            .unwrap()
            .allclose(&Tensor::full(&[2], 5.0), 1e-5));
    }
}
