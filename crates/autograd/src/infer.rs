//! Tape-free inference: a scratch-arena forward pass for serving.
//!
//! Training needs the tape — every op records a node and allocates a fresh
//! `Tensor` so `Graph::backward` can replay the chain rule. Serving needs
//! neither: a forecast is a single forward evaluation, so the per-op
//! bookkeeping and allocations are pure overhead. This module provides the
//! serving alternative:
//!
//! * [`InferenceContext`] — a pool of reusable `Vec<f32>` scratch buffers.
//!   Layers `take` a buffer, compute into it and `give` it back; after a
//!   warm-up pass the pool serves every request and the steady-state path
//!   performs **zero heap allocations** ([`InferenceContext::fresh_allocs`]
//!   counts the misses so benchmarks can prove it).
//! * In-place activation / bias / softmax helpers that replicate the exact
//!   arithmetic of the corresponding `tensor` kernels (same accumulation
//!   widths, same evaluation order), so a tape-free forward pass matches the
//!   taped one bit-for-bit wherever the layers share the underlying matmul
//!   and conv kernels.
//! * [`predict`] — the batched driver mirroring `train::predict`, routed
//!   through [`SequenceModel::infer`](crate::SequenceModel::infer).
//!
//! Layers expose their tape-free forward as `infer` methods (see
//! `layers::linear`, `layers::conv`, `layers::attention`, `layers::lstm`,
//! `layers::gru`); models compose those into full-network `infer`
//! implementations.

use std::cell::RefCell;

use tensor::Tensor;

use crate::train::{take_rows, SequenceModel};

/// Buffers kept in the pool; beyond this the extras are dropped. A full
/// RPTCN forward pass holds well under this many buffers at once.
const MAX_POOLED: usize = 64;

/// A scratch arena for tape-free forward passes.
///
/// Not thread-safe by design — each shard / worker thread owns one (or uses
/// [`with_thread_context`]). Buffers are recycled by *capacity*, so a
/// context warmed up on one shape serves any smaller shape allocation-free.
#[derive(Debug, Default)]
pub struct InferenceContext {
    pool: Vec<Vec<f32>>,
    fresh_allocs: u64,
}

impl InferenceContext {
    pub fn new() -> Self {
        Self::default()
    }

    /// Borrow a zero-filled buffer of exactly `len` elements, reusing pooled
    /// capacity when available.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        match self.pool.iter().position(|b| b.capacity() >= len) {
            Some(i) => {
                let mut buf = self.pool.swap_remove(i);
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => {
                self.fresh_allocs += 1;
                vec![0.0; len]
            }
        }
    }

    /// Return a buffer to the pool for reuse.
    pub fn give(&mut self, buf: Vec<f32>) {
        if self.pool.len() < MAX_POOLED && buf.capacity() > 0 {
            self.pool.push(buf);
        }
    }

    /// How many `take` calls had to hit the heap. Flat across repeated
    /// same-shape forward passes == the steady-state path is allocation-free.
    pub fn fresh_allocs(&self) -> u64 {
        self.fresh_allocs
    }
}

thread_local! {
    static THREAD_CTX: RefCell<InferenceContext> = RefCell::new(InferenceContext::new());
}

/// Run `f` with this thread's shared inference context. The serving hot
/// path goes through here so every forecast on a shard thread reuses one
/// warmed-up arena.
pub fn with_thread_context<R>(f: impl FnOnce(&mut InferenceContext) -> R) -> R {
    THREAD_CTX.with(|c| f(&mut c.borrow_mut()))
}

/// Fresh-allocation count of this thread's shared context.
pub fn thread_context_allocs() -> u64 {
    THREAD_CTX.with(|c| c.borrow().fresh_allocs())
}

// ---- in-place kernels ------------------------------------------------------
//
// Each helper replicates the arithmetic of the corresponding `tensor` op
// exactly (same accumulator widths, same order), so tape-free activations
// match taped ones bitwise.

// hot-path: per-push inference kernel, must stay allocation-free
/// `x.max(0.0)` elementwise (replicates `tensor::ops::relu`).
pub fn relu_in_place(buf: &mut [f32]) {
    for v in buf {
        *v = v.max(0.0);
    }
}

// hot-path: per-push inference kernel, must stay allocation-free
/// `tanh(x)` elementwise (replicates `tensor::ops::tanh`).
pub fn tanh_in_place(buf: &mut [f32]) {
    for v in buf {
        *v = v.tanh();
    }
}

// hot-path: per-push inference kernel, must stay allocation-free
/// Numerically-stable logistic sigmoid, identical to the `tensor` kernel.
#[inline]
pub fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        let z = (-x).exp();
        1.0 / (1.0 + z)
    } else {
        let z = x.exp();
        z / (1.0 + z)
    }
}

// hot-path: per-push inference kernel, must stay allocation-free
/// Sigmoid elementwise (replicates `tensor::ops::sigmoid`).
pub fn sigmoid_in_place(buf: &mut [f32]) {
    for v in buf {
        *v = stable_sigmoid(*v);
    }
}

// hot-path: per-push inference kernel, must stay allocation-free
/// Row-wise softmax over a `[rows, cols]` buffer (replicates
/// `tensor::reduce::softmax_rows`, including the f64 denominator).
pub fn softmax_rows_in_place(buf: &mut [f32], rows: usize, cols: usize) {
    assert_eq!(buf.len(), rows * cols, "softmax_rows_in_place shape");
    for row in buf.chunks_mut(cols.max(1)).take(rows) {
        let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f64;
        for x in row.iter_mut() {
            let e = (*x - mx).exp();
            *x = e;
            denom += e as f64;
        }
        let inv = 1.0 / denom as f32;
        for slot in row.iter_mut() {
            *slot *= inv;
        }
    }
}

// hot-path: per-push inference kernel, must stay allocation-free
/// `out[r][j] += bias[j]` — the `[batch, n] + [n]` broadcast of the tape.
pub fn add_row_bias(out: &mut [f32], bias: &[f32], rows: usize, cols: usize) {
    assert_eq!(out.len(), rows * cols, "add_row_bias shape");
    assert_eq!(bias.len(), cols, "add_row_bias bias length");
    for row in out.chunks_mut(cols) {
        for (o, &b) in row.iter_mut().zip(bias) {
            *o += b;
        }
    }
}

// hot-path: per-push inference kernel, must stay allocation-free
/// `out[b][c][t] += bias[c]` — the `[batch, ch, time] + [ch, 1]` broadcast
/// the conv layer's tape performs.
pub fn add_channel_bias(out: &mut [f32], bias: &[f32], batch: usize, ch: usize, time: usize) {
    assert_eq!(out.len(), batch * ch * time, "add_channel_bias shape");
    assert_eq!(bias.len(), ch, "add_channel_bias bias length");
    for item in out.chunks_mut(ch * time).take(batch) {
        for (c, row) in item.chunks_mut(time).enumerate() {
            let b = bias[c];
            for o in row {
                *o += b;
            }
        }
    }
}

// hot-path: per-push inference kernel, must stay allocation-free
/// `out[b][c] = src[b][c][t]` — replicates `Graph::select_time`.
pub fn select_time_into(
    src: &[f32],
    out: &mut [f32],
    batch: usize,
    ch: usize,
    time: usize,
    t: usize,
) {
    assert!(t < time, "select_time_into {t} out of {time}");
    assert_eq!(src.len(), batch * ch * time, "select_time_into src shape");
    assert_eq!(out.len(), batch * ch, "select_time_into out shape");
    for bi in 0..batch {
        for ci in 0..ch {
            out[bi * ch + ci] = src[(bi * ch + ci) * time + t];
        }
    }
}

/// Tape-free batched inference over `x: [n, time, features]`, chunked like
/// `train::predict` and routed through [`SequenceModel::infer`].
///
/// Stacked batches of at least [`batch_exec::MIN_PARALLEL_ROWS`] rows are
/// split across the pinned [`batch_exec::global`] worker pool with a static
/// contiguous row partition. Rows are independent through the whole network
/// (the GEMM and conv kernels give every output element one fixed
/// accumulation chain regardless of `m`), so the parallel result is bitwise
/// identical to the sequential stacked call — asserted in
/// `tests/infer_parity.rs`.
pub fn predict<M: SequenceModel + ?Sized + Sync>(
    model: &M,
    x: &Tensor,
    batch_size: usize,
    ctx: &mut InferenceContext,
) -> Tensor {
    let n = x.shape()[0];
    let cap = batch_size.max(1);
    if n >= crate::batch_exec::MIN_PARALLEL_ROWS {
        let exec = crate::batch_exec::global();
        if exec.workers() > 1 {
            return predict_on(model, x, cap, exec);
        }
    }
    if n <= cap {
        // The serving hot path: no row gather, straight into the model.
        return model.infer(ctx, x);
    }
    let horizon = model.horizon();
    let mut out = Vec::with_capacity(n * horizon);
    let rows: Vec<usize> = (0..n).collect();
    for chunk in rows.chunks(cap) {
        let xb = take_rows(x, chunk);
        out.extend_from_slice(model.infer(ctx, &xb).as_slice());
    }
    Tensor::from_vec(out, &[n, horizon])
}

/// Raw output pointer shared across executor workers. Each worker writes
/// only its disjoint `[start, end)` row range, so no synchronisation is
/// needed beyond the executor's completion barrier.
struct RowOutPtr(*mut f32);
// SAFETY: the pointer is only dereferenced through disjoint row ranges
// handed out by the executor's static partition, and the dispatching call
// joins every worker before the buffer is read or freed.
unsafe impl Sync for RowOutPtr {}

/// Fan a stacked batch out over an explicit worker pool. Every worker runs
/// the same per-`cap` chunking the sequential path uses on its own row
/// range, with its own thread-local [`InferenceContext`], and writes into
/// its disjoint slice of the output. Total for every `(rows, workers)`
/// combination — small batches and single-worker pools run inline on the
/// caller — and bitwise identical to the sequential path throughout.
/// [`predict`] routes through this with [`crate::batch_exec::global`];
/// parity tests and `bench_infer` pass pools of explicit sizes.
pub fn predict_on<M: SequenceModel + ?Sized + Sync>(
    model: &M,
    x: &Tensor,
    cap: usize,
    exec: &crate::batch_exec::BatchExecutor,
) -> Tensor {
    let cap = cap.max(1);
    let n = x.shape()[0];
    let horizon = model.horizon();
    let row_stride = x.len() / n.max(1);
    let xs = x.as_slice();
    let sub_shape = x.shape().to_vec();
    let mut out = vec![0.0f32; n * horizon];
    let out_ptr = RowOutPtr(out.as_mut_ptr());
    exec.run_rows(n, |_worker, start, end| {
        // Capture the Sync wrapper itself, not the raw field (edition-2021
        // disjoint capture would otherwise grab the bare `*mut f32`).
        let out_ptr = &out_ptr;
        // SAFETY: `start..end` comes from the executor's static partition,
        // so ranges across workers are disjoint and within `0..n`; the
        // dispatch blocks until all workers finish, keeping `out` alive.
        let dst = unsafe {
            std::slice::from_raw_parts_mut(out_ptr.0.add(start * horizon), (end - start) * horizon)
        };
        with_thread_context(|wctx| {
            let mut filled = 0usize;
            let mut chunk_start = start;
            while chunk_start < end {
                let rows = cap.min(end - chunk_start);
                let mut shape = sub_shape.clone();
                shape[0] = rows;
                let xb = Tensor::from_vec(
                    xs[chunk_start * row_stride..(chunk_start + rows) * row_stride].to_vec(),
                    &shape,
                );
                let pred = model.infer(wctx, &xb);
                dst[filled..filled + rows * horizon].copy_from_slice(pred.as_slice());
                filled += rows * horizon;
                chunk_start += rows;
            }
        });
    });
    Tensor::from_vec(out, &[n, horizon])
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::{ops, reduce, Rng};

    #[test]
    fn arena_reuses_buffers_after_warmup() {
        let mut ctx = InferenceContext::new();
        let a = ctx.take(128);
        let b = ctx.take(64);
        assert_eq!(ctx.fresh_allocs(), 2);
        ctx.give(a);
        ctx.give(b);
        // Smaller and equal requests are served from the pool.
        let c = ctx.take(100);
        let d = ctx.take(64);
        assert_eq!(ctx.fresh_allocs(), 2, "pool miss after warm-up");
        assert!(c.iter().all(|&v| v == 0.0), "recycled buffer not zeroed");
        ctx.give(c);
        ctx.give(d);
    }

    #[test]
    fn arena_counts_fresh_allocations() {
        let mut ctx = InferenceContext::new();
        let a = ctx.take(16);
        ctx.give(a);
        let _bigger = ctx.take(32); // cannot be served by the 16-cap buffer
        assert_eq!(ctx.fresh_allocs(), 2);
    }

    #[test]
    fn softmax_matches_tensor_kernel_bitwise() {
        let mut rng = Rng::seed_from(1);
        let t = Tensor::rand_normal(&[5, 7], 0.0, 3.0, &mut rng);
        let reference = reduce::softmax_rows(&t);
        let mut buf = t.as_slice().to_vec();
        softmax_rows_in_place(&mut buf, 5, 7);
        assert_eq!(buf.as_slice(), reference.as_slice());
    }

    #[test]
    fn activations_match_tensor_kernels_bitwise() {
        let mut rng = Rng::seed_from(2);
        let t = Tensor::rand_normal(&[64], 0.0, 10.0, &mut rng);
        let mut relu = t.as_slice().to_vec();
        relu_in_place(&mut relu);
        assert_eq!(relu.as_slice(), ops::relu(&t).as_slice());
        let mut tanh = t.as_slice().to_vec();
        tanh_in_place(&mut tanh);
        assert_eq!(tanh.as_slice(), ops::tanh(&t).as_slice());
        let mut sig = t.as_slice().to_vec();
        sigmoid_in_place(&mut sig);
        assert_eq!(sig.as_slice(), ops::sigmoid(&t).as_slice());
    }

    #[test]
    fn row_and_channel_bias_match_broadcast_add() {
        let mut rng = Rng::seed_from(3);
        let y = Tensor::rand_normal(&[4, 3], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[3], 0.0, 1.0, &mut rng);
        let reference = ops::add(&y, &b);
        let mut buf = y.as_slice().to_vec();
        add_row_bias(&mut buf, b.as_slice(), 4, 3);
        assert_eq!(buf.as_slice(), reference.as_slice());

        let y3 = Tensor::rand_normal(&[2, 3, 5], 0.0, 1.0, &mut rng);
        let bc = Tensor::rand_normal(&[3, 1], 0.0, 1.0, &mut rng);
        let reference = ops::add(&y3, &bc);
        let mut buf = y3.as_slice().to_vec();
        add_channel_bias(&mut buf, bc.as_slice(), 2, 3, 5);
        assert_eq!(buf.as_slice(), reference.as_slice());
    }

    #[test]
    fn select_time_matches_layout() {
        let t = Tensor::arange(2 * 3 * 4).into_reshape(&[2, 3, 4]).unwrap();
        let mut out = vec![0.0f32; 2 * 3];
        select_time_into(t.as_slice(), &mut out, 2, 3, 4, 2);
        // src[b][c][t=2] = (b*3 + c)*4 + 2
        assert_eq!(out, &[2.0, 6.0, 10.0, 14.0, 18.0, 22.0]);
    }

    #[test]
    fn thread_context_is_reused() {
        let before = thread_context_allocs();
        with_thread_context(|ctx| {
            let buf = ctx.take(256);
            ctx.give(buf);
        });
        with_thread_context(|ctx| {
            let buf = ctx.take(256);
            ctx.give(buf);
        });
        assert_eq!(thread_context_allocs(), before + 1);
    }
}
