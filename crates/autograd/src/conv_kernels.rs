//! Forward and backward kernels for dilated causal 1-D convolution — the
//! workhorse of TCN/RPTCN. Layout: activations are `[batch, channels, time]`,
//! weights are `[out_ch, in_ch, kernel]`.
//!
//! Causality follows eq. (4) of the paper: the output at time `t` reads
//! inputs `x_{t - (K-1-kk)·d}` for tap `kk`, i.e. only the past. Negative
//! time indices contribute zero (implicit left padding of `(K-1)·d`).

use rayon::prelude::*;
use tensor::Tensor;

/// Parallelise over the batch only when there is enough arithmetic per item.
const PAR_THRESHOLD: usize = 1 << 16;

#[cfg(target_arch = "x86_64")]
mod simd {
    #[cfg(not(miri))]
    use std::arch::x86_64::*;

    /// Capacity of the on-stack left-padded input scratch; the AVX path
    /// requires `in_ch * (time + 2*dilation) + 8` floats to fit (the final
    /// 8 absorb full-width over-reads of the last row).
    pub const PAD_CAP: usize = 1024;

    /// Capacity of the on-stack output scratch (four rows, 8-aligned).
    const Y_CAP: usize = 512;

    /// Longest row the AVX path handles: four 8-aligned rows must fit in
    /// the output scratch.
    pub const MAX_TIME: usize = Y_CAP / 4;

    /// One batch item of the fused k=3 kernel, vectorised. Each input row
    /// is first copied into a scratch row with `2*dilation` leading zeros,
    /// which turns the causal warm-up region into ordinary lanes: every
    /// output element becomes `y[t] += w0*xp[t] + w1*xp[t+d] + w2*xp[t+2d]`
    /// and one full-width loop covers the whole row at any dilation. Four
    /// output rows share every input load (independent accumulator chains).
    ///
    /// Bitwise identity with `tap_accumulate` holds because (a) multiplies
    /// and adds stay separate instructions (Rust never contracts to FMA),
    /// (b) per element, contributions land in the same `(in-channel, tap)`
    /// order, and (c) the extra `w * 0.0` terms for taps the reference
    /// skips are exact no-ops: the weights are finite and nonzero (the
    /// caller checks), so each such term is `±0.0`, and an accumulator
    /// that starts at `+0.0` can never become `-0.0` under
    /// round-to-nearest, so adding a signed zero never changes its bits.
    ///
    /// # Safety
    ///
    /// The caller must verify AVX support at runtime, `k == 3`,
    /// `2*dilation < time`, finite nonzero weights, slice lengths matching
    /// the `[in_ch|out_ch, time]` row-major layout,
    /// `in_ch * (time + 2*dilation) + 8 <= PAD_CAP`, and
    /// `time <= MAX_TIME`.
    #[allow(clippy::too_many_arguments)]
    #[cfg(not(miri))]
    #[target_feature(enable = "avx")]
    pub unsafe fn item_fused_avx(
        x_item: &[f32],
        dw: &[f32],
        out_item: &mut [f32],
        in_ch: usize,
        out_ch: usize,
        time: usize,
        d: usize,
    ) {
        // SAFETY: the whole kernel relies on the fn contract above —
        // AVX verified by the caller, `k == 3`, `2*dilation < time`,
        // row-major slices of the stated lengths, and the scratch-fit
        // bounds `in_ch*(time+2d)+8 <= PAD_CAP`, `time <= MAX_TIME`.
        // The per-loop bounds are spelled out where each loop starts.
        unsafe {
            let head = 2 * d;
            let stride = time + head;
            let mut pad = [0.0f32; PAD_CAP];
            for ic in 0..in_ch {
                pad[ic * stride + head..(ic + 1) * stride]
                    .copy_from_slice(&x_item[ic * time..(ic + 1) * time]);
            }
            let st = (time + 7) & !7;
            let mut ys = [0.0f32; Y_CAP];
            let mut rows = out_item.chunks_exact_mut(time);
            let mut oc = 0;
            while oc + 4 <= out_ch {
                // Two output chunks per pass give eight independent accumulator
                // chains — enough to hide vaddps latency — and the 8-aligned
                // scratch rows make every store full-width: lanes past `time`
                // hold garbage from over-reading the padded input and are
                // dropped at copy-out.
                let mut i = 0;
                // SAFETY: the fn contract bounds every access. Input loads read
                // `pad[ic*stride + i .. +head+16]`; the worst case
                // `i = st-16 <= time-9` gives an end offset of at most
                // `in_ch*(time+head) + 8 <= PAD_CAP`. Weight reads stop at
                // `(oc+3)*in_ch*3 + 3 <= dw.len()`. Stores write
                // `ys[3*st + i .. +16] <= 4*st <= Y_CAP` (`time <= MAX_TIME`).
                while i + 16 <= st {
                    let mut v0a = _mm256_setzero_ps();
                    let mut v1a = _mm256_setzero_ps();
                    let mut v2a = _mm256_setzero_ps();
                    let mut v3a = _mm256_setzero_ps();
                    let mut v0b = _mm256_setzero_ps();
                    let mut v1b = _mm256_setzero_ps();
                    let mut v2b = _mm256_setzero_ps();
                    let mut v3b = _mm256_setzero_ps();
                    for ic in 0..in_ch {
                        let xp = pad.as_ptr().add(ic * stride + i);
                        let a0 = _mm256_loadu_ps(xp);
                        let b0 = _mm256_loadu_ps(xp.add(d));
                        let c0 = _mm256_loadu_ps(xp.add(head));
                        let a1 = _mm256_loadu_ps(xp.add(8));
                        let b1 = _mm256_loadu_ps(xp.add(d + 8));
                        let c1 = _mm256_loadu_ps(xp.add(head + 8));
                        let wr = dw.as_ptr().add((oc * in_ch + ic) * 3);
                        let w0 = _mm256_set1_ps(*wr);
                        let w1 = _mm256_set1_ps(*wr.add(1));
                        let w2 = _mm256_set1_ps(*wr.add(2));
                        v0a = _mm256_add_ps(v0a, _mm256_mul_ps(w0, a0));
                        v0a = _mm256_add_ps(v0a, _mm256_mul_ps(w1, b0));
                        v0a = _mm256_add_ps(v0a, _mm256_mul_ps(w2, c0));
                        v0b = _mm256_add_ps(v0b, _mm256_mul_ps(w0, a1));
                        v0b = _mm256_add_ps(v0b, _mm256_mul_ps(w1, b1));
                        v0b = _mm256_add_ps(v0b, _mm256_mul_ps(w2, c1));
                        let wr = dw.as_ptr().add(((oc + 1) * in_ch + ic) * 3);
                        let w0 = _mm256_set1_ps(*wr);
                        let w1 = _mm256_set1_ps(*wr.add(1));
                        let w2 = _mm256_set1_ps(*wr.add(2));
                        v1a = _mm256_add_ps(v1a, _mm256_mul_ps(w0, a0));
                        v1a = _mm256_add_ps(v1a, _mm256_mul_ps(w1, b0));
                        v1a = _mm256_add_ps(v1a, _mm256_mul_ps(w2, c0));
                        v1b = _mm256_add_ps(v1b, _mm256_mul_ps(w0, a1));
                        v1b = _mm256_add_ps(v1b, _mm256_mul_ps(w1, b1));
                        v1b = _mm256_add_ps(v1b, _mm256_mul_ps(w2, c1));
                        let wr = dw.as_ptr().add(((oc + 2) * in_ch + ic) * 3);
                        let w0 = _mm256_set1_ps(*wr);
                        let w1 = _mm256_set1_ps(*wr.add(1));
                        let w2 = _mm256_set1_ps(*wr.add(2));
                        v2a = _mm256_add_ps(v2a, _mm256_mul_ps(w0, a0));
                        v2a = _mm256_add_ps(v2a, _mm256_mul_ps(w1, b0));
                        v2a = _mm256_add_ps(v2a, _mm256_mul_ps(w2, c0));
                        v2b = _mm256_add_ps(v2b, _mm256_mul_ps(w0, a1));
                        v2b = _mm256_add_ps(v2b, _mm256_mul_ps(w1, b1));
                        v2b = _mm256_add_ps(v2b, _mm256_mul_ps(w2, c1));
                        let wr = dw.as_ptr().add(((oc + 3) * in_ch + ic) * 3);
                        let w0 = _mm256_set1_ps(*wr);
                        let w1 = _mm256_set1_ps(*wr.add(1));
                        let w2 = _mm256_set1_ps(*wr.add(2));
                        v3a = _mm256_add_ps(v3a, _mm256_mul_ps(w0, a0));
                        v3a = _mm256_add_ps(v3a, _mm256_mul_ps(w1, b0));
                        v3a = _mm256_add_ps(v3a, _mm256_mul_ps(w2, c0));
                        v3b = _mm256_add_ps(v3b, _mm256_mul_ps(w0, a1));
                        v3b = _mm256_add_ps(v3b, _mm256_mul_ps(w1, b1));
                        v3b = _mm256_add_ps(v3b, _mm256_mul_ps(w2, c1));
                    }
                    _mm256_storeu_ps(ys.as_mut_ptr().add(i), v0a);
                    _mm256_storeu_ps(ys.as_mut_ptr().add(i + 8), v0b);
                    _mm256_storeu_ps(ys.as_mut_ptr().add(st + i), v1a);
                    _mm256_storeu_ps(ys.as_mut_ptr().add(st + i + 8), v1b);
                    _mm256_storeu_ps(ys.as_mut_ptr().add(2 * st + i), v2a);
                    _mm256_storeu_ps(ys.as_mut_ptr().add(2 * st + i + 8), v2b);
                    _mm256_storeu_ps(ys.as_mut_ptr().add(3 * st + i), v3a);
                    _mm256_storeu_ps(ys.as_mut_ptr().add(3 * st + i + 8), v3b);
                    i += 16;
                }
                while i < st {
                    let mut v0 = _mm256_setzero_ps();
                    let mut v1 = _mm256_setzero_ps();
                    let mut v2 = _mm256_setzero_ps();
                    let mut v3 = _mm256_setzero_ps();
                    for ic in 0..in_ch {
                        let xp = pad.as_ptr().add(ic * stride + i);
                        let a = _mm256_loadu_ps(xp);
                        let b = _mm256_loadu_ps(xp.add(d));
                        let c = _mm256_loadu_ps(xp.add(head));
                        let wr = dw.as_ptr().add((oc * in_ch + ic) * 3);
                        v0 = _mm256_add_ps(v0, _mm256_mul_ps(_mm256_set1_ps(*wr), a));
                        v0 = _mm256_add_ps(v0, _mm256_mul_ps(_mm256_set1_ps(*wr.add(1)), b));
                        v0 = _mm256_add_ps(v0, _mm256_mul_ps(_mm256_set1_ps(*wr.add(2)), c));
                        let wr = dw.as_ptr().add(((oc + 1) * in_ch + ic) * 3);
                        v1 = _mm256_add_ps(v1, _mm256_mul_ps(_mm256_set1_ps(*wr), a));
                        v1 = _mm256_add_ps(v1, _mm256_mul_ps(_mm256_set1_ps(*wr.add(1)), b));
                        v1 = _mm256_add_ps(v1, _mm256_mul_ps(_mm256_set1_ps(*wr.add(2)), c));
                        let wr = dw.as_ptr().add(((oc + 2) * in_ch + ic) * 3);
                        v2 = _mm256_add_ps(v2, _mm256_mul_ps(_mm256_set1_ps(*wr), a));
                        v2 = _mm256_add_ps(v2, _mm256_mul_ps(_mm256_set1_ps(*wr.add(1)), b));
                        v2 = _mm256_add_ps(v2, _mm256_mul_ps(_mm256_set1_ps(*wr.add(2)), c));
                        let wr = dw.as_ptr().add(((oc + 3) * in_ch + ic) * 3);
                        v3 = _mm256_add_ps(v3, _mm256_mul_ps(_mm256_set1_ps(*wr), a));
                        v3 = _mm256_add_ps(v3, _mm256_mul_ps(_mm256_set1_ps(*wr.add(1)), b));
                        v3 = _mm256_add_ps(v3, _mm256_mul_ps(_mm256_set1_ps(*wr.add(2)), c));
                    }
                    _mm256_storeu_ps(ys.as_mut_ptr().add(i), v0);
                    _mm256_storeu_ps(ys.as_mut_ptr().add(st + i), v1);
                    _mm256_storeu_ps(ys.as_mut_ptr().add(2 * st + i), v2);
                    _mm256_storeu_ps(ys.as_mut_ptr().add(3 * st + i), v3);
                    i += 8;
                }
                let y0 = rows.next().expect("row count"); // lint: allow(r2) — chunks_exact count checked by the `oc + 4 <= out_ch` guard
                let y1 = rows.next().expect("row count"); // lint: allow(r2) — chunks_exact count checked by the `oc + 4 <= out_ch` guard
                let y2 = rows.next().expect("row count"); // lint: allow(r2) — chunks_exact count checked by the `oc + 4 <= out_ch` guard
                let y3 = rows.next().expect("row count"); // lint: allow(r2) — chunks_exact count checked by the `oc + 4 <= out_ch` guard
                y0.copy_from_slice(&ys[..time]);
                y1.copy_from_slice(&ys[st..st + time]);
                y2.copy_from_slice(&ys[2 * st..2 * st + time]);
                y3.copy_from_slice(&ys[3 * st..3 * st + time]);
                oc += 4;
            }
            for y_row in rows {
                for ic in 0..in_ch {
                    let xp = &pad[ic * stride..(ic + 1) * stride];
                    let w = &dw[(oc * in_ch + ic) * 3..][..3];
                    for t in 0..time {
                        let mut v = y_row[t];
                        v += w[0] * xp[t];
                        v += w[1] * xp[t + d];
                        v += w[2] * xp[t + head];
                        y_row[t] = v;
                    }
                }
                oc += 1;
            }
        }
    }

    /// Scalar twin of the AVX kernel for Miri runs: the same padded-scratch
    /// layout, the same raw-pointer arithmetic and the same per-element
    /// `(in-channel, tap)` accumulation order, so Miri checks the bounds
    /// and aliasing reasoning the vector path relies on while the result
    /// stays bitwise identical to `tap_accumulate` under the fused-path
    /// preconditions (see the parity argument on the AVX variant).
    ///
    /// # Safety
    ///
    /// Same contract as the AVX variant minus the CPU-feature requirement:
    /// `k == 3`, `2*dilation < time`, finite nonzero weights, slice lengths
    /// matching the `[in_ch|out_ch, time]` row-major layout and
    /// `in_ch * (time + 2*dilation) + 8 <= PAD_CAP`.
    #[allow(clippy::too_many_arguments)]
    #[cfg(miri)]
    pub unsafe fn item_fused_avx(
        x_item: &[f32],
        dw: &[f32],
        out_item: &mut [f32],
        in_ch: usize,
        out_ch: usize,
        time: usize,
        d: usize,
    ) {
        let head = 2 * d;
        let stride = time + head;
        let mut pad = [0.0f32; PAD_CAP];
        for ic in 0..in_ch {
            pad[ic * stride + head..(ic + 1) * stride]
                .copy_from_slice(&x_item[ic * time..(ic + 1) * time]);
        }
        let padp = pad.as_ptr();
        let wp = dw.as_ptr();
        let outp = out_item.as_mut_ptr();
        for oc in 0..out_ch {
            for t in 0..time {
                let mut acc = 0.0f32;
                for ic in 0..in_ch {
                    // SAFETY: `t < time` and the contract's scratch-fit
                    // bound keep `ic*stride + t + head < PAD_CAP`; the
                    // weight row ends at `(oc*in_ch + ic)*3 + 3
                    // <= dw.len()`. Taps read the padded row at offsets
                    // `t`, `t+d`, `t+head` — the leading `head` zeros
                    // stand in for the causal warm-up.
                    unsafe {
                        let xp = padp.add(ic * stride + t);
                        let wr = wp.add((oc * in_ch + ic) * 3);
                        acc += *wr * *xp;
                        acc += *wr.add(1) * *xp.add(d);
                        acc += *wr.add(2) * *xp.add(head);
                    }
                }
                // SAFETY: `oc < out_ch` and `t < time`, and the contract
                // guarantees `out_item.len() == out_ch * time`.
                unsafe {
                    *outp.add(oc * time + t) = acc;
                }
            }
        }
    }
}

/// Runtime AVX detection. Under Miri the scalar twin stands in for the
/// vector kernel, so the fast path is always "available" — that is the
/// point: Miri interprets the twin's raw-pointer arithmetic and validates
/// the layout reasoning the real AVX kernel shares.
#[cfg(target_arch = "x86_64")]
fn avx_available() -> bool {
    #[cfg(miri)]
    {
        true
    }
    #[cfg(not(miri))]
    {
        std::is_x86_feature_detected!("avx")
    }
}

/// Accumulate one `(oc, ic)` filter row tap-by-tap: for each tap `kk`, an
/// axpy over the valid region of the row. The reference accumulation
/// order — the fused fast path below must reproduce it bitwise.
#[inline]
fn tap_accumulate(
    y_row: &mut [f32],
    x_row: &[f32],
    w_row: &[f32],
    time: usize,
    k: usize,
    dilation: usize,
) {
    for (kk, &wv) in w_row.iter().enumerate() {
        if wv == 0.0 {
            continue;
        }
        // Tap kk reads x[t - shift]; only t >= shift contributes.
        let shift = (k - 1 - kk) * dilation;
        if shift >= time {
            continue;
        }
        for (y, &xv) in y_row[shift..].iter_mut().zip(&x_row[..time - shift]) {
            *y += wv * xv;
        }
    }
}

/// `out = causal_conv1d(x, w)` over raw row-major slices — the
/// allocation-free kernel the tape-free inference engine builds on.
/// `conv1d_forward` routes through it too, so both paths produce
/// bit-identical activations. `out` is fully overwritten.
///
/// The zero-weight skip stays here (unlike the dense matmul): weight-normed
/// conv filters routinely carry exact zeros and the tap loop is short enough
/// that the branch does not hurt vectorisation.
#[allow(clippy::too_many_arguments)]
pub fn conv1d_into(
    dx: &[f32],
    dw: &[f32],
    out: &mut [f32],
    batch: usize,
    in_ch: usize,
    out_ch: usize,
    time: usize,
    k: usize,
    dilation: usize,
) {
    assert!(dilation >= 1, "dilation must be >= 1");
    assert_eq!(dx.len(), batch * in_ch * time, "conv1d_into input length");
    assert_eq!(dw.len(), out_ch * in_ch * k, "conv1d_into weight length");
    assert_eq!(
        out.len(),
        batch * out_ch * time,
        "conv1d_into output length"
    );
    out.fill(0.0);

    // Fused k=3 fast path: one pass over each row instead of three, four
    // output channels sharing every input load (four independent
    // accumulator chains hide FMA latency). Per element, contributions
    // still land in (in-channel, tap) order as separate adds, so the
    // result is bitwise identical to `tap_accumulate`. Exact-zero weights
    // (whose terms the reference skips) route to the slow path.
    let fused_ok = k == 3 && 2 * dilation < time && dw.iter().all(|&w| w != 0.0);
    #[cfg(target_arch = "x86_64")]
    let use_avx = fused_ok
        && dw.iter().all(|&w| w.is_finite())
        && in_ch * (time + 2 * dilation) + 8 <= simd::PAD_CAP
        && time <= simd::MAX_TIME
        && avx_available();

    let item_fused = |b: usize, out_item: &mut [f32]| {
        let x_item = &dx[b * in_ch * time..(b + 1) * in_ch * time];
        let d = dilation;
        let head = 2 * d;
        let tail = time - head;
        let mut rows = out_item.chunks_exact_mut(time);
        let mut oc = 0;
        while oc + 4 <= out_ch {
            let y0 = rows.next().expect("row count"); // lint: allow(r2) — chunks_exact count checked by the `oc + 4 <= out_ch` guard
            let y1 = rows.next().expect("row count"); // lint: allow(r2) — chunks_exact count checked by the `oc + 4 <= out_ch` guard
            let y2 = rows.next().expect("row count"); // lint: allow(r2) — chunks_exact count checked by the `oc + 4 <= out_ch` guard
            let y3 = rows.next().expect("row count"); // lint: allow(r2) — chunks_exact count checked by the `oc + 4 <= out_ch` guard
            for ic in 0..in_ch {
                let x_row = &x_item[ic * time..(ic + 1) * time];
                let wa = &dw[((oc) * in_ch + ic) * 3..][..3];
                let wb = &dw[((oc + 1) * in_ch + ic) * 3..][..3];
                let wc = &dw[((oc + 2) * in_ch + ic) * 3..][..3];
                let we = &dw[((oc + 3) * in_ch + ic) * 3..][..3];
                // Warm-up region t < 2d, tap-wise like the reference.
                for t in d..head {
                    let xv = x_row[t - d];
                    y0[t] += wa[1] * xv;
                    y1[t] += wb[1] * xv;
                    y2[t] += wc[1] * xv;
                    y3[t] += we[1] * xv;
                }
                for t in 0..head {
                    let xv = x_row[t];
                    y0[t] += wa[2] * xv;
                    y1[t] += wb[2] * xv;
                    y2[t] += wc[2] * xv;
                    y3[t] += we[2] * xv;
                }
                for i in 0..tail {
                    let x0 = x_row[i];
                    let x1 = x_row[d + i];
                    let x2 = x_row[head + i];
                    let t = head + i;
                    let mut v0 = y0[t];
                    v0 += wa[0] * x0;
                    v0 += wa[1] * x1;
                    v0 += wa[2] * x2;
                    y0[t] = v0;
                    let mut v1 = y1[t];
                    v1 += wb[0] * x0;
                    v1 += wb[1] * x1;
                    v1 += wb[2] * x2;
                    y1[t] = v1;
                    let mut v2 = y2[t];
                    v2 += wc[0] * x0;
                    v2 += wc[1] * x1;
                    v2 += wc[2] * x2;
                    y2[t] = v2;
                    let mut v3 = y3[t];
                    v3 += we[0] * x0;
                    v3 += we[1] * x1;
                    v3 += we[2] * x2;
                    y3[t] = v3;
                }
            }
            oc += 4;
        }
        for y_row in rows {
            for ic in 0..in_ch {
                let x_row = &x_item[ic * time..(ic + 1) * time];
                let w = &dw[(oc * in_ch + ic) * 3..][..3];
                for t in d..head {
                    y_row[t] += w[1] * x_row[t - d];
                }
                for t in 0..head {
                    y_row[t] += w[2] * x_row[t];
                }
                for i in 0..tail {
                    let t = head + i;
                    let mut v = y_row[t];
                    v += w[0] * x_row[i];
                    v += w[1] * x_row[d + i];
                    v += w[2] * x_row[t];
                    y_row[t] = v;
                }
            }
            oc += 1;
        }
    };

    let item_kernel = |b: usize, out_item: &mut [f32]| {
        #[cfg(target_arch = "x86_64")]
        if use_avx {
            let x_item = &dx[b * in_ch * time..(b + 1) * in_ch * time];
            // SAFETY: `use_avx` checked AVX support at runtime and implies
            // `fused_ok`; slice lengths were asserted above.
            unsafe {
                simd::item_fused_avx(x_item, dw, out_item, in_ch, out_ch, time, dilation);
            }
            return;
        }
        if fused_ok {
            item_fused(b, out_item);
            return;
        }
        let x_item = &dx[b * in_ch * time..(b + 1) * in_ch * time];
        for oc in 0..out_ch {
            let y_row = &mut out_item[oc * time..(oc + 1) * time];
            for ic in 0..in_ch {
                let x_row = &x_item[ic * time..(ic + 1) * time];
                let w_row = &dw[(oc * in_ch + ic) * k..(oc * in_ch + ic + 1) * k];
                tap_accumulate(y_row, x_row, w_row, time, k, dilation);
            }
        }
    };

    if batch * out_ch * in_ch * time * k >= PAR_THRESHOLD && batch > 1 {
        out.par_chunks_mut(out_ch * time)
            .enumerate()
            .for_each(|(b, chunk)| item_kernel(b, chunk));
    } else {
        for (b, chunk) in out.chunks_mut(out_ch * time).enumerate() {
            item_kernel(b, chunk);
        }
    }
}

/// `y = causal_conv1d(x, w)` with dilation `d`.
///
/// * `x`: `[batch, in_ch, time]`
/// * `w`: `[out_ch, in_ch, k]`
/// * returns `[batch, out_ch, time]` (same length as the input — the network
///   is a 1-D fully-convolutional stack).
pub fn conv1d_forward(x: &Tensor, w: &Tensor, dilation: usize) -> Tensor {
    assert_eq!(x.rank(), 3, "conv input must be [batch, in_ch, time]");
    assert_eq!(w.rank(), 3, "conv weight must be [out_ch, in_ch, k]");
    let (batch, in_ch, time) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let (out_ch, in_ch_w, k) = (w.shape()[0], w.shape()[1], w.shape()[2]);
    assert_eq!(
        in_ch, in_ch_w,
        "channel mismatch: input {in_ch}, weight {in_ch_w}"
    );

    let mut out = vec![0.0f32; batch * out_ch * time];
    conv1d_into(
        x.as_slice(),
        w.as_slice(),
        &mut out,
        batch,
        in_ch,
        out_ch,
        time,
        k,
        dilation,
    );
    Tensor::from_vec(out, &[batch, out_ch, time])
}

/// Gradient of the loss w.r.t. the convolution input.
pub fn conv1d_backward_input(
    grad_out: &Tensor,
    w: &Tensor,
    input_shape: &[usize],
    dilation: usize,
) -> Tensor {
    let (batch, in_ch, time) = (input_shape[0], input_shape[1], input_shape[2]);
    let (out_ch, _, k) = (w.shape()[0], w.shape()[1], w.shape()[2]);
    let dgo = grad_out.as_slice();
    let dw = w.as_slice();
    let mut grad_in = vec![0.0f32; batch * in_ch * time];

    let item_kernel = |b: usize, gin_item: &mut [f32]| {
        let go_item = &dgo[b * out_ch * time..(b + 1) * out_ch * time];
        for oc in 0..out_ch {
            let go_row = &go_item[oc * time..(oc + 1) * time];
            for ic in 0..in_ch {
                let gin_row = &mut gin_item[ic * time..(ic + 1) * time];
                let w_row = &dw[(oc * in_ch + ic) * k..(oc * in_ch + ic + 1) * k];
                for (kk, &wv) in w_row.iter().enumerate() {
                    if wv == 0.0 {
                        continue;
                    }
                    let shift = (k - 1 - kk) * dilation;
                    if shift >= time {
                        continue;
                    }
                    // y[t] += w * x[t-shift]  =>  dx[s] += w * dy[s+shift]
                    for t in shift..time {
                        gin_row[t - shift] += wv * go_row[t];
                    }
                }
            }
        }
    };

    if batch * out_ch * in_ch * time * k >= PAR_THRESHOLD && batch > 1 {
        grad_in
            .par_chunks_mut(in_ch * time)
            .enumerate()
            .for_each(|(b, chunk)| item_kernel(b, chunk));
    } else {
        for (b, chunk) in grad_in.chunks_mut(in_ch * time).enumerate() {
            item_kernel(b, chunk);
        }
    }
    Tensor::from_vec(grad_in, &[batch, in_ch, time])
}

/// Gradient of the loss w.r.t. the convolution weights.
pub fn conv1d_backward_weight(
    grad_out: &Tensor,
    x: &Tensor,
    kernel: usize,
    dilation: usize,
) -> Tensor {
    let (batch, in_ch, time) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let out_ch = grad_out.shape()[1];
    let dgo = grad_out.as_slice();
    let dx = x.as_slice();

    // Map-reduce over the batch: each item produces its own dW, summed at the
    // end. The per-item dW is small (out*in*k), so the reduce is cheap.
    let per_item = |b: usize| -> Vec<f32> {
        let mut gw = vec![0.0f32; out_ch * in_ch * kernel];
        let go_item = &dgo[b * out_ch * time..(b + 1) * out_ch * time];
        let x_item = &dx[b * in_ch * time..(b + 1) * in_ch * time];
        for oc in 0..out_ch {
            let go_row = &go_item[oc * time..(oc + 1) * time];
            for ic in 0..in_ch {
                let x_row = &x_item[ic * time..(ic + 1) * time];
                let gw_row = &mut gw[(oc * in_ch + ic) * kernel..(oc * in_ch + ic + 1) * kernel];
                for (kk, gw_slot) in gw_row.iter_mut().enumerate() {
                    let shift = (kernel - 1 - kk) * dilation;
                    if shift >= time {
                        continue;
                    }
                    let mut acc = 0.0f32;
                    for t in shift..time {
                        acc += go_row[t] * x_row[t - shift];
                    }
                    *gw_slot += acc;
                }
            }
        }
        gw
    };

    let total: Vec<f32> = if batch * out_ch * in_ch * time * kernel >= PAR_THRESHOLD && batch > 1 {
        (0..batch).into_par_iter().map(per_item).reduce(
            || vec![0.0f32; out_ch * in_ch * kernel],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(&b) {
                    *x += y;
                }
                a
            },
        )
    } else {
        let mut acc = vec![0.0f32; out_ch * in_ch * kernel];
        for b in 0..batch {
            for (x, y) in acc.iter_mut().zip(&per_item(b)) {
                *x += y;
            }
        }
        acc
    };
    Tensor::from_vec(total, &[out_ch, in_ch, kernel])
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::Rng;

    #[test]
    fn identity_kernel_passes_input_through() {
        // k=1 weight of 1.0 on a single channel is the identity.
        let x = Tensor::from_vec((1..=5).map(|v| v as f32).collect(), &[1, 1, 5]);
        let w = Tensor::ones(&[1, 1, 1]);
        let y = conv1d_forward(&x, &w, 1);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn causal_shift_matches_hand_computation() {
        // k=2, w = [a=0.5 (past tap), b=2.0 (current tap)], d=1:
        // y[t] = 2*x[t] + 0.5*x[t-1]
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 4]);
        let w = Tensor::from_vec(vec![0.5, 2.0], &[1, 1, 2]);
        let y = conv1d_forward(&x, &w, 1);
        assert_eq!(y.as_slice(), &[2.0, 4.5, 7.0, 9.5]);
    }

    #[test]
    fn dilation_reaches_further_back() {
        // k=2, d=2: y[t] = w1*x[t] + w0*x[t-2]
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0], &[1, 1, 5]);
        let w = Tensor::from_vec(vec![1.0, 1.0], &[1, 1, 2]);
        let y = conv1d_forward(&x, &w, 2);
        assert_eq!(y.as_slice(), &[1.0, 2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn no_future_leakage() {
        // Changing x[t0] must not affect y[t] for t < t0 at any dilation.
        let mut rng = Rng::seed_from(1);
        for &d in &[1usize, 2, 4] {
            let x1 = Tensor::rand_normal(&[1, 2, 10], 0.0, 1.0, &mut rng);
            let mut x2 = x1.clone();
            // Perturb the final time step of each channel.
            for c in 0..2 {
                let v = x2.at(&[0, c, 9]) + 100.0;
                x2.set(&[0, c, 9], v);
            }
            let w = Tensor::rand_normal(&[3, 2, 3], 0.0, 1.0, &mut rng);
            let y1 = conv1d_forward(&x1, &w, d);
            let y2 = conv1d_forward(&x2, &w, d);
            for oc in 0..3 {
                for t in 0..9 {
                    assert_eq!(
                        y1.at(&[0, oc, t]),
                        y2.at(&[0, oc, t]),
                        "leak at d={d} t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn multi_channel_sums_contributions() {
        // Two input channels, k=1: y = w0*x0 + w1*x1.
        let x = Tensor::from_vec(vec![1.0, 2.0, 10.0, 20.0], &[1, 2, 2]);
        let w = Tensor::from_vec(vec![1.0, 0.1], &[1, 2, 1]);
        let y = conv1d_forward(&x, &w, 1);
        assert_eq!(y.as_slice(), &[2.0, 4.0]);
    }

    /// Finite-difference check of both backward kernels.
    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng::seed_from(7);
        let (b, ic, oc, t, k, d) = (2, 3, 2, 8, 3, 2);
        let x = Tensor::rand_normal(&[b, ic, t], 0.0, 1.0, &mut rng);
        let w = Tensor::rand_normal(&[oc, ic, k], 0.0, 0.5, &mut rng);

        // Loss = sum(y); then dL/dy = 1 everywhere.
        let grad_out = Tensor::ones(&[b, oc, t]);
        let gin = conv1d_backward_input(&grad_out, &w, &[b, ic, t], d);
        let gw = conv1d_backward_weight(&grad_out, &x, k, d);

        let loss = |x: &Tensor, w: &Tensor| -> f64 {
            conv1d_forward(x, w, d)
                .as_slice()
                .iter()
                .map(|&v| v as f64)
                .sum()
        };
        let eps = 1e-3f32;
        // Sample a few coordinates of each gradient.
        for idx in [0usize, 5, 17, b * ic * t - 1] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let fd = ((loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps as f64)) as f32;
            assert!(
                (gin.as_slice()[idx] - fd).abs() < 1e-2,
                "input grad mismatch at {idx}: analytic {} vs fd {fd}",
                gin.as_slice()[idx]
            );
        }
        for idx in [0usize, 3, oc * ic * k - 1] {
            let mut wp = w.clone();
            wp.as_mut_slice()[idx] += eps;
            let mut wm = w.clone();
            wm.as_mut_slice()[idx] -= eps;
            let fd = ((loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps as f64)) as f32;
            assert!(
                (gw.as_slice()[idx] - fd).abs() < 1e-1,
                "weight grad mismatch at {idx}: analytic {} vs fd {fd}",
                gw.as_slice()[idx]
            );
        }
    }

    /// The fused / AVX fast paths must reproduce the tap-wise reference
    /// accumulation order bit for bit at every dilation the paper config
    /// uses — inference parity and streaming-state checks build on this.
    #[test]
    fn fast_paths_match_tap_reference_bitwise() {
        let mut rng = Rng::seed_from(21);
        let (ic, oc, time) = (16, 18, 30); // 18 exercises the remainder rows
        for &d in &[1usize, 2, 4, 8] {
            let x = Tensor::rand_normal(&[2, ic, time], 0.0, 1.0, &mut rng);
            let mut w = Tensor::rand_normal(&[oc, ic, 3], 0.0, 0.5, &mut rng);
            // The fast path requires nonzero weights; nudge any exact zeros.
            for v in w.as_mut_slice() {
                if *v == 0.0 {
                    *v = 0.25;
                }
            }
            let fast = conv1d_forward(&x, &w, d);
            let mut reference = vec![0.0f32; 2 * oc * time];
            for b in 0..2 {
                let x_item = &x.as_slice()[b * ic * time..(b + 1) * ic * time];
                for o in 0..oc {
                    let y_row = &mut reference[(b * oc + o) * time..(b * oc + o + 1) * time];
                    for i in 0..ic {
                        tap_accumulate(
                            y_row,
                            &x_item[i * time..(i + 1) * time],
                            &w.as_slice()[(o * ic + i) * 3..(o * ic + i + 1) * 3],
                            time,
                            3,
                            d,
                        );
                    }
                }
            }
            for (a, b) in fast.as_slice().iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "d={d}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn batch_items_are_independent() {
        let mut rng = Rng::seed_from(9);
        let x0 = Tensor::rand_normal(&[1, 2, 6], 0.0, 1.0, &mut rng);
        let x1 = Tensor::rand_normal(&[1, 2, 6], 0.0, 1.0, &mut rng);
        let w = Tensor::rand_normal(&[2, 2, 2], 0.0, 1.0, &mut rng);
        let mut stacked = x0.as_slice().to_vec();
        stacked.extend_from_slice(x1.as_slice());
        let both = conv1d_forward(&Tensor::from_vec(stacked, &[2, 2, 6]), &w, 1);
        let y0 = conv1d_forward(&x0, &w, 1);
        let y1 = conv1d_forward(&x1, &w, 1);
        assert_eq!(&both.as_slice()[..12], y0.as_slice());
        assert_eq!(&both.as_slice()[12..], y1.as_slice());
    }
}
