//! Forward and backward kernels for dilated causal 1-D convolution — the
//! workhorse of TCN/RPTCN. Layout: activations are `[batch, channels, time]`,
//! weights are `[out_ch, in_ch, kernel]`.
//!
//! Causality follows eq. (4) of the paper: the output at time `t` reads
//! inputs `x_{t - (K-1-kk)·d}` for tap `kk`, i.e. only the past. Negative
//! time indices contribute zero (implicit left padding of `(K-1)·d`).

use rayon::prelude::*;
use tensor::Tensor;

/// Parallelise over the batch only when there is enough arithmetic per item.
const PAR_THRESHOLD: usize = 1 << 16;

/// `y = causal_conv1d(x, w)` with dilation `d`.
///
/// * `x`: `[batch, in_ch, time]`
/// * `w`: `[out_ch, in_ch, k]`
/// * returns `[batch, out_ch, time]` (same length as the input — the network
///   is a 1-D fully-convolutional stack).
pub fn conv1d_forward(x: &Tensor, w: &Tensor, dilation: usize) -> Tensor {
    assert_eq!(x.rank(), 3, "conv input must be [batch, in_ch, time]");
    assert_eq!(w.rank(), 3, "conv weight must be [out_ch, in_ch, k]");
    let (batch, in_ch, time) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let (out_ch, in_ch_w, k) = (w.shape()[0], w.shape()[1], w.shape()[2]);
    assert_eq!(
        in_ch, in_ch_w,
        "channel mismatch: input {in_ch}, weight {in_ch_w}"
    );
    assert!(dilation >= 1, "dilation must be >= 1");

    let dx = x.as_slice();
    let dw = w.as_slice();
    let mut out = vec![0.0f32; batch * out_ch * time];

    let item_kernel = |b: usize, out_item: &mut [f32]| {
        let x_item = &dx[b * in_ch * time..(b + 1) * in_ch * time];
        for oc in 0..out_ch {
            let y_row = &mut out_item[oc * time..(oc + 1) * time];
            for ic in 0..in_ch {
                let x_row = &x_item[ic * time..(ic + 1) * time];
                let w_row = &dw[(oc * in_ch + ic) * k..(oc * in_ch + ic + 1) * k];
                for (kk, &wv) in w_row.iter().enumerate() {
                    if wv == 0.0 {
                        continue;
                    }
                    // Tap kk reads x[t - shift]; only t >= shift contributes.
                    let shift = (k - 1 - kk) * dilation;
                    if shift >= time {
                        continue;
                    }
                    for t in shift..time {
                        y_row[t] += wv * x_row[t - shift];
                    }
                }
            }
        }
    };

    if batch * out_ch * in_ch * time * k >= PAR_THRESHOLD && batch > 1 {
        out.par_chunks_mut(out_ch * time)
            .enumerate()
            .for_each(|(b, chunk)| item_kernel(b, chunk));
    } else {
        for (b, chunk) in out.chunks_mut(out_ch * time).enumerate() {
            item_kernel(b, chunk);
        }
    }
    Tensor::from_vec(out, &[batch, out_ch, time])
}

/// Gradient of the loss w.r.t. the convolution input.
pub fn conv1d_backward_input(
    grad_out: &Tensor,
    w: &Tensor,
    input_shape: &[usize],
    dilation: usize,
) -> Tensor {
    let (batch, in_ch, time) = (input_shape[0], input_shape[1], input_shape[2]);
    let (out_ch, _, k) = (w.shape()[0], w.shape()[1], w.shape()[2]);
    let dgo = grad_out.as_slice();
    let dw = w.as_slice();
    let mut grad_in = vec![0.0f32; batch * in_ch * time];

    let item_kernel = |b: usize, gin_item: &mut [f32]| {
        let go_item = &dgo[b * out_ch * time..(b + 1) * out_ch * time];
        for oc in 0..out_ch {
            let go_row = &go_item[oc * time..(oc + 1) * time];
            for ic in 0..in_ch {
                let gin_row = &mut gin_item[ic * time..(ic + 1) * time];
                let w_row = &dw[(oc * in_ch + ic) * k..(oc * in_ch + ic + 1) * k];
                for (kk, &wv) in w_row.iter().enumerate() {
                    if wv == 0.0 {
                        continue;
                    }
                    let shift = (k - 1 - kk) * dilation;
                    if shift >= time {
                        continue;
                    }
                    // y[t] += w * x[t-shift]  =>  dx[s] += w * dy[s+shift]
                    for t in shift..time {
                        gin_row[t - shift] += wv * go_row[t];
                    }
                }
            }
        }
    };

    if batch * out_ch * in_ch * time * k >= PAR_THRESHOLD && batch > 1 {
        grad_in
            .par_chunks_mut(in_ch * time)
            .enumerate()
            .for_each(|(b, chunk)| item_kernel(b, chunk));
    } else {
        for (b, chunk) in grad_in.chunks_mut(in_ch * time).enumerate() {
            item_kernel(b, chunk);
        }
    }
    Tensor::from_vec(grad_in, &[batch, in_ch, time])
}

/// Gradient of the loss w.r.t. the convolution weights.
pub fn conv1d_backward_weight(
    grad_out: &Tensor,
    x: &Tensor,
    kernel: usize,
    dilation: usize,
) -> Tensor {
    let (batch, in_ch, time) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let out_ch = grad_out.shape()[1];
    let dgo = grad_out.as_slice();
    let dx = x.as_slice();

    // Map-reduce over the batch: each item produces its own dW, summed at the
    // end. The per-item dW is small (out*in*k), so the reduce is cheap.
    let per_item = |b: usize| -> Vec<f32> {
        let mut gw = vec![0.0f32; out_ch * in_ch * kernel];
        let go_item = &dgo[b * out_ch * time..(b + 1) * out_ch * time];
        let x_item = &dx[b * in_ch * time..(b + 1) * in_ch * time];
        for oc in 0..out_ch {
            let go_row = &go_item[oc * time..(oc + 1) * time];
            for ic in 0..in_ch {
                let x_row = &x_item[ic * time..(ic + 1) * time];
                let gw_row = &mut gw[(oc * in_ch + ic) * kernel..(oc * in_ch + ic + 1) * kernel];
                for (kk, gw_slot) in gw_row.iter_mut().enumerate() {
                    let shift = (kernel - 1 - kk) * dilation;
                    if shift >= time {
                        continue;
                    }
                    let mut acc = 0.0f32;
                    for t in shift..time {
                        acc += go_row[t] * x_row[t - shift];
                    }
                    *gw_slot += acc;
                }
            }
        }
        gw
    };

    let total: Vec<f32> = if batch * out_ch * in_ch * time * kernel >= PAR_THRESHOLD && batch > 1 {
        (0..batch).into_par_iter().map(per_item).reduce(
            || vec![0.0f32; out_ch * in_ch * kernel],
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(&b) {
                    *x += y;
                }
                a
            },
        )
    } else {
        let mut acc = vec![0.0f32; out_ch * in_ch * kernel];
        for b in 0..batch {
            for (x, y) in acc.iter_mut().zip(&per_item(b)) {
                *x += y;
            }
        }
        acc
    };
    Tensor::from_vec(total, &[out_ch, in_ch, kernel])
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::Rng;

    #[test]
    fn identity_kernel_passes_input_through() {
        // k=1 weight of 1.0 on a single channel is the identity.
        let x = Tensor::from_vec((1..=5).map(|v| v as f32).collect(), &[1, 1, 5]);
        let w = Tensor::ones(&[1, 1, 1]);
        let y = conv1d_forward(&x, &w, 1);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn causal_shift_matches_hand_computation() {
        // k=2, w = [a=0.5 (past tap), b=2.0 (current tap)], d=1:
        // y[t] = 2*x[t] + 0.5*x[t-1]
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 4]);
        let w = Tensor::from_vec(vec![0.5, 2.0], &[1, 1, 2]);
        let y = conv1d_forward(&x, &w, 1);
        assert_eq!(y.as_slice(), &[2.0, 4.5, 7.0, 9.5]);
    }

    #[test]
    fn dilation_reaches_further_back() {
        // k=2, d=2: y[t] = w1*x[t] + w0*x[t-2]
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0], &[1, 1, 5]);
        let w = Tensor::from_vec(vec![1.0, 1.0], &[1, 1, 2]);
        let y = conv1d_forward(&x, &w, 2);
        assert_eq!(y.as_slice(), &[1.0, 2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn no_future_leakage() {
        // Changing x[t0] must not affect y[t] for t < t0 at any dilation.
        let mut rng = Rng::seed_from(1);
        for &d in &[1usize, 2, 4] {
            let x1 = Tensor::rand_normal(&[1, 2, 10], 0.0, 1.0, &mut rng);
            let mut x2 = x1.clone();
            // Perturb the final time step of each channel.
            for c in 0..2 {
                let v = x2.at(&[0, c, 9]) + 100.0;
                x2.set(&[0, c, 9], v);
            }
            let w = Tensor::rand_normal(&[3, 2, 3], 0.0, 1.0, &mut rng);
            let y1 = conv1d_forward(&x1, &w, d);
            let y2 = conv1d_forward(&x2, &w, d);
            for oc in 0..3 {
                for t in 0..9 {
                    assert_eq!(
                        y1.at(&[0, oc, t]),
                        y2.at(&[0, oc, t]),
                        "leak at d={d} t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn multi_channel_sums_contributions() {
        // Two input channels, k=1: y = w0*x0 + w1*x1.
        let x = Tensor::from_vec(vec![1.0, 2.0, 10.0, 20.0], &[1, 2, 2]);
        let w = Tensor::from_vec(vec![1.0, 0.1], &[1, 2, 1]);
        let y = conv1d_forward(&x, &w, 1);
        assert_eq!(y.as_slice(), &[2.0, 4.0]);
    }

    /// Finite-difference check of both backward kernels.
    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = Rng::seed_from(7);
        let (b, ic, oc, t, k, d) = (2, 3, 2, 8, 3, 2);
        let x = Tensor::rand_normal(&[b, ic, t], 0.0, 1.0, &mut rng);
        let w = Tensor::rand_normal(&[oc, ic, k], 0.0, 0.5, &mut rng);

        // Loss = sum(y); then dL/dy = 1 everywhere.
        let grad_out = Tensor::ones(&[b, oc, t]);
        let gin = conv1d_backward_input(&grad_out, &w, &[b, ic, t], d);
        let gw = conv1d_backward_weight(&grad_out, &x, k, d);

        let loss = |x: &Tensor, w: &Tensor| -> f64 {
            conv1d_forward(x, w, d)
                .as_slice()
                .iter()
                .map(|&v| v as f64)
                .sum()
        };
        let eps = 1e-3f32;
        // Sample a few coordinates of each gradient.
        for idx in [0usize, 5, 17, b * ic * t - 1] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let fd = ((loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps as f64)) as f32;
            assert!(
                (gin.as_slice()[idx] - fd).abs() < 1e-2,
                "input grad mismatch at {idx}: analytic {} vs fd {fd}",
                gin.as_slice()[idx]
            );
        }
        for idx in [0usize, 3, oc * ic * k - 1] {
            let mut wp = w.clone();
            wp.as_mut_slice()[idx] += eps;
            let mut wm = w.clone();
            wm.as_mut_slice()[idx] -= eps;
            let fd = ((loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps as f64)) as f32;
            assert!(
                (gw.as_slice()[idx] - fd).abs() < 1e-1,
                "weight grad mismatch at {idx}: analytic {} vs fd {fd}",
                gw.as_slice()[idx]
            );
        }
    }

    #[test]
    fn batch_items_are_independent() {
        let mut rng = Rng::seed_from(9);
        let x0 = Tensor::rand_normal(&[1, 2, 6], 0.0, 1.0, &mut rng);
        let x1 = Tensor::rand_normal(&[1, 2, 6], 0.0, 1.0, &mut rng);
        let w = Tensor::rand_normal(&[2, 2, 2], 0.0, 1.0, &mut rng);
        let mut stacked = x0.as_slice().to_vec();
        stacked.extend_from_slice(x1.as_slice());
        let both = conv1d_forward(&Tensor::from_vec(stacked, &[2, 2, 6]), &w, 1);
        let y0 = conv1d_forward(&x0, &w, 1);
        let y1 = conv1d_forward(&x1, &w, 1);
        assert_eq!(&both.as_slice()[..12], y0.as_slice());
        assert_eq!(&both.as_slice()[12..], y1.as_slice());
    }
}
