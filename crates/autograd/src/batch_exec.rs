//! Pinned thread-per-core batch executor for stacked forecasts.
//!
//! `serve`'s `forecast_many` answers a shard's shared-group batch with one
//! stacked engine call; before this module that call ran the whole batch on
//! the shard thread, so aggregate throughput scaled with shard count rather
//! than cores. [`BatchExecutor`] keeps a pool of persistent worker threads —
//! one per core by default, each pinned to its core via a raw
//! `sched_setaffinity` syscall (the workspace vendors no libc) — and splits
//! the batch's rows across them with a **static contiguous partition**.
//!
//! Determinism over work-stealing: the partition of `rows` across `w`
//! workers is a pure function of `(rows, w)`, every worker computes its row
//! range with the same per-row arithmetic the sequential path uses, and the
//! GEMM/conv kernels are bitwise row-independent — so a parallel batch
//! equals the sequential stacked batch bit-for-bit, run after run
//! (asserted in `tests/infer_parity.rs`).
//!
//! Worker panics are caught per worker, the dispatch always waits for every
//! worker to finish, and the panic is re-raised on the calling thread — so
//! `serve`'s catch_unwind-based shard supervision observes exactly the
//! behaviour it did with sequential batches.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread::{self, JoinHandle};

/// Batches smaller than this run inline on the caller: the wakeup round-trip
/// costs more than a handful of ~20µs forecasts.
pub const MIN_PARALLEL_ROWS: usize = 8;

/// A lifetime-erased borrowed job: `f(worker_idx, start_row, end_row)`.
///
/// The raw trait-object reference is only dereferenced between the dispatch
/// storing it and the completion barrier in [`BatchExecutor::run_rows`], and
/// that call does not return until every worker has finished — so the
/// erased borrow never outlives the real closure.
type Job = &'static (dyn Fn(usize, usize, usize) + Sync);

/// The borrowed form of [`Job`] before its lifetime is erased.
type BorrowedJob<'a> = &'a (dyn Fn(usize, usize, usize) + Sync);

struct State {
    /// Monotone dispatch generation; a bump tells workers a new job exists.
    seq: u64,
    job: Option<Job>,
    rows: usize,
    /// Workers that have not yet finished the current generation.
    remaining: usize,
    /// Set if any worker's closure panicked this generation.
    panicked: bool,
    /// Workers that have registered (and attempted their pin) at startup.
    started: usize,
    /// Workers whose core pin succeeded.
    pinned: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    work_ready: Condvar,
    work_done: Condvar,
}

/// Persistent pool of core-pinned worker threads executing statically
/// partitioned row ranges of a stacked batch.
pub struct BatchExecutor {
    shared: &'static Shared,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
    pinned: usize,
}

impl BatchExecutor {
    /// Spawn `workers` (>= 1) persistent threads, pinning worker `i` to
    /// core `i % cores` where the platform allows it. A single-worker pool
    /// spawns nothing — every dispatch already runs inline on the caller —
    /// which also keeps the detached [`global`] pool invisible to Miri's
    /// thread-leak check on single-cpu interpretation.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        // The pool is effectively a process-wide resource (the public entry
        // is [`global`]); leaking the shared block gives workers a 'static
        // handle without an Arc dependency in the hot dispatch path.
        let shared: &'static Shared = Box::leak(Box::new(Shared {
            state: Mutex::new(State {
                seq: 0,
                job: None,
                rows: 0,
                remaining: 0,
                panicked: false,
                started: 0,
                pinned: 0,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
        }));
        if workers == 1 {
            return Self {
                shared,
                handles: Vec::new(),
                workers: 1,
                pinned: 0,
            };
        }
        let mut handles = Vec::with_capacity(workers);
        for idx in 0..workers {
            let builder = thread::Builder::new().name(format!("rptcn-batch-{idx}"));
            let handle = builder
                .spawn(move || {
                    let pinned = pin_to_core(idx);
                    {
                        let mut state = lock_state(&shared.state);
                        state.started += 1;
                        if pinned {
                            state.pinned += 1;
                        }
                        shared.work_done.notify_all();
                    }
                    worker_loop(shared, idx, workers);
                })
                .unwrap_or_else(|e| panic!("failed to spawn batch worker {idx}: {e}")); // lint: allow(r2) — pool construction, not the serving path; a half-built pool is unusable
            handles.push(handle);
        }
        // Wait for every worker to register: the pool is warm (and the pin
        // count accurate) before the first dispatch can race it.
        let pinned = {
            let mut state = lock_state(&shared.state);
            while state.started < workers {
                state = match shared.work_done.wait(state) {
                    Ok(guard) => guard,
                    Err(poison) => poison.into_inner(),
                };
            }
            state.pinned
        };
        Self {
            shared,
            handles,
            workers,
            pinned,
        }
    }

    /// Number of worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// How many workers successfully pinned to a core at spawn time (0 on
    /// non-Linux platforms and under Miri; reporting-only).
    pub fn pinned_workers(&self) -> usize {
        self.pinned
    }

    /// The static partition: worker `idx` of `workers` owns rows
    /// `[start, end)` of `rows`. Contiguous, deterministic, and exhaustive;
    /// earlier workers take the remainder rows.
    pub fn partition(rows: usize, workers: usize, idx: usize) -> (usize, usize) {
        let base = rows / workers;
        let rem = rows % workers;
        let start = idx * base + idx.min(rem);
        let len = base + usize::from(idx < rem);
        (start, start + len)
    }

    /// Run `f(worker_idx, start_row, end_row)` over the static partition of
    /// `rows`, blocking until every worker finishes. Ranges are disjoint and
    /// cover `0..rows`, so `f` may write row-sliced output without locks.
    /// Batches below [`MIN_PARALLEL_ROWS`] (and single-worker pools) run
    /// inline on the caller; the partition is then `(0, rows)` for worker 0,
    /// which by row-independence of the kernels is bitwise the same.
    ///
    /// # Panics
    /// Re-raises on the caller if any worker's `f` panicked (after all
    /// workers completed, so no range is silently skipped).
    pub fn run_rows(&self, rows: usize, f: impl Fn(usize, usize, usize) + Sync) {
        if rows == 0 {
            return;
        }
        if self.workers == 1 || rows < MIN_PARALLEL_ROWS {
            f(0, 0, rows);
            return;
        }
        let job: BorrowedJob<'_> = &f;
        // SAFETY: the 'static lifetime is erased, not real — `job` points at
        // `f` on this stack frame. The loop below does not return until
        // `remaining == 0`, i.e. until every worker has finished calling the
        // closure and will never touch it again, so the borrow cannot
        // dangle. `dyn Fn + Sync` makes the shared calls across workers
        // sound.
        let job: Job = unsafe { std::mem::transmute::<BorrowedJob<'_>, Job>(job) };
        let panicked = {
            let mut state = lock_state(&self.shared.state);
            // Serialise dispatchers: the global pool is shared across shard
            // threads, so a second `run_rows` waits until the in-flight
            // generation fully drains (its owner clears `job` below).
            while state.job.is_some() || state.remaining > 0 {
                state = match self.shared.work_done.wait(state) {
                    Ok(guard) => guard,
                    Err(poison) => poison.into_inner(),
                };
            }
            state.seq += 1;
            state.job = Some(job);
            state.rows = rows;
            state.remaining = self.workers;
            state.panicked = false;
            self.shared.work_ready.notify_all();
            while state.remaining > 0 {
                state = match self.shared.work_done.wait(state) {
                    Ok(guard) => guard,
                    Err(poison) => poison.into_inner(),
                };
            }
            state.job = None;
            // Release any dispatcher queued on the drain predicate above.
            self.shared.work_done.notify_all();
            state.panicked
        };
        if panicked {
            panic!("batch executor worker panicked (re-raised on dispatcher)"); // lint: allow(r2) — deliberate re-raise: a caught worker panic must surface to the dispatcher
        }
    }
}

impl Drop for BatchExecutor {
    fn drop(&mut self) {
        {
            let mut state = lock_state(&self.shared.state);
            state.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// A mutex poisoned by a worker panic still guards consistent data (every
/// mutation is a single field store), so recover the guard rather than
/// propagate the poison.
fn lock_state(m: &Mutex<State>) -> std::sync::MutexGuard<'_, State> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poison) => poison.into_inner(),
    }
}

fn worker_loop(shared: &'static Shared, idx: usize, workers: usize) {
    let mut seen_seq = 0u64;
    loop {
        let (job, rows) = {
            let mut state = lock_state(&shared.state);
            loop {
                if state.shutdown {
                    return;
                }
                if state.seq != seen_seq && state.job.is_some() {
                    break;
                }
                state = match shared.work_ready.wait(state) {
                    Ok(guard) => guard,
                    Err(poison) => poison.into_inner(),
                };
            }
            seen_seq = state.seq;
            (state.job.unwrap_or_else(|| unreachable!()), state.rows)
        };
        let (start, end) = BatchExecutor::partition(rows, workers, idx);
        let mut panicked = false;
        if start < end {
            // AssertUnwindSafe: on panic the only shared state the closure
            // could leave half-written is its disjoint output range, and the
            // dispatcher re-raises before anyone reads it.
            if catch_unwind(AssertUnwindSafe(|| job(idx, start, end))).is_err() {
                panicked = true;
            }
        }
        let mut state = lock_state(&shared.state);
        if panicked {
            state.panicked = true;
        }
        state.remaining -= 1;
        if state.remaining == 0 {
            shared.work_done.notify_all();
        }
    }
}

/// Process-wide executor, sized by `RPTCN_BATCH_WORKERS` when set, else the
/// host's available parallelism. Built lazily on first stacked batch.
/// Under Miri it is always single-worker (inline): the detached global pool
/// would otherwise trip the interpreter's thread-leak check at exit, and
/// explicit pools in tests cover the threaded paths natively and under
/// TSan.
pub fn global() -> &'static BatchExecutor {
    static GLOBAL: OnceLock<BatchExecutor> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let workers = if cfg!(miri) {
            1
        } else {
            std::env::var("RPTCN_BATCH_WORKERS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&w| w > 0)
                .unwrap_or_else(|| {
                    thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                })
        };
        BatchExecutor::new(workers)
    })
}

/// Best-effort pin of the calling thread to `core` (modulo the cpu count
/// baked into the 1024-bit mask). Linux/x86_64 only — the workspace vendors
/// no libc, so this is the raw `sched_setaffinity` syscall; everywhere else
/// (and under Miri, which interprets no inline asm) it is a no-op.
#[cfg(all(target_os = "linux", target_arch = "x86_64", not(miri)))]
fn pin_to_core(core: usize) -> bool {
    // Standard 1024-bit cpu_set_t.
    let mut mask = [0u64; 16];
    let bit = core % 1024;
    mask[bit / 64] |= 1u64 << (bit % 64);
    let ret: i64;
    // SAFETY: sched_setaffinity (nr 203 on x86_64) with pid 0 targets the
    // calling thread; the kernel reads exactly `rsi` bytes from the pointer
    // in `rdx`, which points at a live 128-byte local. The asm clobbers
    // only rcx/r11 (declared) and rax (the return slot).
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") 203i64 => ret,
            in("rdi") 0usize,
            in("rsi") mask.len() * 8,
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack, preserves_flags),
        );
    }
    ret == 0
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64", not(miri))))]
fn pin_to_core(_core: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn partition_is_contiguous_and_exhaustive() {
        for rows in 0..40 {
            for workers in 1..9 {
                let mut next = 0;
                for idx in 0..workers {
                    let (start, end) = BatchExecutor::partition(rows, workers, idx);
                    assert_eq!(start, next, "gap at worker {idx} ({rows}/{workers})");
                    assert!(end >= start);
                    next = end;
                }
                assert_eq!(next, rows, "partition must cover all rows");
            }
        }
    }

    #[test]
    fn runs_every_row_exactly_once() {
        let exec = BatchExecutor::new(3);
        let hits: Vec<AtomicUsize> = (0..37).map(|_| AtomicUsize::new(0)).collect();
        exec.run_rows(37, |_w, start, end| {
            for h in &hits[start..end] {
                h.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn small_batches_run_inline_on_caller() {
        let exec = BatchExecutor::new(4);
        let caller = thread::current().id();
        let seen = Mutex::new(None);
        exec.run_rows(MIN_PARALLEL_ROWS - 1, |w, start, end| {
            *seen.lock().unwrap_or_else(|p| p.into_inner()) =
                Some((w, start, end, thread::current().id()));
        });
        let got = seen
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .expect("inline closure must run");
        assert_eq!(got, (0, 0, MIN_PARALLEL_ROWS - 1, caller));
    }

    #[test]
    fn worker_panic_reraises_after_completion() {
        let exec = BatchExecutor::new(2);
        let done = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            exec.run_rows(MIN_PARALLEL_ROWS * 2, |w, _start, _end| {
                if w == 0 {
                    panic!("boom");
                }
                done.fetch_add(1, Ordering::SeqCst);
            });
        }));
        assert!(result.is_err(), "dispatcher must re-raise worker panics");
        assert_eq!(done.load(Ordering::SeqCst), 1, "other workers still ran");
        // The pool survives a panicked generation.
        let count = AtomicUsize::new(0);
        exec.run_rows(MIN_PARALLEL_ROWS * 2, |_w, start, end| {
            count.fetch_add(end - start, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), MIN_PARALLEL_ROWS * 2);
    }

    #[test]
    fn repeated_dispatches_are_stable() {
        let exec = BatchExecutor::new(4);
        for round in 0..200 {
            let sum = AtomicUsize::new(0);
            exec.run_rows(MIN_PARALLEL_ROWS + round % 13, |_w, start, end| {
                sum.fetch_add(end - start, Ordering::SeqCst);
            });
            assert_eq!(sum.load(Ordering::SeqCst), MIN_PARALLEL_ROWS + round % 13);
        }
    }
}
