//! Property-based parity suite for the runtime-dispatched GEMM.
//!
//! Every dispatch tier must be **bitwise** identical to its scalar twin on
//! arbitrary shapes — including degenerate 0/1 dims, shapes that are not a
//! multiple of the 4×16 microtile, and both merge modes (overwrite vs
//! accumulate). The twins are the semantics; the SIMD kernels are only an
//! implementation detail, and these tests are what let the rest of the
//! workspace (taped training, tape-free inference, the batch executor,
//! shard batching) assume row-partitioning never changes results.

use proptest::prelude::*;
use tensor::gemm::{self, Tier};
use tensor::{matmul, Rng, Tensor};

/// Strategy: a GEMM problem with dims crossing the direct (`m < 4`) and
/// packed (`m >= 4`) paths, partial tiles (`n % 16 != 0`), and degenerate
/// 0-sized axes.
fn gemm_problem() -> impl Strategy<Value = (usize, usize, usize, u64)> {
    (0usize..10, 0usize..40, 0usize..40, 0u64..10_000)
}

fn rand_vec(len: usize, rng: &mut Rng) -> Vec<f32> {
    (0..len).map(|_| rng.normal(0.0, 1.0)).collect()
}

type GemmFn = fn(&[f32], &[f32], &mut [f32], usize, usize, usize, bool);

fn twin_for(tier: Tier) -> GemmFn {
    match tier {
        Tier::Fma => gemm::gemm_scalar_fma,
        Tier::Avx | Tier::Scalar => gemm::gemm_scalar,
    }
}

fn assert_bits_eq(got: &[f32], want: &[f32], ctx: &str) {
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{ctx}: element {i} differs ({g} vs {w})"
        );
    }
}

proptest! {
    /// Core parity property: each tier equals its twin bitwise for random
    /// shapes, in both overwrite and accumulate mode (accumulate starts
    /// from a random, non-zero output so the terminal `+=` is exercised).
    #[test]
    fn tier_matches_twin_bitwise((m, k, n, seed) in gemm_problem()) {
        let mut rng = Rng::seed_from(seed);
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let seed_out = rand_vec(m * n, &mut rng);
        for tier in [Tier::Fma, Tier::Avx, Tier::Scalar] {
            for accumulate in [false, true] {
                let mut got = seed_out.clone();
                let mut want = seed_out.clone();
                gemm::gemm_with_tier(tier, &a, &b, &mut got, m, k, n, accumulate);
                twin_for(tier)(&a, &b, &mut want, m, k, n, accumulate);
                assert_bits_eq(&got, &want, &format!("{tier:?} ({m},{k},{n}) acc={accumulate}"));
            }
        }
    }

    /// `matmul_into` (overwrite) followed by `matmul_acc_into` on a zeroed
    /// buffer must agree with the twin's chains too — the two public slice
    /// entry points share one kernel and one terminal-store rule.
    #[test]
    fn slice_entry_points_share_chains((m, k, n, seed) in gemm_problem()) {
        let mut rng = Rng::seed_from(seed);
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let mut over = vec![0.0f32; m * n];
        matmul::matmul_into(&a, &b, &mut over, m, k, n);
        let mut want = vec![0.0f32; m * n];
        twin_for(gemm::active_tier())(&a, &b, &mut want, m, k, n, false);
        assert_bits_eq(&over, &want, "matmul_into vs twin");

        let mut acc = rand_vec(m * n, &mut rng);
        let mut acc_want = acc.clone();
        matmul::matmul_acc_into(&a, &b, &mut acc, m, k, n);
        twin_for(gemm::active_tier())(&a, &b, &mut acc_want, m, k, n, true);
        assert_bits_eq(&acc, &acc_want, "matmul_acc_into vs twin");
    }

    /// Any row partition of the batch is bitwise neutral: computing a
    /// stacked [m, k] product equals computing each contiguous row chunk
    /// independently. This is the exact property the pinned batch executor
    /// relies on when it splits `forecast_many` batches across workers.
    #[test]
    fn row_chunking_is_bitwise_neutral(
        (m, k, n, seed) in (1usize..12, 1usize..32, 1usize..32, 0u64..10_000),
        split in 1usize..12,
    ) {
        let split = split.min(m);
        let mut rng = Rng::seed_from(seed);
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let mut stacked = vec![0.0f32; m * n];
        matmul::matmul_into(&a, &b, &mut stacked, m, k, n);
        let mut chunked = vec![0.0f32; m * n];
        for start in (0..m).step_by(split) {
            let rows = split.min(m - start);
            matmul::matmul_into(
                &a[start * k..(start + rows) * k],
                &b,
                &mut chunked[start * n..(start + rows) * n],
                rows,
                k,
                n,
            );
        }
        assert_bits_eq(&chunked, &stacked, "chunked vs stacked");
    }

    /// The staged-transpose variants are bitwise identical to transposing
    /// explicitly and multiplying — the backward pass and the forward pass
    /// share the kernel exactly.
    #[test]
    fn transpose_variants_match_explicit_bitwise(
        (k, m, n, seed) in (1usize..10, 1usize..10, 1usize..10, 0u64..10_000),
    ) {
        let mut rng = Rng::seed_from(seed);
        let a = Tensor::rand_normal(&[k, m], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[k, n], 0.0, 1.0, &mut rng);
        let fused = matmul::matmul_at_b(&a, &b);
        let explicit = matmul::matmul(&matmul::transpose(&a), &b);
        assert_bits_eq(fused.as_slice(), explicit.as_slice(), "at_b");

        let c = Tensor::rand_normal(&[m, k], 0.0, 1.0, &mut rng);
        let d = Tensor::rand_normal(&[n, k], 0.0, 1.0, &mut rng);
        let fused = matmul::matmul_a_bt(&c, &d);
        let explicit = matmul::matmul(&c, &matmul::transpose(&d));
        assert_bits_eq(fused.as_slice(), explicit.as_slice(), "a_bt");
    }
}

/// Deterministic spot-check of the exact microtile boundaries (the proptest
/// ranges above cover them probabilistically; these shapes pin the edges:
/// one full tile, one-past, one-short, and the pure-tail column counts).
#[test]
fn tile_boundary_shapes_match_twins() {
    let mut rng = Rng::seed_from(99);
    let tier = gemm::active_tier();
    for &(m, k, n) in &[
        (4, 8, 16),
        (5, 8, 17),
        (3, 8, 15),
        (8, 1, 32),
        (4, 8, 7),
        (4, 8, 8),
        (4, 8, 9),
        (1, 240, 64),
        (30, 240, 64),
    ] {
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let mut got = vec![0.0f32; m * n];
        gemm::gemm_into(&a, &b, &mut got, m, k, n, false);
        let mut want = vec![0.0f32; m * n];
        twin_for(tier)(&a, &b, &mut want, m, k, n, false);
        assert_bits_eq(&got, &want, &format!("boundary ({m},{k},{n})"));
    }
}
