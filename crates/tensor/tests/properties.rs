//! Property-based tests for the tensor crate's algebraic invariants.

use proptest::prelude::*;
use tensor::{linalg, matmul, ops, reduce, stats, Rng, Tensor};

/// Strategy: a vector of finite floats in a tame range.
fn vec_f32(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-100.0f32..100.0, len)
}

/// Strategy: matrix dims in a small range plus matching data.
fn matrix() -> impl Strategy<Value = (usize, usize, Vec<f32>)> {
    (1usize..8, 1usize..8).prop_flat_map(|(m, n)| vec_f32(m * n).prop_map(move |data| (m, n, data)))
}

proptest! {
    #[test]
    fn add_commutes((m, n, data) in matrix(), seed in 0u64..1000) {
        let a = Tensor::from_vec(data, &[m, n]);
        let mut rng = Rng::seed_from(seed);
        let b = Tensor::rand_uniform(&[m, n], -10.0, 10.0, &mut rng);
        prop_assert!(ops::add(&a, &b).allclose(&ops::add(&b, &a), 1e-6));
    }

    #[test]
    fn add_zero_is_identity((m, n, data) in matrix()) {
        let a = Tensor::from_vec(data, &[m, n]);
        prop_assert!(ops::add(&a, &Tensor::zeros(&[m, n])).allclose(&a, 0.0));
    }

    #[test]
    fn mul_distributes_over_add(v in vec_f32(24)) {
        let a = Tensor::from_vec(v.clone(), &[4, 6]);
        let b = Tensor::from_vec(v.iter().map(|x| x * 0.5 + 1.0).collect(), &[4, 6]);
        let c = Tensor::from_vec(v.iter().map(|x| x - 2.0).collect(), &[4, 6]);
        let lhs = ops::mul(&a, &ops::add(&b, &c));
        let rhs = ops::add(&ops::mul(&a, &b), &ops::mul(&a, &c));
        prop_assert!(lhs.allclose(&rhs, 1e-2));
    }

    #[test]
    fn broadcast_add_matches_materialised((m, n, data) in matrix(), row in vec_f32(8)) {
        let a = Tensor::from_vec(data, &[m, n]);
        let r = Tensor::from_vec(row[..n].to_vec(), &[n]);
        let fast = ops::add(&a, &r);
        let slow = ops::add(&a, &r.broadcast_to(&[m, n]).unwrap());
        prop_assert!(fast.allclose(&slow, 0.0));
    }

    #[test]
    fn matmul_associates(seed in 0u64..500) {
        let mut rng = Rng::seed_from(seed);
        let a = Tensor::rand_uniform(&[3, 4], -2.0, 2.0, &mut rng);
        let b = Tensor::rand_uniform(&[4, 5], -2.0, 2.0, &mut rng);
        let c = Tensor::rand_uniform(&[5, 2], -2.0, 2.0, &mut rng);
        let lhs = matmul::matmul(&matmul::matmul(&a, &b), &c);
        let rhs = matmul::matmul(&a, &matmul::matmul(&b, &c));
        prop_assert!(lhs.allclose(&rhs, 1e-3));
    }

    #[test]
    fn matmul_transpose_identity(seed in 0u64..500) {
        // (AB)^T = B^T A^T
        let mut rng = Rng::seed_from(seed);
        let a = Tensor::rand_uniform(&[4, 6], -2.0, 2.0, &mut rng);
        let b = Tensor::rand_uniform(&[6, 3], -2.0, 2.0, &mut rng);
        let lhs = matmul::transpose(&matmul::matmul(&a, &b));
        let rhs = matmul::matmul(&matmul::transpose(&b), &matmul::transpose(&a));
        prop_assert!(lhs.allclose(&rhs, 1e-4));
    }

    #[test]
    fn sum_axis_total_invariant((m, n, data) in matrix()) {
        let a = Tensor::from_vec(data, &[m, n]);
        let total = reduce::sum(&a);
        prop_assert!((reduce::sum(&reduce::sum_axis(&a, 0)) - total).abs() < 1e-2);
        prop_assert!((reduce::sum(&reduce::sum_axis(&a, 1)) - total).abs() < 1e-2);
    }

    #[test]
    fn softmax_rows_are_distributions((m, n, data) in matrix()) {
        let a = Tensor::from_vec(data, &[m, n]);
        let s = reduce::softmax_rows(&a);
        prop_assert!(s.all_finite());
        for i in 0..m {
            let row_sum: f32 = s.row(i).as_slice().iter().sum();
            prop_assert!((row_sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(i).as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn pearson_bounded_and_scale_invariant(v in vec_f32(32), scale in 0.1f32..10.0) {
        let ys: Vec<f32> = v.iter().map(|&x| x * scale + 3.0).collect();
        let r = stats::pearson(&v, &ys);
        prop_assert!((-1.0..=1.0).contains(&r));
        // Positive affine transform preserves correlation with any third series.
        let zs: Vec<f32> = v.iter().enumerate().map(|(i, &x)| x + i as f32).collect();
        let r1 = stats::pearson(&v, &zs);
        let r2 = stats::pearson(&ys, &zs);
        prop_assert!((r1 - r2).abs() < 1e-6);
    }

    #[test]
    fn quantiles_are_monotone(v in vec_f32(20)) {
        let q25 = stats::quantile(&v, 0.25);
        let q50 = stats::quantile(&v, 0.5);
        let q75 = stats::quantile(&v, 0.75);
        prop_assert!(q25 <= q50 && q50 <= q75);
    }

    #[test]
    fn spd_solve_roundtrip(seed in 0u64..300) {
        let mut rng = Rng::seed_from(seed);
        let m = Tensor::rand_uniform(&[5, 5], -1.0, 1.0, &mut rng);
        let mut a = matmul::matmul_at_b(&m, &m);
        for i in 0..5 {
            let v = a.at(&[i, i]) + 1.0;
            a.set(&[i, i], v);
        }
        let x_true = Tensor::rand_uniform(&[5], -1.0, 1.0, &mut rng);
        let b = matmul::matvec(&a, &x_true);
        let x = linalg::solve_spd(&a, &b).unwrap();
        prop_assert!(x.allclose(&x_true, 1e-2));
    }

    #[test]
    fn reshape_preserves_sum(v in vec_f32(24)) {
        let a = Tensor::from_vec(v, &[2, 3, 4]);
        let b = a.reshape(&[6, 4]).unwrap();
        prop_assert_eq!(reduce::sum(&a), reduce::sum(&b));
    }
}
