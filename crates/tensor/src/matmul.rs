//! Matrix multiplication and transposition kernels.
//!
//! The matmul uses the cache-friendly `i-k-j` loop order (the innermost loop
//! streams contiguous rows of both the right operand and the output, which
//! lets LLVM auto-vectorise it) and parallelises over output rows with rayon
//! once the work is large enough to amortise the fork/join cost.

use rayon::prelude::*;

use crate::tensor::Tensor;

/// Below this many multiply-adds the sequential kernel wins; measured on
/// typical 8-16 core hosts the crossover sits around a few hundred thousand
/// FLOPs, so we keep a conservative threshold.
const PAR_THRESHOLD: usize = 64 * 64 * 64;

/// Accumulate `out_row += a_row · B` for one output row. The k loop is
/// unrolled four-wide so the compiler keeps four independent accumulator
/// streams in registers; no zero-skip — a data-dependent branch in the hot
/// loop defeats auto-vectorisation on dense inputs (sparse weights are only
/// common in the conv kernel, which keeps its own skip).
#[inline]
fn row_mul_acc(a_row: &[f32], db: &[f32], out_row: &mut [f32]) {
    let n = out_row.len();
    let k = a_row.len();
    let mut kk = 0usize;
    while kk + 4 <= k {
        let (a0, a1, a2, a3) = (a_row[kk], a_row[kk + 1], a_row[kk + 2], a_row[kk + 3]);
        let b0 = &db[kk * n..(kk + 1) * n];
        let b1 = &db[(kk + 1) * n..(kk + 2) * n];
        let b2 = &db[(kk + 2) * n..(kk + 3) * n];
        let b3 = &db[(kk + 3) * n..(kk + 4) * n];
        for ((((o, &v0), &v1), &v2), &v3) in out_row.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3) {
            *o += a0 * v0 + a1 * v1 + a2 * v2 + a3 * v3;
        }
        kk += 4;
    }
    while kk < k {
        let a0 = a_row[kk];
        let b_row = &db[kk * n..(kk + 1) * n];
        for (o, &bv) in out_row.iter_mut().zip(b_row) {
            *o += a0 * bv;
        }
        kk += 1;
    }
}

/// `out += A · B` over raw row-major slices: `A: [m, k]`, `B: [k, n]`,
/// `out: [m, n]`. This is the allocation-free kernel the tape-free inference
/// engine builds on; `matmul` routes through it too, so both paths produce
/// bit-identical rows.
pub fn matmul_acc_into(da: &[f32], db: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(da.len(), m * k, "matmul_acc_into lhs length mismatch");
    assert_eq!(db.len(), k * n, "matmul_acc_into rhs length mismatch");
    assert_eq!(out.len(), m * n, "matmul_acc_into out length mismatch");
    if m * n * k >= PAR_THRESHOLD && n > 0 {
        out.par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, row)| row_mul_acc(&da[i * k..(i + 1) * k], db, row));
    } else {
        for (i, row) in out.chunks_mut(n).enumerate() {
            row_mul_acc(&da[i * k..(i + 1) * k], db, row);
        }
    }
}

/// `out = A · B` over raw row-major slices; `out` is fully overwritten.
pub fn matmul_into(da: &[f32], db: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    out.fill(0.0);
    matmul_acc_into(da, db, out, m, k, n);
}

/// `C = A · B` for row-major matrices `A: [m, k]`, `B: [k, n]`.
///
/// # Panics
/// Panics unless both inputs are rank-2 with matching inner dimension.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(
        a.rank(),
        2,
        "matmul lhs must be rank-2, got {:?}",
        a.shape()
    );
    assert_eq!(
        b.rank(),
        2,
        "matmul rhs must be rank-2, got {:?}",
        b.shape()
    );
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(
        k,
        k2,
        "matmul inner dims differ: {:?} x {:?}",
        a.shape(),
        b.shape()
    );

    let mut out = vec![0.0f32; m * n];
    matmul_acc_into(a.as_slice(), b.as_slice(), &mut out, m, k, n);
    Tensor::from_vec(out, &[m, n])
}

/// `y = A · x` for `A: [m, k]`, `x: [k]`.
pub fn matvec(a: &Tensor, x: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matvec lhs must be rank-2");
    assert_eq!(x.rank(), 1, "matvec rhs must be rank-1");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    assert_eq!(k, x.shape()[0], "matvec dims differ");
    let da = a.as_slice();
    let dx = x.as_slice();
    let out = (0..m)
        .map(|i| {
            da[i * k..(i + 1) * k]
                .iter()
                .zip(dx)
                .map(|(&a, &b)| a as f64 * b as f64)
                .sum::<f64>() as f32
        })
        .collect();
    Tensor::from_vec(out, &[m])
}

/// Transpose of a rank-2 tensor.
pub fn transpose(a: &Tensor) -> Tensor {
    assert_eq!(
        a.rank(),
        2,
        "transpose requires rank-2, got {:?}",
        a.shape()
    );
    let (m, n) = (a.shape()[0], a.shape()[1]);
    let da = a.as_slice();
    let mut out = vec![0.0f32; m * n];
    // Blocked transpose keeps both read and write streams within cache lines.
    const B: usize = 32;
    for ib in (0..m).step_by(B) {
        for jb in (0..n).step_by(B) {
            for i in ib..(ib + B).min(m) {
                for j in jb..(jb + B).min(n) {
                    out[j * m + i] = da[i * n + j];
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, m])
}

/// `C = Aᵀ · B` without materialising the transpose.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2);
    assert_eq!(b.rank(), 2);
    let (k, m) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul_at_b inner dims differ");
    let da = a.as_slice();
    let db = b.as_slice();
    let mut out = vec![0.0f32; m * n];
    // Accumulate rank-1 updates: out[i][j] += A[kk][i] * B[kk][j].
    for kk in 0..k {
        let a_row = &da[kk * m..(kk + 1) * m];
        let b_row = &db[kk * n..(kk + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// `C = A · Bᵀ` without materialising the transpose.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2);
    assert_eq!(b.rank(), 2);
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (n, k2) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul_a_bt inner dims differ");
    let da = a.as_slice();
    let db = b.as_slice();
    let mut out = vec![0.0f32; m * n];
    let row_kernel = |i: usize, out_row: &mut [f32]| {
        let a_row = &da[i * k..(i + 1) * k];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = &db[j * k..(j + 1) * k];
            *o = a_row.iter().zip(b_row).map(|(&x, &y)| x * y).sum();
        }
    };
    if m * n * k >= PAR_THRESHOLD && n > 0 {
        out.par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, row)| row_kernel(i, row));
    } else {
        for (i, row) in out.chunks_mut(n).enumerate() {
            row_kernel(i, row);
        }
    }
    Tensor::from_vec(out, &[m, n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn t(v: &[f32], s: &[usize]) -> Tensor {
        Tensor::from_vec(v.to_vec(), s)
    }

    /// Naive reference implementation used to validate the optimised kernels.
    fn matmul_ref(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for kk in 0..k {
                    acc += a.at(&[i, kk]) as f64 * b.at(&[kk, j]) as f64;
                }
                out.set(&[i, j], acc as f32);
            }
        }
        out
    }

    #[test]
    fn small_matmul_exact() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]);
        assert_eq!(matmul(&a, &b).as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Rng::seed_from(1);
        let a = Tensor::rand_normal(&[7, 7], 0.0, 1.0, &mut rng);
        assert!(matmul(&a, &Tensor::eye(7)).allclose(&a, 1e-6));
        assert!(matmul(&Tensor::eye(7), &a).allclose(&a, 1e-6));
    }

    #[test]
    fn matches_reference_on_random_rectangles() {
        let mut rng = Rng::seed_from(2);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (17, 9, 13), (64, 32, 48)] {
            let a = Tensor::rand_normal(&[m, k], 0.0, 1.0, &mut rng);
            let b = Tensor::rand_normal(&[k, n], 0.0, 1.0, &mut rng);
            assert!(matmul(&a, &b).allclose(&matmul_ref(&a, &b), 1e-3));
        }
    }

    #[test]
    fn parallel_path_matches_reference() {
        let mut rng = Rng::seed_from(3);
        let a = Tensor::rand_normal(&[80, 70], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[70, 90], 0.0, 1.0, &mut rng);
        // 80*70*90 > PAR_THRESHOLD, so this exercises the rayon path.
        assert!(matmul(&a, &b).allclose(&matmul_ref(&a, &b), 1e-2));
    }

    #[test]
    fn transpose_involution() {
        let mut rng = Rng::seed_from(4);
        let a = Tensor::rand_normal(&[33, 57], 0.0, 1.0, &mut rng);
        let tt = transpose(&transpose(&a));
        assert_eq!(tt, a);
        assert_eq!(transpose(&a).at(&[5, 7]), a.at(&[7, 5]));
    }

    #[test]
    fn fused_transpose_products_match_explicit() {
        let mut rng = Rng::seed_from(5);
        let a = Tensor::rand_normal(&[10, 6], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[10, 8], 0.0, 1.0, &mut rng);
        assert!(matmul_at_b(&a, &b).allclose(&matmul(&transpose(&a), &b), 1e-4));

        let c = Tensor::rand_normal(&[9, 6], 0.0, 1.0, &mut rng);
        let d = Tensor::rand_normal(&[11, 6], 0.0, 1.0, &mut rng);
        assert!(matmul_a_bt(&c, &d).allclose(&matmul(&c, &transpose(&d)), 1e-4));
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = Rng::seed_from(6);
        let a = Tensor::rand_normal(&[12, 5], 0.0, 1.0, &mut rng);
        let x = Tensor::rand_normal(&[5], 0.0, 1.0, &mut rng);
        let via_mm = matmul(&a, &x.reshape(&[5, 1]).unwrap());
        assert!(matvec(&a, &x)
            .reshape(&[12, 1])
            .unwrap()
            .allclose(&via_mm, 1e-4));
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn dimension_mismatch_panics() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2]));
    }

    #[test]
    fn slice_kernel_matches_tensor_matmul_bitwise() {
        let mut rng = Rng::seed_from(7);
        for &(m, k, n) in &[(1, 1, 1), (2, 7, 3), (5, 13, 4), (1, 30, 16)] {
            let a = Tensor::rand_normal(&[m, k], 0.0, 1.0, &mut rng);
            let b = Tensor::rand_normal(&[k, n], 0.0, 1.0, &mut rng);
            let via_tensor = matmul(&a, &b);
            let mut out = vec![0.0f32; m * n];
            matmul_into(a.as_slice(), b.as_slice(), &mut out, m, k, n);
            assert_eq!(out.as_slice(), via_tensor.as_slice());
        }
    }

    #[test]
    fn acc_into_accumulates_on_top_of_existing() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let mut out = vec![1.0f32; 4];
        matmul_acc_into(a.as_slice(), b.as_slice(), &mut out, 2, 2, 2);
        assert_eq!(out.as_slice(), &[20.0, 23.0, 44.0, 51.0]);
    }

    #[test]
    fn zeros_in_lhs_do_not_change_result() {
        // The dense path no longer skips zero multiplicands; make sure the
        // arithmetic is unaffected (x + 0*y == x for finite y).
        let mut rng = Rng::seed_from(8);
        let mut a = Tensor::rand_normal(&[4, 9], 0.0, 1.0, &mut rng);
        for (i, v) in a.as_mut_slice().iter_mut().enumerate() {
            if i % 3 == 0 {
                *v = 0.0;
            }
        }
        let b = Tensor::rand_normal(&[9, 6], 0.0, 1.0, &mut rng);
        assert!(matmul(&a, &b).allclose(&matmul_ref(&a, &b), 1e-4));
    }
}
