//! Matrix multiplication and transposition kernels.
//!
//! Every product here routes through the runtime-dispatched SIMD GEMM in
//! [`crate::gemm`] (AVX2+FMA → AVX → scalar, picked per host), so the taped
//! training path, the tape-free inference engine, and the backward-pass
//! transpose variants all share one microkernel and produce bit-identical
//! rows on a given machine.

use crate::gemm;
use crate::tensor::Tensor;

/// `out += A · B` over raw row-major slices: `A: [m, k]`, `B: [k, n]`,
/// `out: [m, n]`. This is the allocation-free kernel the tape-free inference
/// engine builds on; `matmul` routes through it too, so both paths produce
/// bit-identical rows.
pub fn matmul_acc_into(da: &[f32], db: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm::gemm_into(da, db, out, m, k, n, true);
}

/// `out = A · B` over raw row-major slices; `out` is fully overwritten.
pub fn matmul_into(da: &[f32], db: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm::gemm_into(da, db, out, m, k, n, false);
}

/// `C = A · B` for row-major matrices `A: [m, k]`, `B: [k, n]`.
///
/// # Panics
/// Panics unless both inputs are rank-2 with matching inner dimension.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(
        a.rank(),
        2,
        "matmul lhs must be rank-2, got {:?}",
        a.shape()
    );
    assert_eq!(
        b.rank(),
        2,
        "matmul rhs must be rank-2, got {:?}",
        b.shape()
    );
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(
        k,
        k2,
        "matmul inner dims differ: {:?} x {:?}",
        a.shape(),
        b.shape()
    );

    let mut out = vec![0.0f32; m * n];
    matmul_into(a.as_slice(), b.as_slice(), &mut out, m, k, n);
    Tensor::from_vec(out, &[m, n])
}

/// `y = A · x` for `A: [m, k]`, `x: [k]`.
pub fn matvec(a: &Tensor, x: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matvec lhs must be rank-2");
    assert_eq!(x.rank(), 1, "matvec rhs must be rank-1");
    let (m, k) = (a.shape()[0], a.shape()[1]);
    assert_eq!(k, x.shape()[0], "matvec dims differ");
    let da = a.as_slice();
    let dx = x.as_slice();
    let out = (0..m)
        .map(|i| {
            da[i * k..(i + 1) * k]
                .iter()
                .zip(dx)
                .map(|(&a, &b)| a as f64 * b as f64)
                .sum::<f64>() as f32
        })
        .collect();
    Tensor::from_vec(out, &[m])
}

/// Blocked transpose of a row-major `[rows, cols]` slice into a
/// `[cols, rows]` slice; both streams stay within cache lines.
///
/// # Panics
/// Panics if either slice length differs from `rows * cols`.
pub fn transpose_into(src: &[f32], dst: &mut [f32], rows: usize, cols: usize) {
    assert_eq!(src.len(), rows * cols, "transpose_into src length mismatch");
    assert_eq!(dst.len(), rows * cols, "transpose_into dst length mismatch");
    const B: usize = 32;
    for ib in (0..rows).step_by(B) {
        for jb in (0..cols).step_by(B) {
            for i in ib..(ib + B).min(rows) {
                for j in jb..(jb + B).min(cols) {
                    dst[j * rows + i] = src[i * cols + j];
                }
            }
        }
    }
}

/// Transpose of a rank-2 tensor.
pub fn transpose(a: &Tensor) -> Tensor {
    assert_eq!(
        a.rank(),
        2,
        "transpose requires rank-2, got {:?}",
        a.shape()
    );
    let (m, n) = (a.shape()[0], a.shape()[1]);
    let mut out = vec![0.0f32; m * n];
    transpose_into(a.as_slice(), &mut out, m, n);
    Tensor::from_vec(out, &[n, m])
}

/// `C = Aᵀ · B`: the transpose is staged into scratch so the product runs
/// through the packed GEMM panels — bitwise identical to
/// `matmul(&transpose(a), b)`. Used by the backward pass, so the taped
/// training path hits the SIMD kernel too.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2);
    assert_eq!(b.rank(), 2);
    let (k, m) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul_at_b inner dims differ");
    let mut at = vec![0.0f32; k * m];
    transpose_into(a.as_slice(), &mut at, k, m);
    let mut out = vec![0.0f32; m * n];
    matmul_into(&at, b.as_slice(), &mut out, m, k, n);
    Tensor::from_vec(out, &[m, n])
}

/// `C = A · Bᵀ`: stages `Bᵀ` into scratch and runs the packed GEMM —
/// bitwise identical to `matmul(a, &transpose(b))`.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2);
    assert_eq!(b.rank(), 2);
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (n, k2) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul_a_bt inner dims differ");
    let mut bt = vec![0.0f32; n * k];
    transpose_into(b.as_slice(), &mut bt, n, k);
    let mut out = vec![0.0f32; m * n];
    matmul_into(a.as_slice(), &bt, &mut out, m, k, n);
    Tensor::from_vec(out, &[m, n])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn t(v: &[f32], s: &[usize]) -> Tensor {
        Tensor::from_vec(v.to_vec(), s)
    }

    /// Naive reference implementation used to validate the optimised kernels.
    fn matmul_ref(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for kk in 0..k {
                    acc += a.at(&[i, kk]) as f64 * b.at(&[kk, j]) as f64;
                }
                out.set(&[i, j], acc as f32);
            }
        }
        out
    }

    #[test]
    fn small_matmul_exact() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]);
        assert_eq!(matmul(&a, &b).as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Rng::seed_from(1);
        let a = Tensor::rand_normal(&[7, 7], 0.0, 1.0, &mut rng);
        assert!(matmul(&a, &Tensor::eye(7)).allclose(&a, 1e-6));
        assert!(matmul(&Tensor::eye(7), &a).allclose(&a, 1e-6));
    }

    #[test]
    fn matches_reference_on_random_rectangles() {
        let mut rng = Rng::seed_from(2);
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 2), (17, 9, 13), (64, 32, 48)] {
            let a = Tensor::rand_normal(&[m, k], 0.0, 1.0, &mut rng);
            let b = Tensor::rand_normal(&[k, n], 0.0, 1.0, &mut rng);
            assert!(matmul(&a, &b).allclose(&matmul_ref(&a, &b), 1e-3));
        }
    }

    #[test]
    fn parallel_path_matches_reference() {
        let mut rng = Rng::seed_from(3);
        let a = Tensor::rand_normal(&[80, 70], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[70, 90], 0.0, 1.0, &mut rng);
        // 80*70*90 > PAR_THRESHOLD, so this exercises the rayon path.
        assert!(matmul(&a, &b).allclose(&matmul_ref(&a, &b), 1e-2));
    }

    #[test]
    fn transpose_involution() {
        let mut rng = Rng::seed_from(4);
        let a = Tensor::rand_normal(&[33, 57], 0.0, 1.0, &mut rng);
        let tt = transpose(&transpose(&a));
        assert_eq!(tt, a);
        assert_eq!(transpose(&a).at(&[5, 7]), a.at(&[7, 5]));
    }

    #[test]
    fn fused_transpose_products_match_explicit() {
        let mut rng = Rng::seed_from(5);
        let a = Tensor::rand_normal(&[10, 6], 0.0, 1.0, &mut rng);
        let b = Tensor::rand_normal(&[10, 8], 0.0, 1.0, &mut rng);
        // Both variants stage the transpose and run the same GEMM, so the
        // match is exact, not just within tolerance.
        assert_eq!(
            matmul_at_b(&a, &b).as_slice(),
            matmul(&transpose(&a), &b).as_slice()
        );

        let c = Tensor::rand_normal(&[9, 6], 0.0, 1.0, &mut rng);
        let d = Tensor::rand_normal(&[11, 6], 0.0, 1.0, &mut rng);
        assert_eq!(
            matmul_a_bt(&c, &d).as_slice(),
            matmul(&c, &transpose(&d)).as_slice()
        );
    }

    #[test]
    fn matvec_matches_matmul() {
        let mut rng = Rng::seed_from(6);
        let a = Tensor::rand_normal(&[12, 5], 0.0, 1.0, &mut rng);
        let x = Tensor::rand_normal(&[5], 0.0, 1.0, &mut rng);
        let via_mm = matmul(&a, &x.reshape(&[5, 1]).unwrap());
        assert!(matvec(&a, &x)
            .reshape(&[12, 1])
            .unwrap()
            .allclose(&via_mm, 1e-4));
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn dimension_mismatch_panics() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2]));
    }

    #[test]
    fn slice_kernel_matches_tensor_matmul_bitwise() {
        let mut rng = Rng::seed_from(7);
        for &(m, k, n) in &[(1, 1, 1), (2, 7, 3), (5, 13, 4), (1, 30, 16)] {
            let a = Tensor::rand_normal(&[m, k], 0.0, 1.0, &mut rng);
            let b = Tensor::rand_normal(&[k, n], 0.0, 1.0, &mut rng);
            let via_tensor = matmul(&a, &b);
            let mut out = vec![0.0f32; m * n];
            matmul_into(a.as_slice(), b.as_slice(), &mut out, m, k, n);
            assert_eq!(out.as_slice(), via_tensor.as_slice());
        }
    }

    #[test]
    fn acc_into_accumulates_on_top_of_existing() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let mut out = vec![1.0f32; 4];
        matmul_acc_into(a.as_slice(), b.as_slice(), &mut out, 2, 2, 2);
        assert_eq!(out.as_slice(), &[20.0, 23.0, 44.0, 51.0]);
    }

    #[test]
    fn zeros_in_lhs_do_not_change_result() {
        // The dense path no longer skips zero multiplicands; make sure the
        // arithmetic is unaffected (x + 0*y == x for finite y).
        let mut rng = Rng::seed_from(8);
        let mut a = Tensor::rand_normal(&[4, 9], 0.0, 1.0, &mut rng);
        for (i, v) in a.as_mut_slice().iter_mut().enumerate() {
            if i % 3 == 0 {
                *v = 0.0;
            }
        }
        let b = Tensor::rand_normal(&[9, 6], 0.0, 1.0, &mut rng);
        assert!(matmul(&a, &b).allclose(&matmul_ref(&a, &b), 1e-4));
    }
}
