//! The dense, row-major, `f32` tensor type every other crate builds on.

use crate::rng::Rng;
use crate::shape::{self, ShapeError};

/// A dense n-dimensional array of `f32` values in row-major (C) order.
///
/// The type is deliberately simple: owned contiguous storage, no views, no
/// reference counting. Kernels that need strided access (broadcasting,
/// transposition) compute strides on the fly. This keeps every operation
/// easy to reason about and trivially `Send + Sync`.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let preview: Vec<f32> = self.data.iter().take(8).copied().collect();
        write!(
            f,
            "Tensor(shape={:?}, data[..{}]={:?}{})",
            self.shape,
            preview.len(),
            preview,
            if self.data.len() > 8 { ", ..." } else { "" }
        )
    }
}

impl Tensor {
    /// Build a tensor from raw `data` laid out row-major for `shape`.
    ///
    /// # Panics
    /// Panics when `data.len()` disagrees with the shape volume.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            shape::num_elements(shape),
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Self {
            data,
            shape: shape.to_vec(),
        }
    }

    /// A scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Self {
        Self {
            data: vec![value],
            shape: vec![],
        }
    }

    /// All-zero tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        Self {
            data: vec![0.0; shape::num_elements(shape)],
            shape: shape.to_vec(),
        }
    }

    /// All-one tensor of the given shape.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Self {
            data: vec![value; shape::num_elements(shape)],
            shape: shape.to_vec(),
        }
    }

    /// Uniform samples from `[lo, hi)`.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut Rng) -> Self {
        let n = shape::num_elements(shape);
        let data = (0..n).map(|_| rng.uniform(lo, hi)).collect();
        Self {
            data,
            shape: shape.to_vec(),
        }
    }

    /// Gaussian samples with the given mean and standard deviation.
    pub fn rand_normal(shape: &[usize], mean: f32, std: f32, rng: &mut Rng) -> Self {
        let n = shape::num_elements(shape);
        let data = (0..n).map(|_| rng.normal(mean, std)).collect();
        Self {
            data,
            shape: shape.to_vec(),
        }
    }

    /// `[0, 1, 2, ..., n-1]` as a 1-D tensor.
    pub fn arange(n: usize) -> Self {
        Self {
            data: (0..n).map(|i| i as f32).collect(),
            shape: vec![n],
        }
    }

    /// Identity matrix of size `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of axes.
    #[inline]
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements (some axis is zero).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor and return its storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// The single value of a rank-0 or single-element tensor.
    ///
    /// # Panics
    /// Panics when the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.data.len(),
            1,
            "item() on tensor with {} elements",
            self.data.len()
        );
        self.data[0]
    }

    /// Element at a multi-dimensional index.
    #[inline]
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[shape::linear_index(&self.shape, index)]
    }

    /// Set the element at a multi-dimensional index.
    #[inline]
    pub fn set(&mut self, index: &[usize], value: f32) {
        let i = shape::linear_index(&self.shape, index);
        self.data[i] = value;
    }

    /// Reinterpret the storage under a new shape with the same volume.
    pub fn reshape(&self, new_shape: &[usize]) -> Result<Tensor, ShapeError> {
        if shape::num_elements(new_shape) != self.data.len() {
            return Err(ShapeError::new(format!(
                "cannot reshape {:?} ({} elems) to {:?}",
                self.shape,
                self.data.len(),
                new_shape
            )));
        }
        Ok(Tensor {
            data: self.data.clone(),
            shape: new_shape.to_vec(),
        })
    }

    /// Reshape without cloning, consuming `self`.
    pub fn into_reshape(mut self, new_shape: &[usize]) -> Result<Tensor, ShapeError> {
        if shape::num_elements(new_shape) != self.data.len() {
            return Err(ShapeError::new(format!(
                "cannot reshape {:?} ({} elems) to {:?}",
                self.shape,
                self.data.len(),
                new_shape
            )));
        }
        self.shape = new_shape.to_vec();
        Ok(self)
    }

    /// Apply `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Materialise this tensor broadcast to `target` shape.
    pub fn broadcast_to(&self, target: &[usize]) -> Result<Tensor, ShapeError> {
        if !shape::broadcastable_to(&self.shape, target) {
            return Err(ShapeError::new(format!(
                "cannot broadcast {:?} to {:?}",
                self.shape, target
            )));
        }
        if self.shape == target {
            return Ok(self.clone());
        }
        let strides = shape::broadcast_strides(&self.shape, target);
        let n = shape::num_elements(target);
        let mut out = vec![0.0f32; n];
        let mut index = vec![0usize; target.len()];
        for slot in out.iter_mut() {
            let mut src = 0usize;
            for (axis, &i) in index.iter().enumerate() {
                src += i * strides[axis];
            }
            *slot = self.data[src];
            // Increment the odometer.
            for axis in (0..target.len()).rev() {
                index[axis] += 1;
                if index[axis] < target[axis] {
                    break;
                }
                index[axis] = 0;
            }
        }
        Ok(Tensor {
            data: out,
            shape: target.to_vec(),
        })
    }

    /// Extract row `i` of a rank-2 tensor as a 1-D tensor.
    pub fn row(&self, i: usize) -> Tensor {
        assert_eq!(self.rank(), 2, "row() requires a matrix");
        let cols = self.shape[1];
        Tensor::from_vec(self.data[i * cols..(i + 1) * cols].to_vec(), &[cols])
    }

    /// Extract column `j` of a rank-2 tensor as a 1-D tensor.
    pub fn col(&self, j: usize) -> Tensor {
        assert_eq!(self.rank(), 2, "col() requires a matrix");
        let (rows, cols) = (self.shape[0], self.shape[1]);
        let data = (0..rows).map(|i| self.data[i * cols + j]).collect();
        Tensor::from_vec(data, &[rows])
    }

    /// True when every element is finite (no NaN / infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute difference between two tensors of identical shape.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch in max_abs_diff");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }

    /// Approximate equality within `tol` (absolute, elementwise).
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape && self.max_abs_diff(other) <= tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.row(1).as_slice(), &[4.0, 5.0, 6.0]);
        assert_eq!(t.col(0).as_slice(), &[1.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_bad_len_panics() {
        Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros(&[3]).as_slice(), &[0.0; 3]);
        assert_eq!(Tensor::ones(&[2]).as_slice(), &[1.0; 2]);
        assert_eq!(Tensor::full(&[2], 7.0).as_slice(), &[7.0, 7.0]);
        assert_eq!(Tensor::arange(4).as_slice(), &[0.0, 1.0, 2.0, 3.0]);
        let eye = Tensor::eye(2);
        assert_eq!(eye.as_slice(), &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::arange(6).reshape(&[2, 3]).unwrap();
        assert_eq!(t.at(&[1, 0]), 3.0);
        assert!(t.reshape(&[4, 2]).is_err());
        let back = t.into_reshape(&[6]).unwrap();
        assert_eq!(back.shape(), &[6]);
    }

    #[test]
    fn broadcast_to_row_and_col() {
        let row = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = row.broadcast_to(&[2, 3]).unwrap();
        assert_eq!(b.as_slice(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);

        let col = Tensor::from_vec(vec![1.0, 2.0], &[2, 1]);
        let b = col.broadcast_to(&[2, 3]).unwrap();
        assert_eq!(b.as_slice(), &[1.0, 1.0, 1.0, 2.0, 2.0, 2.0]);

        assert!(col.broadcast_to(&[3, 3]).is_err());
    }

    #[test]
    fn map_and_allclose() {
        let t = Tensor::arange(3).map(|x| x * 2.0);
        assert_eq!(t.as_slice(), &[0.0, 2.0, 4.0]);
        let u = Tensor::from_vec(vec![0.0, 2.0, 4.0 + 1e-4], &[3]);
        assert!(t.allclose(&u, 1e-3));
        assert!(!t.allclose(&u, 1e-6));
    }

    #[test]
    fn rand_uniform_in_range() {
        let mut rng = Rng::seed_from(7);
        let t = Tensor::rand_uniform(&[100], -1.0, 1.0, &mut rng);
        assert!(t.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
        assert!(t.all_finite());
    }

    #[test]
    fn rand_normal_moments() {
        let mut rng = Rng::seed_from(11);
        let t = Tensor::rand_normal(&[10_000], 2.0, 0.5, &mut rng);
        let mean = t.as_slice().iter().sum::<f32>() / 10_000.0;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }
}
