//! # tensor — dense numerical kernels for the RPTCN reproduction
//!
//! A deliberately small, dependency-light numerical core:
//!
//! * [`Tensor`] — an owned, contiguous, row-major `f32` n-d array.
//! * [`ops`] — elementwise arithmetic with NumPy-style broadcasting.
//! * [`gemm`] — runtime-dispatched SIMD GEMM microkernel (AVX2+FMA → AVX →
//!   scalar) with bitwise-pinned scalar twins.
//! * [`matmul`] — matrix products routed through [`gemm`] (plus
//!   fused-transpose variants used by the autodiff backward passes).
//! * [`reduce`] — full and per-axis reductions, stable softmax.
//! * [`linalg`] — Cholesky / OLS / Levinson–Durbin for the ARIMA baseline.
//! * [`stats`] — moments, Pearson correlation, quantiles, autocovariance.
//! * [`rng`] — seedable RNG with the distributions the workspace needs.
//!
//! Everything upstream (`autograd`, `models`, `cloudtrace`, …) builds on these
//! primitives, so this crate carries the densest test coverage, including
//! property-based tests in `tests/`.

// The gemm microkernels are the only unsafe code here; the deny forces every
// operation inside an `unsafe fn` into an explicit, justified unsafe block.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod gemm;
pub mod linalg;
pub mod matmul;
pub mod ops;
pub mod reduce;
pub mod rng;
pub mod shape;
pub mod stats;
mod tensor;

pub use rng::Rng;
pub use shape::ShapeError;
pub use tensor::Tensor;
