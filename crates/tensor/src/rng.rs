//! Seedable random-number helpers.
//!
//! Every stochastic component in the workspace (weight init, dropout, trace
//! generation, subsampling) draws from this wrapper so experiments are
//! reproducible from a single `--seed` flag.

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

/// A seedable RNG with the handful of distributions the workspace needs.
pub struct Rng {
    inner: StdRng,
    /// Cached second sample from the Box–Muller transform.
    spare_normal: Option<f32>,
}

impl Rng {
    /// Deterministic RNG from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        debug_assert!(lo < hi, "uniform requires lo < hi");
        lo + (hi - lo) * self.inner.gen::<f32>()
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "below(0)");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with success probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen::<f64>() < p
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f32 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Draw u1 in (0, 1] to keep ln() finite.
        let u1: f32 = 1.0 - self.inner.gen::<f32>();
        let u2: f32 = self.inner.gen::<f32>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.standard_normal()
    }

    /// Exponential sample with the given rate parameter.
    pub fn exponential(&mut self, rate: f32) -> f32 {
        debug_assert!(rate > 0.0);
        let u: f32 = 1.0 - self.inner.gen::<f32>();
        -u.ln() / rate
    }

    /// Poisson sample (Knuth's method; adequate for the small means used by
    /// the trace generator's burst process).
    pub fn poisson(&mut self, lambda: f64) -> usize {
        debug_assert!(lambda >= 0.0);
        let l = (-lambda).exp();
        let mut k = 0usize;
        let mut p = 1.0f64;
        loop {
            p *= self.inner.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Fisher–Yates shuffle of `indices`.
    pub fn shuffle(&mut self, indices: &mut [usize]) {
        for i in (1..indices.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            indices.swap(i, j);
        }
    }

    /// A fresh child RNG whose seed is drawn from this one. Used to give each
    /// parallel worker an independent, reproducible stream.
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from(self.inner.gen::<u64>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::seed_from(42);
        let mut b = Rng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..32)
            .filter(|_| a.uniform(0.0, 1.0) == b.uniform(0.0, 1.0))
            .count();
        assert!(same < 4);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::seed_from(3);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn poisson_mean_close_to_lambda() {
        let mut rng = Rng::seed_from(4);
        let n = 5_000;
        let total: usize = (0..n).map(|_| rng.poisson(3.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn exponential_is_positive_with_right_mean() {
        let mut rng = Rng::seed_from(5);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.exponential(2.0)).collect();
        assert!(samples.iter().all(|&x| x >= 0.0));
        let mean = samples.iter().sum::<f32>() / n as f32;
        assert!((mean - 0.5).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from(6);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn below_and_chance_bounds() {
        let mut rng = Rng::seed_from(7);
        for _ in 0..100 {
            assert!(rng.below(5) < 5);
        }
        let hits = (0..1000).filter(|_| rng.chance(0.25)).count();
        assert!((150..350).contains(&hits), "hits {hits}");
    }

    #[test]
    fn fork_streams_are_independent_and_reproducible() {
        let mut parent1 = Rng::seed_from(9);
        let mut parent2 = Rng::seed_from(9);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        for _ in 0..16 {
            assert_eq!(c1.uniform(0.0, 1.0), c2.uniform(0.0, 1.0));
        }
    }
}
