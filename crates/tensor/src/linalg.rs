//! Small dense linear-algebra routines: Cholesky factorisation, triangular
//! solves, ridge-regularised ordinary least squares and Levinson–Durbin
//! recursion. These back the ARIMA estimator and a few statistics helpers —
//! the systems here are tiny (tens of unknowns), so clarity beats blocking.

use crate::matmul::{matmul_at_b, matvec, transpose};
use crate::tensor::Tensor;

/// Error from a linear-algebra routine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinalgError(pub String);

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "linalg error: {}", self.0)
    }
}

impl std::error::Error for LinalgError {}

/// Cholesky factorisation `A = L·Lᵀ` of a symmetric positive-definite matrix,
/// returning the lower-triangular factor `L`.
pub fn cholesky(a: &Tensor) -> Result<Tensor, LinalgError> {
    assert_eq!(a.rank(), 2);
    let n = a.shape()[0];
    assert_eq!(a.shape()[1], n, "cholesky requires a square matrix");
    let src = a.as_slice();
    let mut l = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut s = src[i * n + j] as f64;
            for k in 0..j {
                s -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if s <= 0.0 {
                    return Err(LinalgError(format!(
                        "matrix not positive definite (pivot {i} = {s:.3e})"
                    )));
                }
                l[i * n + j] = s.sqrt();
            } else {
                l[i * n + j] = s / l[j * n + j];
            }
        }
    }
    Ok(Tensor::from_vec(
        l.into_iter().map(|x| x as f32).collect(),
        &[n, n],
    ))
}

/// Solve `L·y = b` for lower-triangular `L` by forward substitution.
pub fn solve_lower(l: &Tensor, b: &Tensor) -> Tensor {
    let n = l.shape()[0];
    assert_eq!(b.shape(), &[n], "solve_lower rhs shape mismatch");
    let dl = l.as_slice();
    let db = b.as_slice();
    let mut y = vec![0.0f64; n];
    for i in 0..n {
        let mut s = db[i] as f64;
        for (j, &yj) in y.iter().enumerate().take(i) {
            s -= dl[i * n + j] as f64 * yj;
        }
        y[i] = s / dl[i * n + i] as f64;
    }
    Tensor::from_vec(y.into_iter().map(|x| x as f32).collect(), &[n])
}

/// Solve `U·x = b` for upper-triangular `U` by back substitution.
pub fn solve_upper(u: &Tensor, b: &Tensor) -> Tensor {
    let n = u.shape()[0];
    assert_eq!(b.shape(), &[n], "solve_upper rhs shape mismatch");
    let du = u.as_slice();
    let db = b.as_slice();
    let mut x = vec![0.0f64; n];
    for i in (0..n).rev() {
        let mut s = db[i] as f64;
        for (j, &xj) in x.iter().enumerate().skip(i + 1) {
            s -= du[i * n + j] as f64 * xj;
        }
        x[i] = s / du[i * n + i] as f64;
    }
    Tensor::from_vec(x.into_iter().map(|x| x as f32).collect(), &[n])
}

/// Solve the symmetric positive-definite system `A·x = b` via Cholesky.
pub fn solve_spd(a: &Tensor, b: &Tensor) -> Result<Tensor, LinalgError> {
    let l = cholesky(a)?;
    let y = solve_lower(&l, b);
    Ok(solve_upper(&transpose(&l), &y))
}

/// Ridge-regularised ordinary least squares: minimise
/// `‖X·β − y‖² + ridge·‖β‖²` via the normal equations.
///
/// A tiny default `ridge` keeps the normal equations well-conditioned when
/// columns of `X` are nearly collinear (common with lagged features).
pub fn least_squares(x: &Tensor, y: &Tensor, ridge: f32) -> Result<Tensor, LinalgError> {
    assert_eq!(x.rank(), 2, "least_squares design matrix must be rank-2");
    let (n, p) = (x.shape()[0], x.shape()[1]);
    assert_eq!(y.shape(), &[n], "least_squares target length mismatch");
    if n < p {
        return Err(LinalgError(format!(
            "underdetermined system: {n} rows, {p} cols"
        )));
    }
    let xtx = matmul_at_b(x, x);
    let xty = matvec(&transpose(x), y);
    // Lagged/expanded features are frequently collinear, which makes XᵀX
    // singular to f32 precision. Escalate the ridge (relative to the mean
    // diagonal magnitude) until the Cholesky succeeds; the caller's `ridge`
    // is the starting point.
    let mean_diag: f32 = (0..p).map(|i| xtx.at(&[i, i])).sum::<f32>() / p as f32;
    let mut lambda = ridge.max(0.0);
    for attempt in 0..8 {
        let mut regularised = xtx.clone();
        for i in 0..p {
            let v = regularised.at(&[i, i]) + lambda;
            regularised.set(&[i, i], v);
        }
        match solve_spd(&regularised, &xty) {
            Ok(beta) => return Ok(beta),
            Err(e) if attempt == 7 => return Err(e),
            Err(_) => {
                lambda = (lambda * 10.0).max(mean_diag.abs() * 1e-6).max(1e-10);
            }
        }
    }
    unreachable!("ridge escalation loop always returns")
}

/// Levinson–Durbin recursion: fit an AR(p) model to an autocovariance
/// sequence `acov[0..=p]`, returning `(coefficients, innovation variance)`.
///
/// The coefficients follow the convention
/// `x_t = φ_1 x_{t-1} + … + φ_p x_{t-p} + ε_t`.
pub fn levinson_durbin(acov: &[f64], p: usize) -> Result<(Vec<f64>, f64), LinalgError> {
    if acov.len() < p + 1 {
        return Err(LinalgError(format!(
            "need {} autocovariances for AR({p}), got {}",
            p + 1,
            acov.len()
        )));
    }
    if acov[0] <= 0.0 {
        return Err(LinalgError("zero-variance series".into()));
    }
    let mut phi = vec![0.0f64; p];
    let mut prev = vec![0.0f64; p];
    let mut err = acov[0];
    for k in 0..p {
        let mut acc = acov[k + 1];
        for j in 0..k {
            acc -= prev[j] * acov[k - j];
        }
        let reflection = acc / err;
        phi[k] = reflection;
        for j in 0..k {
            phi[j] = prev[j] - reflection * prev[k - 1 - j];
        }
        err *= 1.0 - reflection * reflection;
        if err <= 0.0 {
            // Perfectly predictable series; clamp to avoid negative variance.
            err = 1e-12;
        }
        prev[..=k].copy_from_slice(&phi[..=k]);
    }
    Ok((phi, err))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::matmul;
    use crate::rng::Rng;

    fn t(v: &[f32], s: &[usize]) -> Tensor {
        Tensor::from_vec(v.to_vec(), s)
    }

    #[test]
    fn cholesky_of_known_matrix() {
        // A = [[4, 2], [2, 3]] => L = [[2, 0], [1, sqrt(2)]]
        let a = t(&[4.0, 2.0, 2.0, 3.0], &[2, 2]);
        let l = cholesky(&a).unwrap();
        assert!((l.at(&[0, 0]) - 2.0).abs() < 1e-6);
        assert!((l.at(&[1, 0]) - 1.0).abs() < 1e-6);
        assert!((l.at(&[1, 1]) - 2.0f32.sqrt()).abs() < 1e-6);
        assert_eq!(l.at(&[0, 1]), 0.0);
        // Reconstruction.
        let rec = matmul(&l, &transpose(&l));
        assert!(rec.allclose(&a, 1e-5));
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = t(&[1.0, 2.0, 2.0, 1.0], &[2, 2]);
        assert!(cholesky(&a).is_err());
    }

    #[test]
    fn spd_solve_recovers_solution() {
        let mut rng = Rng::seed_from(1);
        let m = Tensor::rand_normal(&[6, 6], 0.0, 1.0, &mut rng);
        // A = MᵀM + I is SPD.
        let mut a = matmul_at_b(&m, &m);
        for i in 0..6 {
            let v = a.at(&[i, i]) + 1.0;
            a.set(&[i, i], v);
        }
        let x_true = Tensor::rand_normal(&[6], 0.0, 1.0, &mut rng);
        let b = matvec(&a, &x_true);
        let x = solve_spd(&a, &b).unwrap();
        assert!(x.allclose(&x_true, 1e-3));
    }

    #[test]
    fn triangular_solves() {
        let l = t(&[2.0, 0.0, 1.0, 3.0], &[2, 2]);
        let y = solve_lower(&l, &t(&[4.0, 10.0], &[2]));
        assert!(y.allclose(&t(&[2.0, 8.0 / 3.0], &[2]), 1e-6));
        let u = transpose(&l);
        let x = solve_upper(&u, &t(&[7.0, 6.0], &[2]));
        // U = [[2,1],[0,3]]; x2 = 2, x1 = (7-2)/2 = 2.5
        assert!(x.allclose(&t(&[2.5, 2.0], &[2]), 1e-6));
    }

    #[test]
    fn least_squares_recovers_line() {
        // y = 3x + 1 with no noise.
        let xs: Vec<f32> = (0..20).map(|i| i as f32 / 4.0).collect();
        let mut design = Vec::new();
        let mut ys = Vec::new();
        for &x in &xs {
            design.extend_from_slice(&[x, 1.0]);
            ys.push(3.0 * x + 1.0);
        }
        let beta = least_squares(
            &Tensor::from_vec(design, &[20, 2]),
            &Tensor::from_vec(ys, &[20]),
            1e-6,
        )
        .unwrap();
        assert!((beta.as_slice()[0] - 3.0).abs() < 1e-3);
        assert!((beta.as_slice()[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn least_squares_underdetermined_errors() {
        let x = Tensor::zeros(&[2, 5]);
        let y = Tensor::zeros(&[2]);
        assert!(least_squares(&x, &y, 0.0).is_err());
    }

    #[test]
    fn levinson_recovers_ar1() {
        // AR(1) with phi = 0.7, sigma^2 = 1 has acov[k] = phi^k / (1 - phi^2).
        let phi = 0.7f64;
        let var = 1.0 / (1.0 - phi * phi);
        let acov: Vec<f64> = (0..5).map(|k| var * phi.powi(k)).collect();
        let (coef, err) = levinson_durbin(&acov, 1).unwrap();
        assert!((coef[0] - 0.7).abs() < 1e-9);
        assert!((err - 1.0).abs() < 1e-9);
    }

    #[test]
    fn levinson_recovers_ar2() {
        // For AR(2), build autocovariances from the Yule-Walker equations with
        // phi = (0.5, -0.25), sigma^2 = 1.
        let (p1, p2) = (0.5f64, -0.25f64);
        // r1 = p1/(1-p2) * r0 ; r0 from variance formula.
        let r0 = (1.0 - p2) / ((1.0 + p2) * ((1.0 - p2).powi(2) - p1 * p1));
        let r1 = p1 / (1.0 - p2) * r0;
        let r2 = p1 * r1 + p2 * r0;
        let r3 = p1 * r2 + p2 * r1;
        let (coef, _) = levinson_durbin(&[r0, r1, r2, r3], 2).unwrap();
        assert!((coef[0] - p1).abs() < 1e-9, "{coef:?}");
        assert!((coef[1] - p2).abs() < 1e-9, "{coef:?}");
    }

    #[test]
    fn levinson_needs_enough_lags() {
        assert!(levinson_durbin(&[1.0, 0.5], 3).is_err());
        assert!(levinson_durbin(&[0.0, 0.0], 1).is_err());
    }
}
