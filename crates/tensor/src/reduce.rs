//! Reductions: full-tensor and along a single axis.

use crate::shape::row_major_strides;
use crate::tensor::Tensor;

/// Sum of all elements, accumulated in f64.
pub fn sum(a: &Tensor) -> f32 {
    a.as_slice().iter().map(|&x| x as f64).sum::<f64>() as f32
}

/// Mean of all elements; 0 for an empty tensor.
pub fn mean(a: &Tensor) -> f32 {
    if a.is_empty() {
        return 0.0;
    }
    sum(a) / a.len() as f32
}

/// Maximum element; `-inf` for an empty tensor.
pub fn max(a: &Tensor) -> f32 {
    a.as_slice()
        .iter()
        .copied()
        .fold(f32::NEG_INFINITY, f32::max)
}

/// Minimum element; `+inf` for an empty tensor.
pub fn min(a: &Tensor) -> f32 {
    a.as_slice().iter().copied().fold(f32::INFINITY, f32::min)
}

/// Index of the maximum element (first occurrence).
pub fn argmax(a: &Tensor) -> usize {
    assert!(!a.is_empty(), "argmax of empty tensor");
    let mut best = 0;
    let data = a.as_slice();
    for (i, &x) in data.iter().enumerate() {
        if x > data[best] {
            best = i;
        }
    }
    best
}

/// Walk a tensor reduced along `axis`, calling `f(out_index, value)` for every
/// element, where `out_index` is the linear index in the reduced tensor.
fn for_each_reduced(a: &Tensor, axis: usize, mut f: impl FnMut(usize, f32)) -> Vec<usize> {
    assert!(
        axis < a.rank(),
        "axis {axis} out of range for rank {}",
        a.rank()
    );
    let shape = a.shape();
    let out_shape: Vec<usize> = shape
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != axis)
        .map(|(_, &d)| d)
        .collect();
    let strides = row_major_strides(shape);
    let axis_len = shape[axis];
    let axis_stride = strides[axis];
    // outer iterates over all indices with the reduced axis removed.
    let outer: usize = out_shape.iter().product();
    let out_strides = row_major_strides(&out_shape);
    for o in 0..outer {
        // Decompose o into the multi-index of the reduced tensor, then map to
        // the base offset in the source tensor.
        let mut rem = o;
        let mut base = 0usize;
        let mut oi = 0usize;
        for (i, &d) in shape.iter().enumerate() {
            if i == axis {
                continue;
            }
            let idx = rem / out_strides[oi];
            rem %= out_strides[oi];
            debug_assert!(idx < d);
            base += idx * strides[i];
            oi += 1;
        }
        for j in 0..axis_len {
            f(o, a.as_slice()[base + j * axis_stride]);
        }
    }
    out_shape
}

/// Sum along `axis`, removing that axis from the shape.
pub fn sum_axis(a: &Tensor, axis: usize) -> Tensor {
    let mut acc: Vec<f64> = Vec::new();
    let out_shape = for_each_reduced(a, axis, |o, v| {
        if o >= acc.len() {
            acc.resize(o + 1, 0.0);
        }
        acc[o] += v as f64;
    });
    let n: usize = out_shape.iter().product();
    acc.resize(n, 0.0);
    Tensor::from_vec(acc.into_iter().map(|x| x as f32).collect(), &out_shape)
}

/// Mean along `axis`, removing that axis from the shape.
pub fn mean_axis(a: &Tensor, axis: usize) -> Tensor {
    let d = a.shape()[axis].max(1) as f32;
    let mut out = sum_axis(a, axis);
    out.map_inplace(|x| x / d);
    out
}

/// Maximum along `axis`, removing that axis from the shape.
pub fn max_axis(a: &Tensor, axis: usize) -> Tensor {
    let mut acc: Vec<f32> = Vec::new();
    let out_shape = for_each_reduced(a, axis, |o, v| {
        if o >= acc.len() {
            acc.resize(o + 1, f32::NEG_INFINITY);
        }
        acc[o] = acc[o].max(v);
    });
    let n: usize = out_shape.iter().product();
    acc.resize(n, f32::NEG_INFINITY);
    Tensor::from_vec(acc, &out_shape)
}

/// Numerically-stable softmax along the last axis of a rank-2 tensor.
pub fn softmax_rows(a: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "softmax_rows requires rank-2");
    let (m, n) = (a.shape()[0], a.shape()[1]);
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let row = &a.as_slice()[i * n..(i + 1) * n];
        let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f64;
        for (j, &x) in row.iter().enumerate() {
            let e = (x - mx).exp();
            out[i * n + j] = e;
            denom += e as f64;
        }
        let inv = 1.0 / denom as f32;
        for slot in &mut out[i * n..(i + 1) * n] {
            *slot *= inv;
        }
    }
    Tensor::from_vec(out, &[m, n])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32], s: &[usize]) -> Tensor {
        Tensor::from_vec(v.to_vec(), s)
    }

    #[test]
    fn full_reductions() {
        let a = t(&[1.0, -2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(sum(&a), 6.0);
        assert_eq!(mean(&a), 1.5);
        assert_eq!(max(&a), 4.0);
        assert_eq!(min(&a), -2.0);
        assert_eq!(argmax(&a), 3);
    }

    #[test]
    fn sum_axis_matrix() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(sum_axis(&a, 0).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(sum_axis(&a, 0).shape(), &[3]);
        assert_eq!(sum_axis(&a, 1).as_slice(), &[6.0, 15.0]);
        assert_eq!(sum_axis(&a, 1).shape(), &[2]);
    }

    #[test]
    fn sum_axis_rank3() {
        let a = Tensor::arange(24).into_reshape(&[2, 3, 4]).unwrap();
        let s0 = sum_axis(&a, 0);
        assert_eq!(s0.shape(), &[3, 4]);
        assert_eq!(s0.at(&[0, 0]), 0.0 + 12.0);
        let s1 = sum_axis(&a, 1);
        assert_eq!(s1.shape(), &[2, 4]);
        assert_eq!(s1.at(&[0, 1]), 1.0 + 5.0 + 9.0);
        let s2 = sum_axis(&a, 2);
        assert_eq!(s2.shape(), &[2, 3]);
        assert_eq!(s2.at(&[1, 2]), 20.0 + 21.0 + 22.0 + 23.0);
    }

    #[test]
    fn mean_and_max_axis() {
        let a = t(&[1.0, 5.0, 3.0, 2.0, 4.0, 6.0], &[2, 3]);
        assert_eq!(mean_axis(&a, 1).as_slice(), &[3.0, 4.0]);
        assert_eq!(max_axis(&a, 0).as_slice(), &[2.0, 5.0, 6.0]);
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let a = t(&[1.0, 2.0, 3.0, 1000.0, 1000.0, 1000.0], &[2, 3]);
        let s = softmax_rows(&a);
        assert!(s.all_finite());
        for i in 0..2 {
            let row_sum: f32 = s.row(i).as_slice().iter().sum();
            assert!((row_sum - 1.0).abs() < 1e-5);
        }
        // Uniform logits give uniform probabilities.
        assert!((s.at(&[1, 0]) - 1.0 / 3.0).abs() < 1e-5);
        // Larger logit gets larger mass.
        assert!(s.at(&[0, 2]) > s.at(&[0, 1]));
    }

    #[test]
    fn sum_axis_is_consistent_with_full_sum() {
        let a = Tensor::arange(24).into_reshape(&[2, 3, 4]).unwrap();
        for axis in 0..3 {
            assert!((sum(&sum_axis(&a, axis)) - sum(&a)).abs() < 1e-4);
        }
    }
}
