//! Shape arithmetic: row-major strides, index linearisation and NumPy-style
//! broadcasting rules shared by every tensor kernel.

use std::fmt;

/// Error raised when two shapes cannot be combined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    msg: String,
}

impl ShapeError {
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "shape error: {}", self.msg)
    }
}

impl std::error::Error for ShapeError {}

/// Total number of elements described by `shape`.
///
/// An empty shape describes a scalar and has one element.
pub fn num_elements(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Row-major (C-order) strides for `shape`.
///
/// The last axis is contiguous; `strides[i]` is the linear distance between
/// consecutive indices along axis `i`.
pub fn row_major_strides(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    strides
}

/// Linearise a multi-dimensional `index` into a flat offset under row-major
/// layout. Panics in debug builds if the index is out of bounds.
pub fn linear_index(shape: &[usize], index: &[usize]) -> usize {
    debug_assert_eq!(shape.len(), index.len(), "index rank mismatch");
    let mut offset = 0;
    let mut stride = 1;
    for axis in (0..shape.len()).rev() {
        debug_assert!(index[axis] < shape[axis], "index out of bounds");
        offset += index[axis] * stride;
        stride *= shape[axis];
    }
    offset
}

/// Compute the broadcast shape of `a` and `b` under NumPy rules: shapes are
/// right-aligned and each pair of axes must be equal or one of them `1`.
pub fn broadcast_shape(a: &[usize], b: &[usize]) -> Result<Vec<usize>, ShapeError> {
    let rank = a.len().max(b.len());
    let mut out = vec![0usize; rank];
    for i in 0..rank {
        let da = if i < rank - a.len() {
            1
        } else {
            a[i - (rank - a.len())]
        };
        let db = if i < rank - b.len() {
            1
        } else {
            b[i - (rank - b.len())]
        };
        out[i] = if da == db {
            da
        } else if da == 1 {
            db
        } else if db == 1 {
            da
        } else {
            return Err(ShapeError::new(format!(
                "cannot broadcast {a:?} with {b:?} (axis {i}: {da} vs {db})"
            )));
        };
    }
    Ok(out)
}

/// Strides for reading a tensor of shape `from` as if it had the broadcast
/// shape `to`: broadcast axes get stride 0 so the same element is re-read.
pub fn broadcast_strides(from: &[usize], to: &[usize]) -> Vec<usize> {
    debug_assert!(from.len() <= to.len());
    let base = row_major_strides(from);
    let mut out = vec![0usize; to.len()];
    let offset = to.len() - from.len();
    for i in 0..from.len() {
        out[offset + i] = if from[i] == to[offset + i] {
            base[i]
        } else {
            0
        };
    }
    out
}

/// True when `shape` can be broadcast to `target` without copying axes of
/// `target` down.
pub fn broadcastable_to(shape: &[usize], target: &[usize]) -> bool {
    if shape.len() > target.len() {
        return false;
    }
    let offset = target.len() - shape.len();
    shape
        .iter()
        .enumerate()
        .all(|(i, &d)| d == target[offset + i] || d == 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_of_2x3x4() {
        assert_eq!(row_major_strides(&[2, 3, 4]), vec![12, 4, 1]);
    }

    #[test]
    fn strides_of_scalar() {
        assert_eq!(row_major_strides(&[]), Vec::<usize>::new());
    }

    #[test]
    fn linear_index_matches_manual() {
        assert_eq!(linear_index(&[2, 3, 4], &[1, 2, 3]), 12 + 8 + 3);
        assert_eq!(linear_index(&[5], &[4]), 4);
    }

    #[test]
    fn broadcast_same_shape() {
        assert_eq!(broadcast_shape(&[2, 3], &[2, 3]).unwrap(), vec![2, 3]);
    }

    #[test]
    fn broadcast_scalar_with_matrix() {
        assert_eq!(broadcast_shape(&[], &[4, 5]).unwrap(), vec![4, 5]);
    }

    #[test]
    fn broadcast_row_vector() {
        assert_eq!(broadcast_shape(&[3], &[2, 3]).unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shape(&[2, 1], &[1, 3]).unwrap(), vec![2, 3]);
    }

    #[test]
    fn broadcast_incompatible_fails() {
        assert!(broadcast_shape(&[2, 3], &[4, 3]).is_err());
    }

    #[test]
    fn broadcast_strides_zero_on_expanded_axes() {
        assert_eq!(broadcast_strides(&[3], &[2, 3]), vec![0, 1]);
        assert_eq!(broadcast_strides(&[2, 1], &[2, 3]), vec![1, 0]);
    }

    #[test]
    fn broadcastable_to_checks() {
        assert!(broadcastable_to(&[3], &[2, 3]));
        assert!(broadcastable_to(&[1, 3], &[2, 3]));
        assert!(!broadcastable_to(&[2], &[2, 3]));
        assert!(!broadcastable_to(&[2, 3, 4], &[3, 4]));
    }

    #[test]
    fn num_elements_counts() {
        assert_eq!(num_elements(&[2, 3, 4]), 24);
        assert_eq!(num_elements(&[]), 1);
        assert_eq!(num_elements(&[0, 7]), 0);
    }
}
