//! Descriptive statistics on `f32` slices: moments, Pearson correlation,
//! quantiles and autocovariance. All accumulation happens in `f64`.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f32]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().map(|&x| x as f64).sum::<f64>() / xs.len() as f64
}

/// Population variance (divide by n); 0 for slices shorter than 2.
pub fn variance(xs: &[f32]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|&x| (x as f64 - m).powi(2)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f32]) -> f64 {
    variance(xs).sqrt()
}

/// Population covariance of two equal-length slices.
pub fn covariance(xs: &[f32], ys: &[f32]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "covariance length mismatch");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    xs.iter()
        .zip(ys)
        .map(|(&x, &y)| (x as f64 - mx) * (y as f64 - my))
        .sum::<f64>()
        / xs.len() as f64
}

/// Pearson correlation coefficient (eq. 2 of the paper). Returns 0 when either
/// series is constant, which makes screening degenerate indicators safe.
pub fn pearson(xs: &[f32], ys: &[f32]) -> f64 {
    let sx = std_dev(xs);
    let sy = std_dev(ys);
    if sx < 1e-12 || sy < 1e-12 {
        return 0.0;
    }
    (covariance(xs, ys) / (sx * sy)).clamp(-1.0, 1.0)
}

/// Quantile via linear interpolation between order statistics
/// (the same `linear` rule NumPy defaults to). `q` must lie in `[0, 1]`.
pub fn quantile(xs: &[f32], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile q out of [0,1]");
    assert!(!xs.is_empty(), "quantile of empty slice");
    let mut sorted: Vec<f32> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo] as f64
    } else {
        let frac = pos - lo as f64;
        sorted[lo] as f64 * (1.0 - frac) + sorted[hi] as f64 * frac
    }
}

/// The five-number summary used by a boxplot: (min, q1, median, q3, max).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    pub min: f64,
    pub q1: f64,
    pub median: f64,
    pub q3: f64,
    pub max: f64,
}

/// Boxplot statistics for a slice.
pub fn box_stats(xs: &[f32]) -> BoxStats {
    BoxStats {
        min: quantile(xs, 0.0),
        q1: quantile(xs, 0.25),
        median: quantile(xs, 0.5),
        q3: quantile(xs, 0.75),
        max: quantile(xs, 1.0),
    }
}

/// Biased sample autocovariance sequence `acov[0..=max_lag]` (divide by n),
/// the standard estimator fed into Levinson–Durbin.
pub fn autocovariance(xs: &[f32], max_lag: usize) -> Vec<f64> {
    let n = xs.len();
    assert!(
        max_lag < n,
        "max_lag {max_lag} must be below series length {n}"
    );
    let m = mean(xs);
    (0..=max_lag)
        .map(|lag| {
            (0..n - lag)
                .map(|t| (xs[t] as f64 - m) * (xs[t + lag] as f64 - m))
                .sum::<f64>()
                / n as f64
        })
        .collect()
}

/// Autocorrelation sequence normalised by lag-0 autocovariance.
pub fn autocorrelation(xs: &[f32], max_lag: usize) -> Vec<f64> {
    let acov = autocovariance(xs, max_lag);
    let v = acov[0];
    if v < 1e-15 {
        return vec![0.0; max_lag + 1];
    }
    acov.iter().map(|&c| c / v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_of_known_data() {
        let xs = [2.0f32, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0f32, 2.0, 3.0, 4.0];
        let ys: Vec<f32> = xs.iter().map(|&x| 2.0 * x + 1.0).collect();
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-9);
        let neg: Vec<f32> = xs.iter().map(|&x| -x).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn pearson_independent_near_zero() {
        let xs = [1.0f32, 2.0, 3.0, 4.0];
        let ys = [1.0f32, -1.0, 1.0, -1.0];
        assert!(pearson(&xs, &ys).abs() < 0.5);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0f32, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.5), 2.5);
        assert_eq!(quantile(&xs, 0.25), 1.75);
    }

    #[test]
    fn box_stats_ordering() {
        let xs = [5.0f32, 1.0, 4.0, 2.0, 3.0];
        let b = box_stats(&xs);
        assert_eq!(b.min, 1.0);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.max, 5.0);
        assert!(b.min <= b.q1 && b.q1 <= b.median && b.median <= b.q3 && b.q3 <= b.max);
    }

    #[test]
    fn autocorrelation_of_white_noise_decays() {
        let mut rng = crate::rng::Rng::seed_from(123);
        let xs: Vec<f32> = (0..2000).map(|_| rng.uniform(-0.5, 0.5)).collect();
        let ac = autocorrelation(&xs, 5);
        assert!((ac[0] - 1.0).abs() < 1e-12);
        for &a in &ac[1..] {
            assert!(a.abs() < 0.2, "lagged autocorrelation too high: {a}");
        }
    }

    #[test]
    fn autocovariance_lag0_is_variance() {
        let xs = [2.0f32, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let acov = autocovariance(&xs, 2);
        assert!((acov[0] - variance(&xs)).abs() < 1e-12);
    }

    #[test]
    fn constant_series_autocorrelation_is_zero() {
        let xs = [3.0f32; 10];
        let ac = autocorrelation(&xs, 3);
        assert!(ac.iter().all(|&a| a == 0.0));
    }
}
