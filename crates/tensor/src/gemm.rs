//! Runtime-dispatched f32 GEMM microkernel.
//!
//! Every matmul entry point in [`crate::matmul`] routes through [`gemm_into`],
//! which picks the widest instruction tier the host supports at runtime:
//!
//! * **Fma** — AVX2 + FMA, 4×16 register-tiled microkernel (8 independent
//!   `ymm` accumulator chains) over cache-blocked packed panels of A and B.
//! * **Avx** — the same tiling with separate multiply/add (no contraction),
//!   for AVX-only hosts.
//! * **Scalar** — portable fallback, and the tier every non-x86 target uses.
//!
//! # Bitwise-parity contract
//!
//! Each output element `C[i][j]` is produced by exactly **one** accumulator
//! chain: `acc = 0; for p in 0..k ascending { acc = fused(A[i][p], B[p][j],
//! acc) }`, then a single store (overwrite) or a single add into the existing
//! value (accumulate). `fused` is `f32::mul_add` on the Fma tier (identical
//! per lane to `_mm256_fmadd_ps`) and plain `a * b + acc` on the Avx and
//! Scalar tiers (identical per lane to `_mm256_add_ps(_mm256_mul_ps(..))`).
//! Because the chain never depends on `m`, on packing, on the column-chunk
//! width, or on how rows are partitioned across threads, the following all
//! hold bitwise:
//!
//! * the SIMD path of a tier equals that tier's scalar twin
//!   ([`gemm_scalar_fma`] for Fma, [`gemm_scalar`] for Avx/Scalar) on every
//!   shape, including degenerate and non-tile-multiple ones;
//! * the packed large-`m` path equals the direct small-`m` path, so a
//!   stacked batch of rows equals the same rows computed one at a time;
//! * rayon row-splits and the batch executor's static row partition do not
//!   change results.
//!
//! Under Miri (and on non-x86 targets) the `#[target_feature]` kernels are
//! replaced by raw-pointer scalar twins with identical signatures and
//! chains, following the pattern `autograd::conv_kernels` established, so
//! Miri validates the packing/dispatch plumbing and the twins' memory
//! contract while producing the same bits as native execution.

use std::cell::RefCell;

use rayon::prelude::*;

/// Rows per microtile: one broadcast register feeds MR accumulator rows.
pub const MR: usize = 4;
/// Columns per microtile: two 8-lane `ymm` vectors per row.
pub const NR: usize = 16;

/// Below this many multiply-adds the sequential kernel wins (fork/join and
/// per-thread packing cost dominate); same threshold the old kernel used so
/// the parallel crossover stays comparable across BENCH_infer.json history.
const PAR_THRESHOLD: usize = 64 * 64 * 64;

/// Instruction tier selected by runtime CPU feature detection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Tier {
    /// AVX2 + FMA: fused multiply-add chains (`f32::mul_add` semantics).
    Fma,
    /// AVX without FMA: separate multiply then add per chain step.
    Avx,
    /// Portable scalar fallback (also every non-x86 target).
    Scalar,
}

impl Tier {
    /// Stable lowercase name for reports and journal lines.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Fma => "fma",
            Tier::Avx => "avx",
            Tier::Scalar => "scalar",
        }
    }
}

/// The widest tier the running host supports.
///
/// Under Miri this reports [`Tier::Fma`] so the dispatch plumbing, panel
/// packing, and the raw-pointer scalar twins all execute under the
/// interpreter — mirroring `conv_kernels::avx_available`.
pub fn active_tier() -> Tier {
    #[cfg(miri)]
    {
        Tier::Fma
    }
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            Tier::Fma
        } else if is_x86_feature_detected!("avx") {
            Tier::Avx
        } else {
            Tier::Scalar
        }
    }
    #[cfg(all(not(target_arch = "x86_64"), not(miri)))]
    {
        Tier::Scalar
    }
}

/// `C = A · B` (or `C += A · B` when `accumulate`) over raw row-major
/// slices: `A: [m, k]`, `B: [k, n]`, `out: [m, n]`, dispatched to the
/// widest tier the host supports.
///
/// # Panics
/// Panics if the slice lengths disagree with `m`/`k`/`n`.
pub fn gemm_into(
    da: &[f32],
    db: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    accumulate: bool,
) {
    gemm_with_tier(active_tier(), da, db, out, m, k, n, accumulate);
}

/// [`gemm_into`] with an explicit tier — the seam the parity tests and
/// `bench_infer` use to compare tiers on one machine. Requesting a SIMD
/// tier on a target without the real kernels runs that tier's scalar twin,
/// which produces the same bits.
#[allow(clippy::too_many_arguments)]
pub fn gemm_with_tier(
    tier: Tier,
    da: &[f32],
    db: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    accumulate: bool,
) {
    assert_eq!(da.len(), m * k, "gemm lhs length mismatch");
    assert_eq!(db.len(), k * n, "gemm rhs length mismatch");
    assert_eq!(out.len(), m * n, "gemm out length mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        // An empty inner dimension contributes nothing; overwrite semantics
        // still zero the output. No `+= 0.0` here — that would flip -0.0.
        if !accumulate {
            out.fill(0.0);
        }
        return;
    }
    match tier {
        Tier::Fma => driver_fma(da, db, out, m, k, n, accumulate),
        Tier::Avx => driver_avx(da, db, out, m, k, n, accumulate),
        Tier::Scalar => gemm_scalar(da, db, out, m, k, n, accumulate),
    }
}

/// Scalar twin of the **Fma** tier: one `f32::mul_add` chain per output
/// element in ascending-`p` order — bitwise identical per element to the
/// AVX2+FMA microkernel. This is the reference the parity tests pin the
/// SIMD path against, and the baseline `bench_infer` times speedups from.
pub fn gemm_scalar_fma(
    da: &[f32],
    db: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    accumulate: bool,
) {
    scalar_core(da, db, out, m, k, n, accumulate, |a, b, acc| {
        a.mul_add(b, acc)
    });
}

/// Scalar twin of the **Avx** tier and the `Tier::Scalar` implementation:
/// separate multiply and add per chain step (`acc + a * b`), matching
/// `_mm256_add_ps(_mm256_mul_ps(..))` per lane.
pub fn gemm_scalar(
    da: &[f32],
    db: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    accumulate: bool,
) {
    scalar_core(da, db, out, m, k, n, accumulate, |a, b, acc| acc + a * b);
}

/// Shared body of the two scalar twins: per-element ascending-`p` chains,
/// parameterised over the fused step so both twins stay structurally
/// identical to their vector kernels.
#[allow(clippy::too_many_arguments)]
fn scalar_core(
    da: &[f32],
    db: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    accumulate: bool,
    step: impl Fn(f32, f32, f32) -> f32 + Copy,
) {
    assert_eq!(da.len(), m * k, "gemm lhs length mismatch");
    assert_eq!(db.len(), k * n, "gemm rhs length mismatch");
    assert_eq!(out.len(), m * n, "gemm out length mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !accumulate {
            out.fill(0.0);
        }
        return;
    }
    for (i, out_row) in out.chunks_mut(n).enumerate() {
        let a_row = &da[i * k..(i + 1) * k];
        for (j, o) in out_row.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for (p, &av) in a_row.iter().enumerate() {
                acc = step(av, db[p * n + j], acc);
            }
            *o = if accumulate { *o + acc } else { acc };
        }
    }
}

thread_local! {
    /// Packing scratch reused across calls: `(A panel, packed B)`. Grown
    /// once per thread to the largest shape seen, so steady-state inference
    /// packs without allocating.
    static PACK_SCRATCH: RefCell<(Vec<f32>, Vec<f32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Pack all of B into `NR`-column panels: panel `c` holds, for each `p` in
/// `0..k`, the `NR` floats `B[p][c*NR .. c*NR+NR]` (zero-padded past `n`),
/// so the microkernel streams B contiguously regardless of `n`.
fn pack_b(db: &[f32], scratch: &mut Vec<f32>, k: usize, n: usize) {
    let chunks = n.div_ceil(NR);
    scratch.resize(chunks * k * NR, 0.0);
    for c in 0..chunks {
        let j0 = c * NR;
        let cols = NR.min(n - j0);
        let panel = &mut scratch[c * k * NR..(c + 1) * k * NR];
        for (p, dst) in panel.chunks_mut(NR).enumerate() {
            let src = &db[p * n + j0..p * n + j0 + cols];
            dst[..cols].copy_from_slice(src);
            // Scratch is reused across shapes: re-zero the pad lanes so a
            // previous call's data can't leak into the (discarded) pad
            // accumulators.
            dst[cols..].fill(0.0);
        }
    }
}

/// Pack one `MR`-row block of A k-major: for each `p`, the `MR` values
/// `A[i0..i0+MR][p]` (zero rows past `m`), matching the broadcast order the
/// microkernel consumes.
fn pack_a(da: &[f32], scratch: &mut [f32], i0: usize, rows: usize, k: usize) {
    for (p, dst) in scratch.chunks_mut(MR).enumerate() {
        for (r, d) in dst.iter_mut().enumerate() {
            *d = if r < rows { da[(i0 + r) * k + p] } else { 0.0 };
        }
    }
}

/// Merge a computed 4×16 tile into the output block (rows `0..rows` of
/// `out_rows`, columns `j0..j0+cols`). The merge is the chain's single
/// terminal store/add, shared verbatim by every tier.
fn merge_tile(
    tile: &[f32; MR * NR],
    out_rows: &mut [f32],
    rows: usize,
    cols: usize,
    j0: usize,
    n: usize,
    accumulate: bool,
) {
    for r in 0..rows {
        let dst = &mut out_rows[r * n + j0..r * n + j0 + cols];
        let src = &tile[r * NR..r * NR + cols];
        if accumulate {
            for (o, &t) in dst.iter_mut().zip(src) {
                *o += t;
            }
        } else {
            dst.copy_from_slice(src);
        }
    }
}

/// Generates one dispatch tier's driver: the direct per-row path for
/// `m < MR` (packing B costs as much as the multiply at m=1, the streaming
/// hot path) and the packed-panel path for larger `m`, parallelised over
/// `MR`-row blocks once the FLOP count amortises fork/join. Both paths and
/// both parallel modes produce identical bits (see module docs).
macro_rules! define_driver {
    ($driver:ident, $tile:ident, $row:ident) => {
        #[allow(clippy::too_many_arguments)]
        fn $driver(
            da: &[f32],
            db: &[f32],
            out: &mut [f32],
            m: usize,
            k: usize,
            n: usize,
            accumulate: bool,
        ) {
            if m < MR {
                for (i, out_row) in out.chunks_mut(n).enumerate() {
                    // SAFETY: `da[i*k..]` holds `k` floats (length asserted
                    // by the caller), `db` holds `k*n`, `out_row` holds `n`;
                    // the kernel reads/writes strictly within those bounds.
                    // The Fma/Avx kernels are only compiled on x86_64 and
                    // only reached through `active_tier`/tests after the
                    // matching feature check (`gemm_with_tier` on a host
                    // without them uses the scalar-twin build of `$row`).
                    unsafe {
                        kernels::$row(
                            da[i * k..(i + 1) * k].as_ptr(),
                            db.as_ptr(),
                            out_row.as_mut_ptr(),
                            k,
                            n,
                            accumulate,
                        );
                    }
                }
                return;
            }
            PACK_SCRATCH.with(|cell| {
                let (a_panel, b_pack) = &mut *cell.borrow_mut();
                pack_b(db, b_pack, k, n);
                let b_pack: &[f32] = b_pack;
                if m * n * k >= PAR_THRESHOLD {
                    // Row blocks are disjoint, so a static split is bitwise
                    // neutral; each worker packs its own A panel.
                    out.par_chunks_mut(MR * n)
                        .enumerate()
                        .for_each(|(blk, out_rows)| {
                            let mut a_local = vec![0.0f32; k * MR];
                            let i0 = blk * MR;
                            let rows = MR.min(m - i0);
                            pack_a(da, &mut a_local, i0, rows, k);
                            let mut tile = [0.0f32; MR * NR];
                            for (c, j0) in (0..n).step_by(NR).enumerate() {
                                let cols = NR.min(n - j0);
                                let panel = &b_pack[c * k * NR..(c + 1) * k * NR];
                                // SAFETY: `a_local` holds `k*MR` floats and
                                // `panel` holds `k*NR`; the kernel reads exactly
                                // those and writes exactly `MR*NR` floats into
                                // `tile`. Feature availability as above.
                                unsafe {
                                    kernels::$tile(
                                        a_local.as_ptr(),
                                        panel.as_ptr(),
                                        k,
                                        tile.as_mut_ptr(),
                                    );
                                }
                                merge_tile(&tile, out_rows, rows, cols, j0, n, accumulate);
                            }
                        });
                } else {
                    a_panel.resize(k * MR, 0.0);
                    for (blk, out_rows) in out.chunks_mut(MR * n).enumerate() {
                        let i0 = blk * MR;
                        let rows = MR.min(m - i0);
                        pack_a(da, a_panel, i0, rows, k);
                        let mut tile = [0.0f32; MR * NR];
                        for (c, j0) in (0..n).step_by(NR).enumerate() {
                            let cols = NR.min(n - j0);
                            let panel = &b_pack[c * k * NR..(c + 1) * k * NR];
                            // SAFETY: identical bounds argument to the
                            // parallel arm above.
                            unsafe {
                                kernels::$tile(
                                    a_panel.as_ptr(),
                                    panel.as_ptr(),
                                    k,
                                    tile.as_mut_ptr(),
                                );
                            }
                            merge_tile(&tile, out_rows, rows, cols, j0, n, accumulate);
                        }
                    }
                }
            });
        }
    };
}

define_driver!(driver_fma, tile_fma, row_fma);
define_driver!(driver_avx, tile_avx, row_avx);

/// The per-tier microkernels. Real `#[target_feature]` implementations on
/// native x86_64; raw-pointer scalar twins (same signatures, same chains)
/// under Miri and on every other architecture.
#[cfg(all(target_arch = "x86_64", not(miri)))]
mod kernels {
    use super::{MR, NR};
    use core::arch::x86_64::*;

    /// Generates one tier's `(tile, row)` kernel pair. `$madd` fuses one
    /// chain step on 8 lanes; `$smadd` is its exact scalar-lane equivalent,
    /// used for the sub-8-column tail so every element of a row shares the
    /// tier's chain semantics.
    macro_rules! define_kernels {
        ($tile:ident, $row:ident, $madd:ident, $smadd:ident, $($feat:literal),+) => {
            /// Packed 4×16 microtile: `tile[r][c] = Σp ap[p*MR+r] * bp[p*NR+c]`
            /// as one fused chain per element, kept in 8 `ymm` accumulators.
            ///
            /// # Safety
            /// `ap` must be valid for `k*MR` reads, `bp` for `k*NR` reads,
            /// `tile` for `MR*NR` writes, and the CPU must support this
            /// tier's features (guaranteed by `active_tier` dispatch or an
            /// explicit caller check).
            #[target_feature($(enable = $feat),+)]
            pub unsafe fn $tile(ap: *const f32, bp: *const f32, k: usize, tile: *mut f32) {
                // SAFETY: all pointer arithmetic below stays inside the
                // ranges the fn contract guarantees: `ap` reads index
                // `p*MR + r` with `p < k`, `r < MR`; `bp` reads 8-lane
                // vectors at `p*NR` and `p*NR + 8` (NR == 16); `tile`
                // writes rows `r*NR` and `r*NR + 8` for `r < MR`.
                unsafe {
                    let mut acc = [[_mm256_setzero_ps(); 2]; MR];
                    for p in 0..k {
                        let b0 = _mm256_loadu_ps(bp.add(p * NR));
                        let b1 = _mm256_loadu_ps(bp.add(p * NR + 8));
                        for (r, acc_r) in acc.iter_mut().enumerate() {
                            let a = _mm256_set1_ps(*ap.add(p * MR + r));
                            acc_r[0] = $madd!(a, b0, acc_r[0]);
                            acc_r[1] = $madd!(a, b1, acc_r[1]);
                        }
                    }
                    for (r, acc_r) in acc.iter().enumerate() {
                        _mm256_storeu_ps(tile.add(r * NR), acc_r[0]);
                        _mm256_storeu_ps(tile.add(r * NR + 8), acc_r[1]);
                    }
                }
            }

            /// Direct (unpacked) single-row kernel for small `m`:
            /// `out[j] (+)= Σp a_row[p] * db[p*n + j]`, streaming B rows
            /// in-place. 16-wide main loop, 8-wide then scalar tails — the
            /// per-element chain is identical across all three widths.
            ///
            /// # Safety
            /// `a_row` must be valid for `k` reads, `db` for `k*n` reads,
            /// `out_row` for `n` reads/writes, with CPU features as for the
            /// tile kernel.
            #[target_feature($(enable = $feat),+)]
            pub unsafe fn $row(
                a_row: *const f32,
                db: *const f32,
                out_row: *mut f32,
                k: usize,
                n: usize,
                accumulate: bool,
            ) {
                // SAFETY: `j` only reaches offsets where the full vector
                // (or scalar) access fits inside `n`, and every B access is
                // `p*n + j + lanes <= k*n`; bounds follow from the fn
                // contract.
                unsafe {
                    let mut j = 0usize;
                    while j + NR <= n {
                        let mut acc0 = _mm256_setzero_ps();
                        let mut acc1 = _mm256_setzero_ps();
                        for p in 0..k {
                            let a = _mm256_set1_ps(*a_row.add(p));
                            acc0 = $madd!(a, _mm256_loadu_ps(db.add(p * n + j)), acc0);
                            acc1 = $madd!(a, _mm256_loadu_ps(db.add(p * n + j + 8)), acc1);
                        }
                        if accumulate {
                            acc0 = _mm256_add_ps(_mm256_loadu_ps(out_row.add(j)), acc0);
                            acc1 = _mm256_add_ps(_mm256_loadu_ps(out_row.add(j + 8)), acc1);
                        }
                        _mm256_storeu_ps(out_row.add(j), acc0);
                        _mm256_storeu_ps(out_row.add(j + 8), acc1);
                        j += NR;
                    }
                    while j + 8 <= n {
                        let mut acc = _mm256_setzero_ps();
                        for p in 0..k {
                            let a = _mm256_set1_ps(*a_row.add(p));
                            acc = $madd!(a, _mm256_loadu_ps(db.add(p * n + j)), acc);
                        }
                        if accumulate {
                            acc = _mm256_add_ps(_mm256_loadu_ps(out_row.add(j)), acc);
                        }
                        _mm256_storeu_ps(out_row.add(j), acc);
                        j += 8;
                    }
                    while j < n {
                        let mut acc = 0.0f32;
                        // Spelled `acc = acc + a*b` (not `+=`) so the macro
                        // expansion matches the twin's chain token-for-token.
                        #[allow(clippy::assign_op_pattern)]
                        for p in 0..k {
                            acc = $smadd!(*a_row.add(p), *db.add(p * n + j), acc);
                        }
                        let o = out_row.add(j);
                        *o = if accumulate { *o + acc } else { acc };
                        j += 1;
                    }
                }
            }
        };
    }

    macro_rules! madd_fma {
        ($a:expr, $b:expr, $c:expr) => {
            _mm256_fmadd_ps($a, $b, $c)
        };
    }
    macro_rules! madd_avx {
        ($a:expr, $b:expr, $c:expr) => {
            _mm256_add_ps($c, _mm256_mul_ps($a, $b))
        };
    }
    macro_rules! smadd_fma {
        ($a:expr, $b:expr, $c:expr) => {
            ($a).mul_add($b, $c)
        };
    }
    macro_rules! smadd_avx {
        ($a:expr, $b:expr, $c:expr) => {
            $c + $a * $b
        };
    }

    define_kernels!(tile_fma, row_fma, madd_fma, smadd_fma, "avx2", "fma");
    define_kernels!(tile_avx, row_avx, madd_avx, smadd_avx, "avx");
}

/// Raw-pointer scalar twins for Miri and non-x86 targets: same signatures,
/// same per-element chains as the vector kernels, so Miri validates the
/// exact memory contract the `# Safety` sections claim and every target
/// computes the same bits.
#[cfg(any(not(target_arch = "x86_64"), miri))]
mod kernels {
    use super::{MR, NR};

    macro_rules! define_twins {
        ($tile:ident, $row:ident, $smadd:ident) => {
            /// Scalar twin of the packed 4×16 microtile (see the native
            /// kernel for the shared contract).
            ///
            /// # Safety
            /// Same contract as the native kernel: `ap` valid for `k*MR`
            /// reads, `bp` for `k*NR` reads, `tile` for `MR*NR` writes.
            pub unsafe fn $tile(ap: *const f32, bp: *const f32, k: usize, tile: *mut f32) {
                for r in 0..MR {
                    for c in 0..NR {
                        let mut acc = 0.0f32;
                        for p in 0..k {
                            // SAFETY: `p < k`, `r < MR`, `c < NR` keep both
                            // reads inside the contract's ranges.
                            unsafe {
                                acc = $smadd!(*ap.add(p * MR + r), *bp.add(p * NR + c), acc);
                            }
                        }
                        // SAFETY: `r*NR + c < MR*NR`, within the contract's
                        // writable range.
                        unsafe {
                            *tile.add(r * NR + c) = acc;
                        }
                    }
                }
            }

            /// Scalar twin of the direct row kernel. Chunk widths don't
            /// affect per-element chains, so one scalar loop over `j`
            /// reproduces the vector kernel's bits exactly.
            ///
            /// # Safety
            /// Same contract as the native kernel: `a_row` valid for `k`
            /// reads, `db` for `k*n` reads, `out_row` for `n` reads/writes.
            pub unsafe fn $row(
                a_row: *const f32,
                db: *const f32,
                out_row: *mut f32,
                k: usize,
                n: usize,
                accumulate: bool,
            ) {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for p in 0..k {
                        // SAFETY: `p < k` and `j < n` bound both reads per
                        // the contract.
                        unsafe {
                            acc = $smadd!(*a_row.add(p), *db.add(p * n + j), acc);
                        }
                    }
                    // SAFETY: `j < n` bounds the read-modify-write.
                    unsafe {
                        let o = out_row.add(j);
                        *o = if accumulate { *o + acc } else { acc };
                    }
                }
            }
        };
    }

    macro_rules! smadd_fma {
        ($a:expr, $b:expr, $c:expr) => {
            ($a).mul_add($b, $c)
        };
    }
    macro_rules! smadd_avx {
        ($a:expr, $b:expr, $c:expr) => {
            $c + $a * $b
        };
    }

    define_twins!(tile_fma, row_fma, smadd_fma);
    define_twins!(tile_avx, row_avx, smadd_avx);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn rand_vec(len: usize, rng: &mut Rng) -> Vec<f32> {
        (0..len).map(|_| rng.normal(0.0, 1.0)).collect()
    }

    type GemmFn = fn(&[f32], &[f32], &mut [f32], usize, usize, usize, bool);

    fn twin_for(tier: Tier) -> GemmFn {
        match tier {
            Tier::Fma => gemm_scalar_fma,
            Tier::Avx | Tier::Scalar => gemm_scalar,
        }
    }

    /// Every tier must match its scalar twin bitwise on shapes that cross
    /// every code path: direct vs packed, full and partial tiles, both
    /// merge modes.
    #[test]
    fn tiers_match_twins_bitwise() {
        let shapes = [
            (0usize, 3usize, 4usize),
            (3, 0, 4),
            (3, 4, 0),
            (1, 1, 1),
            (1, 7, 5),
            (1, 30, 16),
            (2, 9, 17),
            (3, 64, 8),
            (4, 16, 16),
            (5, 13, 19),
            (7, 31, 33),
            (16, 24, 48),
            (30, 240, 64),
        ];
        let mut rng = Rng::seed_from(42);
        for &(m, k, n) in &shapes {
            let a = rand_vec(m * k, &mut rng);
            let b = rand_vec(k * n, &mut rng);
            let seed_out = rand_vec(m * n, &mut rng);
            for tier in [Tier::Fma, Tier::Avx, Tier::Scalar] {
                for accumulate in [false, true] {
                    let mut got = seed_out.clone();
                    let mut want = seed_out.clone();
                    gemm_with_tier(tier, &a, &b, &mut got, m, k, n, accumulate);
                    twin_for(tier)(&a, &b, &mut want, m, k, n, accumulate);
                    for (g, w) in got.iter().zip(&want) {
                        assert_eq!(
                            g.to_bits(),
                            w.to_bits(),
                            "tier {tier:?} diverged from twin at ({m},{k},{n}) acc={accumulate}"
                        );
                    }
                }
            }
        }
    }

    /// The dispatch entry point must agree with whichever twin matches the
    /// detected tier — the bridge between `gemm_into` callers and the
    /// per-tier parity above.
    #[test]
    fn dispatch_matches_active_tier_twin() {
        let mut rng = Rng::seed_from(7);
        let (m, k, n) = (9, 21, 27);
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let mut got = vec![0.0f32; m * n];
        let mut want = vec![0.0f32; m * n];
        gemm_into(&a, &b, &mut got, m, k, n, false);
        twin_for(active_tier())(&a, &b, &mut want, m, k, n, false);
        assert_eq!(
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    /// Stacked rows must equal the same rows computed one at a time — the
    /// property the batch executor and shard batching rely on.
    #[test]
    fn row_partition_is_bitwise_neutral() {
        let mut rng = Rng::seed_from(11);
        let (m, k, n) = (13, 40, 24);
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let mut stacked = vec![0.0f32; m * n];
        gemm_into(&a, &b, &mut stacked, m, k, n, false);
        for i in 0..m {
            let mut row = vec![0.0f32; n];
            gemm_into(&a[i * k..(i + 1) * k], &b, &mut row, 1, k, n, false);
            assert_eq!(
                row.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                stacked[i * n..(i + 1) * n]
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "row {i} differs between stacked and per-row gemm"
            );
        }
    }

    /// k == 0 must leave accumulate targets untouched (incl. -0.0 bits) and
    /// zero overwrite targets.
    #[test]
    fn empty_inner_dim_preserves_accumulator_bits() {
        for tier in [Tier::Fma, Tier::Avx, Tier::Scalar] {
            let mut acc = vec![-0.0f32, 1.5];
            gemm_with_tier(tier, &[], &[], &mut acc, 2, 0, 1, true);
            assert_eq!(acc[0].to_bits(), (-0.0f32).to_bits());
            assert_eq!(acc[1], 1.5);
            let mut over = vec![-0.0f32, 1.5];
            gemm_with_tier(tier, &[], &[], &mut over, 2, 0, 1, false);
            assert_eq!(over, vec![0.0, 0.0]);
        }
    }

    /// The rayon split above PAR_THRESHOLD must not change bits relative to
    /// the sequential packed path (exercised via a single-row-at-a-time
    /// reference built from the same tier).
    #[test]
    #[cfg_attr(miri, ignore = "above-threshold shapes are too slow under miri")]
    fn parallel_path_is_bitwise_stable() {
        let mut rng = Rng::seed_from(13);
        let (m, k, n) = (80, 70, 64); // 80*70*64 > PAR_THRESHOLD
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let mut par = vec![0.0f32; m * n];
        gemm_into(&a, &b, &mut par, m, k, n, false);
        let mut twin = vec![0.0f32; m * n];
        twin_for(active_tier())(&a, &b, &mut twin, m, k, n, false);
        assert_eq!(
            par.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            twin.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }
}
