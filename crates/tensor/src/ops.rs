//! Elementwise tensor arithmetic with NumPy-style broadcasting.
//!
//! The binary kernels special-case the two layouts that dominate neural-net
//! workloads — identical shapes and bias-style row broadcasts — and fall back
//! to a generic strided odometer walk for everything else.

use crate::shape::{self, ShapeError};
use crate::tensor::Tensor;

/// Apply `f` elementwise to two broadcast-compatible tensors.
pub fn zip_broadcast(
    a: &Tensor,
    b: &Tensor,
    f: impl Fn(f32, f32) -> f32,
) -> Result<Tensor, ShapeError> {
    if a.shape() == b.shape() {
        let data = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(&x, &y)| f(x, y))
            .collect();
        return Ok(Tensor::from_vec(data, a.shape()));
    }
    let out_shape = shape::broadcast_shape(a.shape(), b.shape())?;
    let sa = shape::broadcast_strides(a.shape(), &out_shape);
    let sb = shape::broadcast_strides(b.shape(), &out_shape);
    let n = shape::num_elements(&out_shape);
    let mut out = vec![0.0f32; n];
    let mut index = vec![0usize; out_shape.len()];
    let (da, db) = (a.as_slice(), b.as_slice());
    for slot in out.iter_mut() {
        let mut ia = 0usize;
        let mut ib = 0usize;
        for (axis, &i) in index.iter().enumerate() {
            ia += i * sa[axis];
            ib += i * sb[axis];
        }
        *slot = f(da[ia], db[ib]);
        for axis in (0..out_shape.len()).rev() {
            index[axis] += 1;
            if index[axis] < out_shape[axis] {
                break;
            }
            index[axis] = 0;
        }
    }
    Ok(Tensor::from_vec(out, &out_shape))
}

macro_rules! binary_op {
    ($name:ident, $f:expr, $doc:literal) => {
        #[doc = $doc]
        ///
        /// # Panics
        /// Panics when the shapes are not broadcast-compatible; use
        /// [`zip_broadcast`] for a fallible variant.
        pub fn $name(a: &Tensor, b: &Tensor) -> Tensor {
            zip_broadcast(a, b, $f).expect(concat!(stringify!($name), ": incompatible shapes"))
        }
    };
}

binary_op!(add, |x, y| x + y, "Elementwise sum with broadcasting.");
binary_op!(
    sub,
    |x, y| x - y,
    "Elementwise difference with broadcasting."
);
binary_op!(
    mul,
    |x, y| x * y,
    "Elementwise (Hadamard) product with broadcasting."
);
binary_op!(div, |x, y| x / y, "Elementwise quotient with broadcasting.");
binary_op!(
    maximum,
    |x: f32, y: f32| x.max(y),
    "Elementwise maximum with broadcasting."
);
binary_op!(
    minimum,
    |x: f32, y: f32| x.min(y),
    "Elementwise minimum with broadcasting."
);

/// `a + s` for a scalar `s`.
pub fn add_scalar(a: &Tensor, s: f32) -> Tensor {
    a.map(|x| x + s)
}

/// `a * s` for a scalar `s`.
pub fn scale(a: &Tensor, s: f32) -> Tensor {
    a.map(|x| x * s)
}

/// Elementwise negation.
pub fn neg(a: &Tensor) -> Tensor {
    a.map(|x| -x)
}

/// Elementwise natural exponential.
pub fn exp(a: &Tensor) -> Tensor {
    a.map(f32::exp)
}

/// Elementwise natural logarithm.
pub fn ln(a: &Tensor) -> Tensor {
    a.map(f32::ln)
}

/// Elementwise square root.
pub fn sqrt(a: &Tensor) -> Tensor {
    a.map(f32::sqrt)
}

/// Elementwise square.
pub fn square(a: &Tensor) -> Tensor {
    a.map(|x| x * x)
}

/// Elementwise absolute value.
pub fn abs(a: &Tensor) -> Tensor {
    a.map(f32::abs)
}

/// Rectified linear unit: `max(x, 0)`.
pub fn relu(a: &Tensor) -> Tensor {
    a.map(|x| x.max(0.0))
}

/// Hyperbolic tangent.
pub fn tanh(a: &Tensor) -> Tensor {
    a.map(f32::tanh)
}

/// Logistic sigmoid `1 / (1 + e^-x)`, numerically stable on both tails.
pub fn sigmoid(a: &Tensor) -> Tensor {
    a.map(stable_sigmoid)
}

#[inline]
pub(crate) fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        let z = (-x).exp();
        1.0 / (1.0 + z)
    } else {
        let z = x.exp();
        z / (1.0 + z)
    }
}

/// Clamp every element into `[lo, hi]`.
pub fn clamp(a: &Tensor, lo: f32, hi: f32) -> Tensor {
    a.map(|x| x.clamp(lo, hi))
}

/// Fused multiply-accumulate: `out += alpha * a`, shapes must match exactly.
pub fn axpy(out: &mut Tensor, alpha: f32, a: &Tensor) {
    assert_eq!(out.shape(), a.shape(), "axpy shape mismatch");
    for (o, &x) in out.as_mut_slice().iter_mut().zip(a.as_slice()) {
        *o += alpha * x;
    }
}

/// Dot product of two 1-D tensors, accumulated in f64 for accuracy.
pub fn dot(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(a.shape(), b.shape(), "dot shape mismatch");
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| x as f64 * y as f64)
        .sum::<f64>() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32], s: &[usize]) -> Tensor {
        Tensor::from_vec(v.to_vec(), s)
    }

    #[test]
    fn same_shape_arithmetic() {
        let a = t(&[1.0, 2.0, 3.0], &[3]);
        let b = t(&[4.0, 5.0, 6.0], &[3]);
        assert_eq!(add(&a, &b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(sub(&b, &a).as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(mul(&a, &b).as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(div(&b, &a).as_slice(), &[4.0, 2.5, 2.0]);
    }

    #[test]
    fn row_broadcast_matches_manual() {
        let m = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let row = t(&[10.0, 20.0, 30.0], &[3]);
        assert_eq!(
            add(&m, &row).as_slice(),
            &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]
        );
    }

    #[test]
    fn col_broadcast_matches_manual() {
        let m = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let col = t(&[10.0, 100.0], &[2, 1]);
        assert_eq!(
            mul(&m, &col).as_slice(),
            &[10.0, 20.0, 30.0, 400.0, 500.0, 600.0]
        );
    }

    #[test]
    fn scalar_broadcast() {
        let m = t(&[1.0, 2.0], &[2]);
        let s = Tensor::scalar(3.0);
        assert_eq!(mul(&m, &s).as_slice(), &[3.0, 6.0]);
        assert_eq!(mul(&s, &m).as_slice(), &[3.0, 6.0]);
    }

    #[test]
    fn incompatible_shapes_error() {
        let a = t(&[1.0, 2.0], &[2]);
        let b = t(&[1.0, 2.0, 3.0], &[3]);
        assert!(zip_broadcast(&a, &b, |x, y| x + y).is_err());
    }

    #[test]
    fn unary_ops() {
        let a = t(&[-1.0, 0.0, 4.0], &[3]);
        assert_eq!(relu(&a).as_slice(), &[0.0, 0.0, 4.0]);
        assert_eq!(neg(&a).as_slice(), &[1.0, 0.0, -4.0]);
        assert_eq!(abs(&a).as_slice(), &[1.0, 0.0, 4.0]);
        assert_eq!(square(&a).as_slice(), &[1.0, 0.0, 16.0]);
        assert_eq!(sqrt(&t(&[4.0, 9.0], &[2])).as_slice(), &[2.0, 3.0]);
        assert_eq!(clamp(&a, -0.5, 2.0).as_slice(), &[-0.5, 0.0, 2.0]);
        assert_eq!(add_scalar(&a, 1.0).as_slice(), &[0.0, 1.0, 5.0]);
        assert_eq!(scale(&a, 2.0).as_slice(), &[-2.0, 0.0, 8.0]);
    }

    #[test]
    fn sigmoid_is_stable_on_extremes() {
        let a = t(&[-100.0, 0.0, 100.0], &[3]);
        let s = sigmoid(&a);
        assert!(s.all_finite());
        assert!((s.as_slice()[0] - 0.0).abs() < 1e-6);
        assert!((s.as_slice()[1] - 0.5).abs() < 1e-6);
        assert!((s.as_slice()[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn tanh_exp_ln_roundtrip() {
        let a = t(&[0.5, 1.0, 2.0], &[3]);
        let r = ln(&exp(&a));
        assert!(r.allclose(&a, 1e-5));
        assert!((tanh(&t(&[0.0], &[1])).as_slice()[0]).abs() < 1e-7);
    }

    #[test]
    fn axpy_and_dot() {
        let mut out = t(&[1.0, 1.0], &[2]);
        axpy(&mut out, 2.0, &t(&[3.0, 4.0], &[2]));
        assert_eq!(out.as_slice(), &[7.0, 9.0]);
        assert_eq!(
            dot(&t(&[1.0, 2.0, 3.0], &[3]), &t(&[4.0, 5.0, 6.0], &[3])),
            32.0
        );
    }

    #[test]
    fn maximum_minimum() {
        let a = t(&[1.0, 5.0], &[2]);
        let b = t(&[3.0, 2.0], &[2]);
        assert_eq!(maximum(&a, &b).as_slice(), &[3.0, 5.0]);
        assert_eq!(minimum(&a, &b).as_slice(), &[1.0, 2.0]);
    }
}
