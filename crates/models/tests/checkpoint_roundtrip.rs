//! Checkpoint round-trip guarantees for the neural forecasters: a model
//! saved to disk and loaded into a fresh process state must predict
//! bit-identically, and corrupted or truncated files must be rejected
//! with an error — never a panic or a silently wrong model.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use models::{
    load_model, Forecaster, LstmConfig, LstmForecaster, NeuralTrainSpec, RptcnConfig,
    RptcnForecaster,
};
use proptest::prelude::*;
use timeseries::{make_windows, TimeSeriesFrame, WindowedDataset};

static NEXT_FILE: AtomicU64 = AtomicU64::new(0);

/// A unique scratch path per call, cleaned up by the caller.
fn scratch_path(tag: &str) -> PathBuf {
    let n = NEXT_FILE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "rptcn-ckpt-test-{}-{tag}-{n}.bin",
        std::process::id()
    ))
}

fn dataset() -> WindowedDataset {
    let series: Vec<f32> = (0..300)
        .map(|i| 0.5 + 0.35 * (i as f32 * 0.2).sin())
        .collect();
    let frame = TimeSeriesFrame::from_columns(&[("cpu", series)]).unwrap();
    make_windows(&frame, "cpu", 16, 1).unwrap()
}

fn quick_spec() -> NeuralTrainSpec {
    NeuralTrainSpec {
        epochs: 3,
        ..Default::default()
    }
}

fn trained_rptcn(ds: &WindowedDataset) -> RptcnForecaster {
    let mut model = RptcnForecaster::new(RptcnConfig {
        channels: 6,
        levels: 2,
        fc_dim: 12,
        dropout: 0.1,
        spec: quick_spec(),
        ..Default::default()
    });
    model.fit(ds, None);
    model
}

fn trained_lstm(ds: &WindowedDataset) -> LstmForecaster {
    let mut model = LstmForecaster::new(LstmConfig {
        hidden: 12,
        layers: 1,
        spec: quick_spec(),
        ..Default::default()
    });
    model.fit(ds, None);
    model
}

/// Bitwise equality — `==` on floats would also pass for values that are
/// merely close, and NaNs would hide differences.
fn assert_bit_identical(a: &[f32], b: &[f32]) {
    assert_eq!(a.len(), b.len(), "prediction lengths differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "prediction {i} differs after restore: {x} vs {y}"
        );
    }
}

#[test]
fn rptcn_save_load_predicts_bit_identically() {
    let ds = dataset();
    let model = trained_rptcn(&ds);
    let before = model.predict(&ds.x).into_vec();

    let path = scratch_path("rptcn");
    model.save(&path).unwrap();
    // A fresh, unfitted forecaster with a *different* configured shape:
    // load_state must rebuild the architecture from the checkpoint alone.
    let mut restored = RptcnForecaster::new(RptcnConfig {
        channels: 32,
        levels: 5,
        ..Default::default()
    });
    restored.load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let after = restored.predict(&ds.x).into_vec();
    assert_bit_identical(&before, &after);
}

#[test]
fn lstm_save_load_predicts_bit_identically() {
    let ds = dataset();
    let model = trained_lstm(&ds);
    let before = model.predict(&ds.x).into_vec();

    let path = scratch_path("lstm");
    model.save(&path).unwrap();
    let mut restored = LstmForecaster::new(LstmConfig::default());
    restored.load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let after = restored.predict(&ds.x).into_vec();
    assert_bit_identical(&before, &after);
}

#[test]
fn cross_architecture_load_is_rejected() {
    let ds = dataset();
    let lstm = trained_lstm(&ds);
    let path = scratch_path("cross");
    lstm.save(&path).unwrap();
    let mut rptcn = RptcnForecaster::paper_default();
    let err = rptcn.load(&path).unwrap_err();
    std::fs::remove_file(&path).ok();
    assert!(
        err.0.contains("LSTM"),
        "error should name the mismatched architecture: {}",
        err.0
    );
}

#[test]
fn corrupted_header_is_rejected() {
    let ds = dataset();
    let model = trained_lstm(&ds);
    let path = scratch_path("header");
    model.save(&path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[0] ^= 0xFF; // break the magic
    std::fs::write(&path, &bytes).unwrap();
    let err = load_model(&path).unwrap_err();
    std::fs::remove_file(&path).ok();
    assert!(err.0.contains("magic"), "unexpected error: {}", err.0);
}

#[test]
fn truncated_file_is_rejected_at_every_cut() {
    let ds = dataset();
    let model = trained_lstm(&ds);
    let path = scratch_path("trunc");
    model.save(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();

    for cut in [
        0,
        1,
        4,
        8,
        bytes.len() / 4,
        bytes.len() / 2,
        bytes.len() - 1,
    ] {
        let path = scratch_path("trunc-cut");
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let result = load_model(&path);
        std::fs::remove_file(&path).ok();
        assert!(result.is_err(), "truncation at {cut} bytes was accepted");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any single flipped byte either fails to load or loads a model whose
    /// state is self-consistent enough to predict — never a panic.
    #[test]
    fn single_byte_corruption_never_panics(pos_frac in 0.0f64..1.0, flip in 1u8..=255) {
        let ds = dataset();
        let model = trained_lstm(&ds);
        let path = scratch_path("prop");
        model.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();

        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= flip;
        let path = scratch_path("prop-flipped");
        std::fs::write(&path, &bytes).unwrap();
        let mut restored = LstmForecaster::new(LstmConfig::default());
        if restored.load(&path).is_ok() {
            // The flip landed in weight data: the model must still run.
            let pred = restored.predict(&ds.x);
            prop_assert_eq!(pred.shape()[0], ds.x.shape()[0]);
        }
        std::fs::remove_file(&path).ok();
    }
}
