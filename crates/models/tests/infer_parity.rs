//! Parity guarantees for the tape-free inference engine: every forecaster's
//! `predict` (arena-based, no tape) must match the taped reference path
//! within 1e-5, the streaming RPTCN engine must match batch inference over
//! the full pushed history, and batched inputs must match row-at-a-time
//! inference exactly.

use models::{
    AttentionKind, CnnLstmConfig, CnnLstmForecaster, Forecaster, GruConfig, GruForecaster,
    LstmConfig, LstmForecaster, NeuralTrainSpec, RptcnConfig, RptcnForecaster, StreamingRptcn,
    TcnConfig, TcnForecaster,
};
use proptest::prelude::*;
use tensor::Tensor;
use timeseries::{make_windows, TimeSeriesFrame, WindowedDataset};

fn dataset(window: usize) -> WindowedDataset {
    let n = 260;
    let cpu: Vec<f32> = (0..n)
        .map(|i| 0.5 + 0.3 * (i as f32 * 0.23).sin() + 0.05 * ((i % 17) as f32 / 17.0))
        .collect();
    let mem: Vec<f32> = (0..n)
        .map(|i| 0.4 + 0.2 * (i as f32 * 0.11).cos())
        .collect();
    let frame = TimeSeriesFrame::from_columns(&[("cpu", cpu), ("mem", mem)]).unwrap();
    make_windows(&frame, "cpu", window, 1).unwrap()
}

fn quick_spec() -> NeuralTrainSpec {
    NeuralTrainSpec {
        epochs: 2,
        ..Default::default()
    }
}

fn assert_close(tape_free: &Tensor, taped: &Tensor, what: &str) {
    assert_eq!(tape_free.shape(), taped.shape(), "{what}: shape mismatch");
    let worst = tape_free
        .as_slice()
        .iter()
        .zip(taped.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    assert!(
        worst <= 1e-5,
        "{what}: tape-free diverged from taped path by {worst}"
    );
}

#[test]
fn rptcn_every_ablation_variant_matches_taped_path() {
    let ds = dataset(16);
    let variants = [
        (true, true, AttentionKind::Feature),
        (true, false, AttentionKind::Feature),
        (false, true, AttentionKind::Feature),
        (false, false, AttentionKind::Feature),
        (true, true, AttentionKind::Temporal),
    ];
    for (use_fc, use_attention, attention) in variants {
        let mut model = RptcnForecaster::new(RptcnConfig {
            channels: 6,
            levels: 2,
            fc_dim: 12,
            use_fc,
            use_attention,
            attention,
            spec: quick_spec(),
            ..Default::default()
        });
        model.fit(&ds, None);
        assert_close(
            &model.predict(&ds.x),
            &model.predict_taped(&ds.x),
            &format!("RPTCN fc={use_fc} attn={use_attention} {attention:?}"),
        );
    }
}

#[test]
fn untrained_rptcn_at_paper_config_matches_taped_path() {
    // Paper defaults (channels 16, levels 4, kernel 3) without paying for a
    // fit: init_untrained perturbs every parameter, including the
    // zero-initialised head, so the full forward path is exercised.
    let mut model = RptcnForecaster::paper_default();
    model.init_untrained(2, 1);
    let mut rng = tensor::Rng::seed_from(11);
    let x = Tensor::rand_normal(&[5, 30, 2], 0.5, 0.2, &mut rng);
    assert_close(
        &model.predict(&x),
        &model.predict_taped(&x),
        "untrained paper-config RPTCN",
    );
}

#[test]
fn tcn_lstm_gru_cnn_lstm_match_taped_path() {
    let ds = dataset(12);

    let mut tcn = TcnForecaster::new(TcnConfig {
        channels: 6,
        levels: 2,
        spec: quick_spec(),
        ..Default::default()
    });
    tcn.fit(&ds, None);
    assert_close(&tcn.predict(&ds.x), &tcn.predict_taped(&ds.x), "TCN");

    let mut lstm = LstmForecaster::new(LstmConfig {
        hidden: 10,
        layers: 2,
        spec: quick_spec(),
        ..Default::default()
    });
    lstm.fit(&ds, None);
    assert_close(&lstm.predict(&ds.x), &lstm.predict_taped(&ds.x), "LSTM");

    let mut gru = GruForecaster::new(GruConfig {
        hidden: 10,
        layers: 2,
        spec: quick_spec(),
        ..Default::default()
    });
    gru.fit(&ds, None);
    assert_close(&gru.predict(&ds.x), &gru.predict_taped(&ds.x), "GRU");

    let mut cnn = CnnLstmForecaster::new(CnnLstmConfig {
        conv_channels: 6,
        lstm_hidden: 10,
        spec: quick_spec(),
        ..Default::default()
    });
    cnn.fit(&ds, None);
    assert_close(&cnn.predict(&ds.x), &cnn.predict_taped(&ds.x), "CNN-LSTM");
}

#[test]
fn batched_predict_matches_row_at_a_time() {
    // The serve layer stacks same-shape entities into one call; per-row
    // kernels make the batched result exactly equal to n batch-1 calls.
    let mut model = RptcnForecaster::new(RptcnConfig {
        channels: 8,
        levels: 2,
        fc_dim: 12,
        spec: quick_spec(),
        ..Default::default()
    });
    model.init_untrained(3, 2);
    let mut rng = tensor::Rng::seed_from(5);
    let x = Tensor::rand_normal(&[7, 20, 3], 0.5, 0.3, &mut rng);
    let batched = model.predict(&x);
    for row in 0..7 {
        let one = Tensor::from_vec(
            x.as_slice()[row * 20 * 3..(row + 1) * 20 * 3].to_vec(),
            &[1, 20, 3],
        );
        let single = model.predict(&one);
        assert_eq!(
            single.as_slice(),
            &batched.as_slice()[row * 2..(row + 1) * 2],
            "row {row} of batched forecast differs from its batch-1 call"
        );
    }
}

fn streaming_model(features: usize) -> RptcnForecaster {
    let mut model = RptcnForecaster::new(RptcnConfig {
        channels: 8,
        levels: 3,
        fc_dim: 12,
        ..Default::default()
    });
    model.init_untrained(features, 1);
    model
}

#[test]
fn streaming_push_matches_batch_forward_past_receptive_field() {
    // Stream far beyond the receptive field (levels 3, kernel 3 → 29) so
    // the rings wrap many times; every push must still match the batch
    // forward over the full history pushed so far.
    let features = 2;
    let model = streaming_model(features);
    let mut stream = StreamingRptcn::new(&model).unwrap();
    let mut rng = tensor::Rng::seed_from(42);
    let total = 80;
    let history = Tensor::rand_normal(&[1, total, features], 0.5, 0.25, &mut rng);
    for n in 1..=total {
        let sample = &history.as_slice()[(n - 1) * features..n * features];
        let streamed = stream.push(sample).to_vec();
        let prefix = Tensor::from_vec(
            history.as_slice()[..n * features].to_vec(),
            &[1, n, features],
        );
        let batch = model.predict(&prefix);
        let diff = (streamed[0] - batch.as_slice()[0]).abs();
        assert!(
            diff <= 1e-5,
            "streaming push {n} diverged from batch forward by {diff}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// After warm-up (any number of pushes), a streaming forecast equals
    /// the batch forward on the same full history, for arbitrary sample
    /// values and stream lengths.
    #[test]
    fn streaming_equals_batch_on_arbitrary_streams(
        raw in proptest::collection::vec(-2.0f32..2.0, 2..97),
    ) {
        let features = 2;
        let n = raw.len() / features;
        prop_assume!(n >= 1);
        let data = &raw[..n * features];
        let model = streaming_model(features);
        let mut stream = StreamingRptcn::new(&model).unwrap();
        let mut last = Vec::new();
        for i in 0..n {
            last = stream.push(&data[i * features..(i + 1) * features]).to_vec();
        }
        let batch = model.predict(&Tensor::from_vec(data.to_vec(), &[1, n, features]));
        let diff = (last[0] - batch.as_slice()[0]).abs();
        prop_assert!(
            diff <= 1e-5,
            "stream of {n} samples diverged from batch forward by {diff}"
        );
    }
}
