//! Ridge linear regression on flattened windows — the linear-regression
//! workload estimator of the related work (§VI-A, Yang et al.) and a strong
//! cheap baseline: with the lag-0 target among the features it can express
//! persistence exactly and then improve on it.

use std::time::Instant;

use tensor::{linalg, Tensor};
use timeseries::WindowedDataset;

use crate::forecaster::{FitReport, Forecaster};

/// Ridge-regression hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearConfig {
    /// L2 penalty on the weights (the intercept column is penalised too,
    /// negligibly, which keeps the solver a single OLS call).
    pub ridge: f32,
}

impl Default for LinearConfig {
    fn default() -> Self {
        Self { ridge: 1e-2 }
    }
}

/// Fitted ridge regressor; one weight vector per horizon step.
#[derive(Debug, Clone)]
pub struct LinearForecaster {
    config: LinearConfig,
    /// `[flat_features + 1]` weights (intercept last) per horizon step.
    weights: Vec<Tensor>,
    horizon: usize,
    flat_features: usize,
}

impl LinearForecaster {
    pub fn new(config: LinearConfig) -> Self {
        Self {
            config,
            weights: Vec::new(),
            horizon: 1,
            flat_features: 0,
        }
    }

    /// The fitted weight vector (intercept last) for horizon step `h`.
    pub fn weights(&self, h: usize) -> &Tensor {
        &self.weights[h]
    }
}

fn design_matrix(x: &Tensor) -> (Tensor, usize, usize) {
    let (n, window, f) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let flat = window * f;
    let mut rows = Vec::with_capacity(n * (flat + 1));
    for i in 0..n {
        rows.extend_from_slice(&x.as_slice()[i * flat..(i + 1) * flat]);
        rows.push(1.0);
    }
    (Tensor::from_vec(rows, &[n, flat + 1]), n, flat)
}

impl Forecaster for LinearForecaster {
    fn name(&self) -> &str {
        "Linear"
    }

    fn fit(&mut self, train: &WindowedDataset, _valid: Option<&WindowedDataset>) -> FitReport {
        let start = Instant::now();
        let (design, n, flat) = design_matrix(&train.x);
        self.horizon = train.horizon;
        self.flat_features = flat;
        self.weights = (0..self.horizon)
            .map(|h| {
                let target: Vec<f32> = (0..n).map(|i| train.y.at(&[i, h])).collect();
                // The ridge term keeps the normal equations solvable; if
                // a degenerate design still defeats it, zero weights make
                // this horizon predict 0.0 rather than crash the fit.
                linalg::least_squares(&design, &Tensor::from_vec(target, &[n]), self.config.ridge)
                    .unwrap_or_else(|_| Tensor::from_vec(vec![0.0; flat + 1], &[flat + 1]))
            })
            .collect();
        let (truth, pred) = self.evaluate(train);
        FitReport {
            train_loss: vec![timeseries::metrics::mse(&truth, &pred)],
            valid_loss: Vec::new(),
            fit_time: start.elapsed(),
            stopped_early: false,
        }
    }

    fn predict(&self, x: &Tensor) -> Tensor {
        assert!(!self.weights.is_empty(), "predict before fit");
        let (design, n, flat) = design_matrix(x);
        assert_eq!(flat, self.flat_features, "feature width changed since fit");
        let mut out = vec![0.0f32; n * self.horizon];
        for (h, w) in self.weights.iter().enumerate() {
            let pred = tensor::matmul::matvec(&design, w);
            for i in 0..n {
                out[i * self.horizon + h] = pred.as_slice()[i];
            }
        }
        Tensor::from_vec(out, &[n, self.horizon])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timeseries::{make_windows, TimeSeriesFrame};

    #[test]
    fn recovers_an_exact_linear_rule() {
        // cpu is an exact linear function of the exogenous column's recent
        // past; an autoregressive construction would converge to a fixed
        // point and leave the design matrix rank-deficient.
        let mut rng = tensor::Rng::seed_from(5);
        let n = 200;
        let x: Vec<f32> = (0..n).map(|_| rng.uniform(0.0, 1.0)).collect();
        let cpu: Vec<f32> = (0..n)
            .map(|t| {
                if t < 2 {
                    0.5
                } else {
                    0.6 * x[t - 1] + 0.3 * x[t - 2] + 0.05
                }
            })
            .collect();
        let frame = TimeSeriesFrame::from_columns(&[("cpu", cpu), ("x", x)]).unwrap();
        let ds = make_windows(&frame, "cpu", 4, 1).unwrap();
        let mut m = LinearForecaster::new(LinearConfig { ridge: 1e-6 });
        // cpu lags are exact combinations of x lags, so the solver will
        // escalate the ridge; the fit must still be essentially exact.
        let report = m.fit(&ds, None);
        assert!(
            report.train_loss[0] < 1e-4,
            "train mse {}",
            report.train_loss[0]
        );
        let (truth, pred) = m.evaluate(&ds);
        assert!(timeseries::metrics::mse(&truth, &pred) < 1e-4);
    }

    #[test]
    fn multivariate_weights_find_the_informative_column() {
        // Target equals the helper column one step back; cpu history is noise.
        let n = 150;
        let helper: Vec<f32> = (0..n).map(|i| ((i * 13) % 29) as f32 / 29.0).collect();
        let cpu: Vec<f32> = (0..n)
            .map(|i| if i == 0 { 0.0 } else { helper[i - 1] })
            .collect();
        let frame = TimeSeriesFrame::from_columns(&[("cpu", cpu), ("helper", helper)]).unwrap();
        let ds = make_windows(&frame, "cpu", 3, 1).unwrap();
        let mut m = LinearForecaster::new(LinearConfig::default());
        m.fit(&ds, None);
        let (truth, pred) = m.evaluate(&ds);
        assert!(timeseries::metrics::mse(&truth, &pred) < 1e-3);
        // The dominant weight must sit on the last helper value
        // (feature index: (window-1)*f + 1 = 2*2+1 = 5).
        let w = m.weights(0).as_slice();
        let (argmax, _) = w[..w.len() - 1]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
            .unwrap();
        assert_eq!(argmax, 5, "weights {w:?}");
    }

    #[test]
    fn multi_horizon_shapes() {
        let series: Vec<f32> = (0..120).map(|i| (i % 11) as f32 / 11.0).collect();
        let frame = TimeSeriesFrame::from_columns(&[("cpu", series)]).unwrap();
        let ds = make_windows(&frame, "cpu", 5, 3).unwrap();
        let mut m = LinearForecaster::new(LinearConfig::default());
        m.fit(&ds, None);
        let pred = m.predict(&ds.x);
        assert_eq!(pred.shape(), &[ds.len(), 3]);
        assert!(pred.all_finite());
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_requires_fit() {
        LinearForecaster::new(LinearConfig::default()).predict(&Tensor::zeros(&[1, 3, 1]));
    }
}
