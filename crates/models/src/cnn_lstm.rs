//! CNN-LSTM baseline (paper ref [29]): a causal convolution extracts local
//! temporal features, an LSTM models their sequence, a dense head predicts.

use autograd::layers::{CausalConv1d, Dropout, Linear, Lstm};
use autograd::{Graph, ParamStore, SequenceModel, Var};
use tensor::{Rng, Tensor};
use timeseries::WindowedDataset;

use crate::checkpoint::{CheckpointError, ModelState};
use crate::forecaster::{FitReport, Forecaster};
use crate::neural::{self, NeuralTrainSpec};

/// CNN-LSTM architecture knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CnnLstmConfig {
    /// Convolution output channels.
    pub conv_channels: usize,
    pub kernel: usize,
    pub lstm_hidden: usize,
    pub lstm_layers: usize,
    pub dropout: f32,
    pub spec: NeuralTrainSpec,
}

impl Default for CnnLstmConfig {
    fn default() -> Self {
        Self {
            conv_channels: 16,
            kernel: 3,
            lstm_hidden: 32,
            lstm_layers: 1,
            dropout: 0.1,
            spec: NeuralTrainSpec::default(),
        }
    }
}

struct CnnLstmNetwork {
    store: ParamStore,
    conv: CausalConv1d,
    lstm: Lstm,
    dropout: Dropout,
    head: Linear,
    features: usize,
    horizon: usize,
}

impl SequenceModel for CnnLstmNetwork {
    fn forward(&self, g: &mut Graph, x: &Tensor, training: bool, rng: &mut Rng) -> Var {
        let time = x.shape()[1];
        let ct = g.input(neural::to_channels_time(x));
        let conv_out = self.conv.forward(g, ct);
        let act = g.relu(conv_out);
        // Feed the conv feature map to the LSTM step by step.
        let steps: Vec<Var> = (0..time).map(|t| g.select_time(act, t)).collect();
        let last = self.lstm.forward_last(g, &steps);
        let dropped = self.dropout.apply(g, last, training, rng);
        self.head.forward(g, dropped)
    }

    fn infer(&self, ctx: &mut autograd::InferenceContext, x: &Tensor) -> Tensor {
        let (batch, time, features) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let mut ct = ctx.take(batch * features * time);
        neural::to_channels_time_into(x, &mut ct);
        let mut act = self.conv.infer(&self.store, ctx, &ct, batch, time);
        autograd::infer::relu_in_place(&mut act);
        ctx.give(ct);
        let ch = self.conv.out_channels();
        let last = self
            .lstm
            .infer_last(&self.store, ctx, batch, time, |t, buf| {
                autograd::infer::select_time_into(&act, buf, batch, ch, time, t)
            });
        ctx.give(act);
        // Dropout is a no-op at inference.
        let out = self.head.infer(&self.store, ctx, &last, batch);
        ctx.give(last);
        let result = Tensor::from_vec(out[..batch * self.horizon].to_vec(), &[batch, self.horizon]);
        ctx.give(out);
        result
    }

    fn params(&self) -> &ParamStore {
        &self.store
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn horizon(&self) -> usize {
        self.horizon
    }
}

/// CNN-LSTM as a [`Forecaster`].
pub struct CnnLstmForecaster {
    config: CnnLstmConfig,
    network: Option<CnnLstmNetwork>,
}

impl CnnLstmForecaster {
    pub fn new(config: CnnLstmConfig) -> Self {
        Self {
            config,
            network: None,
        }
    }

    fn build(&self, features: usize, horizon: usize) -> CnnLstmNetwork {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(self.config.spec.seed.wrapping_add(0x261));
        let conv = CausalConv1d::new(
            &mut store,
            "conv",
            features,
            self.config.conv_channels,
            self.config.kernel,
            1,
            false,
            &mut rng,
        );
        let lstm = Lstm::new(
            &mut store,
            "lstm",
            self.config.conv_channels,
            self.config.lstm_hidden,
            self.config.lstm_layers,
            &mut rng,
        );
        let head = Linear::with_init(
            &mut store,
            "head",
            self.config.lstm_hidden,
            horizon,
            autograd::Init::Constant(0.0),
            true,
            &mut rng,
        );
        CnnLstmNetwork {
            store,
            conv,
            lstm,
            dropout: Dropout::new(self.config.dropout),
            head,
            features,
            horizon,
        }
    }

    /// Reconstruct the config recorded in a checkpoint snapshot.
    pub fn config_from_state(state: &ModelState) -> Result<CnnLstmConfig, CheckpointError> {
        if state.arch != "CNN-LSTM" {
            return Err(CheckpointError(format!(
                "expected CNN-LSTM state, got `{}`",
                state.arch
            )));
        }
        Ok(CnnLstmConfig {
            conv_channels: state.require_usize("conv_channels")?,
            kernel: state.require_usize("kernel")?,
            lstm_hidden: state.require_usize("lstm_hidden")?,
            lstm_layers: state.require_usize("lstm_layers")?,
            dropout: state.require_f32("dropout")?,
            spec: neural::spec_from_meta(state)?,
        })
    }

    /// Rebuild a fitted forecaster from a checkpoint snapshot.
    pub fn from_state(state: &ModelState) -> Result<Self, CheckpointError> {
        let mut m = Self::new(Self::config_from_state(state)?);
        m.load_state(state)?;
        Ok(m)
    }

    /// Taped-graph inference — the parity/benchmark reference for
    /// [`Forecaster::predict`]'s tape-free path.
    pub fn predict_taped(&self, x: &Tensor) -> Tensor {
        let net = self.network.as_ref().expect("predict before fit"); // lint: allow(r2) — Forecaster::predict contract
        neural::predict_network_taped(net, x, self.config.spec.batch_size)
    }
}

impl Forecaster for CnnLstmForecaster {
    fn name(&self) -> &str {
        "CNN-LSTM"
    }

    fn fit(&mut self, train: &WindowedDataset, valid: Option<&WindowedDataset>) -> FitReport {
        let mut net = self.build(train.num_features(), train.horizon);
        let report = neural::fit_network(&mut net, self.config.spec, train, valid);
        self.network = Some(net);
        report
    }

    fn predict(&self, x: &Tensor) -> Tensor {
        let net = self.network.as_ref().expect("predict before fit"); // lint: allow(r2) — Forecaster::predict contract
        neural::predict_network(net, x, self.config.spec.batch_size)
    }

    fn state(&self) -> Option<ModelState> {
        let net = self.network.as_ref()?;
        let mut st = ModelState::new("CNN-LSTM", net.features, net.horizon);
        st.push_meta("conv_channels", self.config.conv_channels as f64);
        st.push_meta("kernel", self.config.kernel as f64);
        st.push_meta("lstm_hidden", self.config.lstm_hidden as f64);
        st.push_meta("lstm_layers", self.config.lstm_layers as f64);
        st.push_meta("dropout", self.config.dropout as f64);
        neural::push_spec_meta(&mut st, &self.config.spec);
        st.tensors = net.store.export_named();
        Some(st)
    }

    fn load_state(&mut self, state: &ModelState) -> Result<(), CheckpointError> {
        self.config = Self::config_from_state(state)?;
        let mut net = self.build(state.features, state.horizon);
        net.store.import_named(&state.tensors)?;
        self.network = Some(net);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timeseries::{make_windows, TimeSeriesFrame};

    #[test]
    fn learns_a_multivariate_pattern() {
        // Target follows the helper column with a one-step delay.
        let n = 400;
        let helper: Vec<f32> = (0..n)
            .map(|i| 0.5 + 0.4 * (i as f32 * 0.21).sin())
            .collect();
        let cpu: Vec<f32> = (0..n)
            .map(|i| if i == 0 { 0.5 } else { helper[i - 1] })
            .collect();
        let frame = TimeSeriesFrame::from_columns(&[("cpu", cpu), ("helper", helper)]).unwrap();
        let ds = make_windows(&frame, "cpu", 8, 1).unwrap();
        let mut model = CnnLstmForecaster::new(CnnLstmConfig {
            conv_channels: 8,
            lstm_hidden: 16,
            dropout: 0.0,
            spec: NeuralTrainSpec {
                epochs: 25,
                learning_rate: 5e-3,
                ..Default::default()
            },
            ..Default::default()
        });
        let report = model.fit(&ds, None);
        assert!(report.final_train_loss() < report.train_loss[0]);
        let (truth, pred) = model.evaluate(&ds);
        let mse = timeseries::metrics::mse(&truth, &pred);
        assert!(mse < 0.01, "CNN-LSTM mse {mse}");
    }

    #[test]
    fn prediction_shape_matches_horizon() {
        let series: Vec<f32> = (0..150).map(|i| (i % 7) as f32 / 7.0).collect();
        let frame = TimeSeriesFrame::from_columns(&[("cpu", series)]).unwrap();
        let ds = make_windows(&frame, "cpu", 6, 2).unwrap();
        let mut model = CnnLstmForecaster::new(CnnLstmConfig {
            conv_channels: 4,
            lstm_hidden: 8,
            spec: NeuralTrainSpec {
                epochs: 2,
                ..Default::default()
            },
            ..Default::default()
        });
        model.fit(&ds, None);
        let pred = model.predict(&ds.x);
        assert_eq!(pred.shape(), &[ds.len(), 2]);
        assert!(pred.all_finite());
    }
}
