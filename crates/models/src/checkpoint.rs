//! Model checkpointing: a portable [`ModelState`] snapshot plus a versioned
//! binary file format (`magic + version + named-tensor table`).
//!
//! Every neural forecaster can round-trip through a checkpoint and resume
//! serving with **bit-identical** predictions: weights are written as raw
//! IEEE-754 bits (never formatted through text), and the architecture
//! hyper-parameters ride along as named `f64` metadata so
//! [`forecaster_from_state`] can rebuild the exact network without the
//! original config in hand.

use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use autograd::RestoreError;
use tensor::Tensor;

use crate::cnn_lstm::CnnLstmForecaster;
use crate::forecaster::{Forecaster, NaiveForecaster};
use crate::gru::GruForecaster;
use crate::lstm::LstmForecaster;
use crate::rptcn::RptcnForecaster;

/// Anything that can go wrong saving or loading a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointError(pub String);

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "checkpoint error: {}", self.0)
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError(format!("io: {e}"))
    }
}

impl From<RestoreError> for CheckpointError {
    fn from(e: RestoreError) -> Self {
        CheckpointError(e.0)
    }
}

/// Portable snapshot of one fitted forecaster: architecture name, input
/// width, horizon, hyper-parameter metadata and the named weight table.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelState {
    /// Architecture tag ("RPTCN", "LSTM", …) — the registry key.
    pub arch: String,
    /// Input feature width the network was built for.
    pub features: usize,
    /// Prediction horizon.
    pub horizon: usize,
    /// Named scalar hyper-parameters (flags stored as 0.0 / 1.0).
    pub meta: Vec<(String, f64)>,
    /// Named weight tensors, exactly as exported by the `ParamStore`.
    pub tensors: Vec<(String, Tensor)>,
}

impl ModelState {
    pub fn new(arch: &str, features: usize, horizon: usize) -> Self {
        Self {
            arch: arch.to_string(),
            features,
            horizon,
            meta: Vec::new(),
            tensors: Vec::new(),
        }
    }

    pub fn push_meta(&mut self, key: &str, value: f64) {
        self.meta.push((key.to_string(), value));
    }

    pub fn meta(&self, key: &str) -> Option<f64> {
        self.meta.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    pub fn require(&self, key: &str) -> Result<f64, CheckpointError> {
        self.meta(key).ok_or_else(|| {
            CheckpointError(format!("missing meta key `{key}` in {} state", self.arch))
        })
    }

    pub fn require_usize(&self, key: &str) -> Result<usize, CheckpointError> {
        let v = self.require(key)?;
        if v < 0.0 || v.fract() != 0.0 || v > u64::MAX as f64 {
            return Err(CheckpointError(format!(
                "meta key `{key}` = {v} is not a valid count"
            )));
        }
        Ok(v as usize)
    }

    pub fn require_bool(&self, key: &str) -> Result<bool, CheckpointError> {
        Ok(self.require(key)? != 0.0)
    }

    pub fn require_f32(&self, key: &str) -> Result<f32, CheckpointError> {
        Ok(self.require(key)? as f32)
    }

    /// Total scalar weight count — handy for stats and sanity checks.
    pub fn num_scalars(&self) -> usize {
        self.tensors.iter().map(|(_, t)| t.len()).sum()
    }
}

/// Low-level little-endian encoding primitives shared by the model format
/// here and the fleet/service format in `rptcn-serve`.
pub mod wire {
    use super::CheckpointError;
    use std::io::{Read, Write};
    use tensor::Tensor;

    /// Strings longer than this are rejected — corrupted length prefixes
    /// must not drive huge allocations.
    pub const MAX_STR: usize = 1 << 20;
    /// Tensors beyond this rank are rejected for the same reason.
    pub const MAX_RANK: usize = 8;

    pub fn write_u32<W: Write>(w: &mut W, v: u32) -> Result<(), CheckpointError> {
        w.write_all(&v.to_le_bytes())?;
        Ok(())
    }

    pub fn write_u64<W: Write>(w: &mut W, v: u64) -> Result<(), CheckpointError> {
        w.write_all(&v.to_le_bytes())?;
        Ok(())
    }

    pub fn write_f32<W: Write>(w: &mut W, v: f32) -> Result<(), CheckpointError> {
        w.write_all(&v.to_bits().to_le_bytes())?;
        Ok(())
    }

    pub fn write_f64<W: Write>(w: &mut W, v: f64) -> Result<(), CheckpointError> {
        w.write_all(&v.to_bits().to_le_bytes())?;
        Ok(())
    }

    pub fn write_str<W: Write>(w: &mut W, s: &str) -> Result<(), CheckpointError> {
        write_u32(w, s.len() as u32)?;
        w.write_all(s.as_bytes())?;
        Ok(())
    }

    pub fn write_tensor<W: Write>(w: &mut W, t: &Tensor) -> Result<(), CheckpointError> {
        write_u32(w, t.shape().len() as u32)?;
        for &d in t.shape() {
            write_u64(w, d as u64)?;
        }
        for &v in t.as_slice() {
            write_f32(w, v)?;
        }
        Ok(())
    }

    pub fn read_u32<R: Read>(r: &mut R) -> Result<u32, CheckpointError> {
        let mut buf = [0u8; 4];
        r.read_exact(&mut buf)?;
        Ok(u32::from_le_bytes(buf))
    }

    pub fn read_u64<R: Read>(r: &mut R) -> Result<u64, CheckpointError> {
        let mut buf = [0u8; 8];
        r.read_exact(&mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    pub fn read_f32<R: Read>(r: &mut R) -> Result<f32, CheckpointError> {
        let mut buf = [0u8; 4];
        r.read_exact(&mut buf)?;
        Ok(f32::from_bits(u32::from_le_bytes(buf)))
    }

    pub fn read_f64<R: Read>(r: &mut R) -> Result<f64, CheckpointError> {
        let mut buf = [0u8; 8];
        r.read_exact(&mut buf)?;
        Ok(f64::from_bits(u64::from_le_bytes(buf)))
    }

    pub fn read_str<R: Read>(r: &mut R) -> Result<String, CheckpointError> {
        let len = read_u32(r)? as usize;
        if len > MAX_STR {
            return Err(CheckpointError(format!(
                "string length {len} exceeds limit {MAX_STR}"
            )));
        }
        let mut buf = vec![0u8; len];
        r.read_exact(&mut buf)?;
        String::from_utf8(buf).map_err(|e| CheckpointError(format!("invalid utf-8 string: {e}")))
    }

    pub fn read_tensor<R: Read>(r: &mut R) -> Result<Tensor, CheckpointError> {
        let rank = read_u32(r)? as usize;
        if rank > MAX_RANK {
            return Err(CheckpointError(format!(
                "tensor rank {rank} exceeds limit {MAX_RANK}"
            )));
        }
        let mut shape = Vec::with_capacity(rank);
        let mut len = 1usize;
        for _ in 0..rank {
            let d = read_u64(r)? as usize;
            len = len
                .checked_mul(d)
                .ok_or_else(|| CheckpointError("tensor shape overflows usize".into()))?;
            shape.push(d);
        }
        // Read in bounded chunks so a corrupted length prefix hits EOF
        // before it can drive a giant allocation.
        const CHUNK: usize = 1 << 16;
        let mut data = Vec::new();
        let mut remaining = len;
        let mut buf = vec![0u8; CHUNK.min(len.max(1)) * 4];
        while remaining > 0 {
            let take = remaining.min(CHUNK);
            let bytes = &mut buf[..take * 4];
            r.read_exact(bytes)?;
            data.extend(
                bytes
                    .chunks_exact(4)
                    .map(|b| f32::from_bits(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))),
            );
            remaining -= take;
        }
        Ok(Tensor::from_vec(data, &shape))
    }
}

/// File magic for single-model checkpoints.
pub const MODEL_MAGIC: [u8; 4] = *b"RPTM";
/// Current checkpoint format version.
pub const FORMAT_VERSION: u32 = 1;

/// Serialise one [`ModelState`] (payload only — no magic/version framing).
pub fn write_model_state<W: Write>(w: &mut W, state: &ModelState) -> Result<(), CheckpointError> {
    wire::write_str(w, &state.arch)?;
    wire::write_u64(w, state.features as u64)?;
    wire::write_u64(w, state.horizon as u64)?;
    wire::write_u32(w, state.meta.len() as u32)?;
    for (k, v) in &state.meta {
        wire::write_str(w, k)?;
        wire::write_f64(w, *v)?;
    }
    wire::write_u32(w, state.tensors.len() as u32)?;
    for (name, t) in &state.tensors {
        wire::write_str(w, name)?;
        wire::write_tensor(w, t)?;
    }
    Ok(())
}

/// Inverse of [`write_model_state`].
pub fn read_model_state<R: Read>(r: &mut R) -> Result<ModelState, CheckpointError> {
    let arch = wire::read_str(r)?;
    let features = wire::read_u64(r)? as usize;
    let horizon = wire::read_u64(r)? as usize;
    let n_meta = wire::read_u32(r)? as usize;
    if n_meta > wire::MAX_STR {
        return Err(CheckpointError(format!("implausible meta count {n_meta}")));
    }
    let mut meta = Vec::with_capacity(n_meta);
    for _ in 0..n_meta {
        let k = wire::read_str(r)?;
        let v = wire::read_f64(r)?;
        meta.push((k, v));
    }
    let n_tensors = wire::read_u32(r)? as usize;
    if n_tensors > wire::MAX_STR {
        return Err(CheckpointError(format!(
            "implausible tensor count {n_tensors}"
        )));
    }
    let mut tensors = Vec::with_capacity(n_tensors.min(1024));
    for _ in 0..n_tensors {
        let name = wire::read_str(r)?;
        let t = wire::read_tensor(r)?;
        tensors.push((name, t));
    }
    Ok(ModelState {
        arch,
        features,
        horizon,
        meta,
        tensors,
    })
}

/// Write a framed (magic + version) model checkpoint to `w`.
pub fn write_model_file<W: Write>(w: &mut W, state: &ModelState) -> Result<(), CheckpointError> {
    w.write_all(&MODEL_MAGIC)?;
    wire::write_u32(w, FORMAT_VERSION)?;
    write_model_state(w, state)
}

/// Read a framed model checkpoint, rejecting bad magic or unknown versions.
pub fn read_model_file<R: Read>(r: &mut R) -> Result<ModelState, CheckpointError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != MODEL_MAGIC {
        return Err(CheckpointError(format!(
            "bad magic {magic:?}, expected {MODEL_MAGIC:?} — not a model checkpoint"
        )));
    }
    let version = wire::read_u32(r)?;
    if version != FORMAT_VERSION {
        return Err(CheckpointError(format!(
            "unsupported checkpoint version {version} (this build reads {FORMAT_VERSION})"
        )));
    }
    read_model_state(r)
}

/// Save a model checkpoint to `path`.
pub fn save_model(path: &Path, state: &ModelState) -> Result<(), CheckpointError> {
    let mut w = BufWriter::new(File::create(path)?);
    write_model_file(&mut w, state)?;
    w.flush()?;
    Ok(())
}

/// Load a model checkpoint from `path`.
pub fn load_model(path: &Path) -> Result<ModelState, CheckpointError> {
    let mut r = BufReader::new(File::open(path)?);
    read_model_file(&mut r)
}

/// Rebuild a fitted forecaster from a snapshot — the restore half of the
/// serving checkpoint story. Dispatches on [`ModelState::arch`].
pub fn forecaster_from_state(
    state: &ModelState,
) -> Result<Box<dyn Forecaster + Send>, CheckpointError> {
    match state.arch.as_str() {
        "RPTCN" => Ok(Box::new(RptcnForecaster::from_state(state)?)),
        "LSTM" => Ok(Box::new(LstmForecaster::from_state(state)?)),
        "GRU" => Ok(Box::new(GruForecaster::from_state(state)?)),
        "CNN-LSTM" => Ok(Box::new(CnnLstmForecaster::from_state(state)?)),
        "Naive" => Ok(Box::new(NaiveForecaster::from_state(state)?)),
        other => Err(CheckpointError(format!(
            "unknown architecture `{other}` in checkpoint"
        ))),
    }
}

/// Build a **fresh, unfitted** forecaster with the same architecture and
/// hyper-parameters as `state` — what a refit pool trains after a restore.
pub fn forecaster_like(state: &ModelState) -> Result<Box<dyn Forecaster + Send>, CheckpointError> {
    match state.arch.as_str() {
        "RPTCN" => Ok(Box::new(RptcnForecaster::new(
            RptcnForecaster::config_from_state(state)?,
        ))),
        "LSTM" => Ok(Box::new(LstmForecaster::new(
            LstmForecaster::config_from_state(state)?,
        ))),
        "GRU" => Ok(Box::new(GruForecaster::new(
            GruForecaster::config_from_state(state)?,
        ))),
        "CNN-LSTM" => Ok(Box::new(CnnLstmForecaster::new(
            CnnLstmForecaster::config_from_state(state)?,
        ))),
        "Naive" => Ok(Box::new(NaiveForecaster::new())),
        other => Err(CheckpointError(format!(
            "unknown architecture `{other}` in checkpoint"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> ModelState {
        let mut st = ModelState::new("RPTCN", 3, 2);
        st.push_meta("channels", 16.0);
        st.push_meta("dropout", 0.1f32 as f64);
        st.tensors = vec![
            (
                "w".into(),
                Tensor::from_vec(vec![1.5, -2.25, 0.0, f32::MIN_POSITIVE], &[2, 2]),
            ),
            ("b".into(), Tensor::from_vec(vec![0.125], &[1])),
        ];
        st
    }

    #[test]
    fn state_roundtrips_through_bytes() {
        let st = sample_state();
        let mut buf = Vec::new();
        write_model_file(&mut buf, &st).unwrap();
        let back = read_model_file(&mut buf.as_slice()).unwrap();
        assert_eq!(back, st);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let st = sample_state();
        let mut buf = Vec::new();
        write_model_file(&mut buf, &st).unwrap();
        buf[0] = b'X';
        let err = read_model_file(&mut buf.as_slice()).unwrap_err();
        assert!(err.0.contains("bad magic"), "{err}");
    }

    #[test]
    fn unknown_version_is_rejected() {
        let st = sample_state();
        let mut buf = Vec::new();
        write_model_file(&mut buf, &st).unwrap();
        buf[4] = 99;
        let err = read_model_file(&mut buf.as_slice()).unwrap_err();
        assert!(err.0.contains("version"), "{err}");
    }

    #[test]
    fn every_truncation_point_errors_cleanly() {
        let st = sample_state();
        let mut buf = Vec::new();
        write_model_file(&mut buf, &st).unwrap();
        for cut in 0..buf.len() {
            let err = read_model_file(&mut &buf[..cut]);
            assert!(
                err.is_err(),
                "truncation at {cut}/{} was accepted",
                buf.len()
            );
        }
    }

    #[test]
    fn meta_helpers_validate() {
        let st = sample_state();
        assert_eq!(st.require_usize("channels").unwrap(), 16);
        assert_eq!(st.require_f32("dropout").unwrap(), 0.1);
        assert!(st.require("missing").is_err());
        let mut bad = st.clone();
        bad.push_meta("frac", 1.5);
        assert!(bad.require_usize("frac").is_err());
    }

    #[test]
    fn num_scalars_counts_weights() {
        assert_eq!(sample_state().num_scalars(), 5);
    }
}
