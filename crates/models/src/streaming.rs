//! Incremental (streaming) RPTCN inference.
//!
//! The batch path recomputes the whole lookback window for every forecast:
//! `O(levels · ch² · K · T)` per sample. A dilated causal convolution only
//! ever reads taps at offsets `0, d, …, (K−1)·d` behind the current step,
//! so a per-layer ring buffer of depth `(K−1)·d + 1` is enough to produce
//! the next output column incrementally. [`StreamingRptcn`] keeps one such
//! ring per convolution input; after construction each
//! [`push`](StreamingRptcn::push) costs one timestep per layer —
//! `O(levels · ch² · K)`, independent of the window length — and performs
//! no heap allocation.
//!
//! Rings start zero-filled, which is exactly the implicit left
//! zero-padding of the batch convolution. The guarantee, enforced by the
//! parity suite in `tests/infer_parity.rs`: after `n` pushes the returned
//! forecast equals `Forecaster::predict` on the `[1, n, features]` window
//! of the full pushed history.
//!
//! Temporal attention re-weights every historical step on each forecast,
//! which is inherently `O(T)`; [`StreamingRptcn::new`] rejects models
//! configured with it.

use autograd::infer::{relu_in_place, softmax_rows_in_place};
use autograd::layers::{CausalConv1d, Linear};
use autograd::ParamStore;
use tensor::matmul::matmul_into;

use crate::rptcn::{AttentionKind, RptcnForecaster};

/// Why a forecaster could not be converted into a streaming engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamingError {
    /// The forecaster has no fitted network yet.
    NotFitted,
    /// The model uses temporal attention, which needs the full window.
    TemporalAttention,
}

impl std::fmt::Display for StreamingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NotFitted => write!(f, "streaming engine requires a fitted model"),
            Self::TemporalAttention => {
                write!(f, "temporal attention needs the full window; cannot stream")
            }
        }
    }
}

impl std::error::Error for StreamingError {}

#[derive(Debug)]
/// Fixed-depth ring of `[width]` rows, zero-initialised so taps beyond the
/// pushed history read the batch path's implicit zero padding.
struct Ring {
    data: Vec<f32>,
    width: usize,
    depth: usize,
    head: usize,
}

impl Ring {
    fn new(width: usize, depth: usize) -> Self {
        Self {
            data: vec![0.0; width * depth],
            width,
            depth,
            head: 0,
        }
    }

    // hot-path: runs once per streamed sample, must stay allocation-free
    fn push(&mut self, row: &[f32]) {
        debug_assert_eq!(row.len(), self.width);
        self.head = (self.head + 1) % self.depth;
        self.data[self.head * self.width..(self.head + 1) * self.width].copy_from_slice(row);
    }

    // hot-path: runs once per streamed sample, must stay allocation-free
    /// Row pushed `back` steps ago (`back == 0` is the newest row).
    fn tap(&self, back: usize) -> &[f32] {
        debug_assert!(back < self.depth);
        let idx = (self.head + self.depth - back) % self.depth;
        &self.data[idx * self.width..(idx + 1) * self.width]
    }

    fn clear(&mut self) {
        self.data.fill(0.0);
        self.head = 0;
    }
}

/// A causal convolution with weight normalisation folded into a dense
/// weight tensor, evaluated one output column at a time against a [`Ring`].
#[derive(Debug)]
struct StreamConv {
    /// `[out_ch, in_ch, k]` row-major, weight-norm already applied.
    w: Vec<f32>,
    b: Vec<f32>,
    in_ch: usize,
    out_ch: usize,
    k: usize,
    dilation: usize,
}

impl StreamConv {
    fn from_layer(store: &ParamStore, conv: &CausalConv1d) -> Self {
        let (in_ch, out_ch) = (conv.in_channels(), conv.out_channels());
        let (k, dilation) = (conv.kernel_size(), conv.dilation());
        let mut w = vec![0.0; out_ch * in_ch * k];
        conv.materialize_weight(store, &mut w);
        Self {
            w,
            b: conv.bias_values(store).to_vec(),
            in_ch,
            out_ch,
            k,
            dilation,
        }
    }

    /// Depth of the input ring this conv taps into.
    fn ring_depth(&self) -> usize {
        (self.k - 1) * self.dilation + 1
    }

    // hot-path: runs once per streamed sample, must stay allocation-free
    /// One output column. Mirrors the batch kernel exactly: accumulate in
    /// `oc → ic → kk` order with the same sparse-weight skip, bias last.
    fn step(&self, ring: &Ring, out_row: &mut [f32]) {
        debug_assert_eq!(out_row.len(), self.out_ch);
        debug_assert_eq!(ring.width, self.in_ch);
        for (oc, out) in out_row.iter_mut().enumerate() {
            let mut acc = 0.0f32;
            for ic in 0..self.in_ch {
                let wrow = &self.w[(oc * self.in_ch + ic) * self.k..][..self.k];
                for (kk, &wv) in wrow.iter().enumerate() {
                    if wv == 0.0 {
                        continue;
                    }
                    let shift = (self.k - 1 - kk) * self.dilation;
                    acc += wv * ring.tap(shift)[ic];
                }
            }
            *out = acc + self.b[oc];
        }
    }
}

/// One TCN residual block in streaming form: two ring-buffered dilated
/// convolutions plus the (optionally downsampled) skip connection.
#[derive(Debug)]
struct StreamBlock {
    conv1: StreamConv,
    conv2: StreamConv,
    downsample: Option<StreamConv>,
    ring_in: Ring,
    ring_mid: Ring,
    h1: Vec<f32>,
    h2: Vec<f32>,
    res: Vec<f32>,
    /// The block's latest output row; the next block reads it directly.
    out: Vec<f32>,
}

impl StreamBlock {
    fn new(conv1: StreamConv, conv2: StreamConv, downsample: Option<StreamConv>) -> Self {
        let ring_in = Ring::new(conv1.in_ch, conv1.ring_depth());
        let ring_mid = Ring::new(conv2.in_ch, conv2.ring_depth());
        let (h1, h2) = (vec![0.0; conv1.out_ch], vec![0.0; conv2.out_ch]);
        let res = vec![0.0; downsample.as_ref().map_or(0, |d| d.out_ch)];
        let out = vec![0.0; conv2.out_ch];
        Self {
            conv1,
            conv2,
            downsample,
            ring_in,
            ring_mid,
            h1,
            h2,
            res,
            out,
        }
    }

    // hot-path: runs once per streamed sample, must stay allocation-free
    fn push(&mut self, x_row: &[f32]) {
        self.ring_in.push(x_row);
        self.conv1.step(&self.ring_in, &mut self.h1);
        relu_in_place(&mut self.h1);
        self.ring_mid.push(&self.h1);
        self.conv2.step(&self.ring_mid, &mut self.h2);
        relu_in_place(&mut self.h2);
        let res: &[f32] = match &self.downsample {
            Some(d) => {
                d.step(&self.ring_in, &mut self.res);
                &self.res
            }
            None => x_row,
        };
        for ((o, &h), &r) in self.out.iter_mut().zip(&self.h2).zip(res) {
            *o = (r + h).max(0.0);
        }
    }

    fn clear(&mut self) {
        self.ring_in.clear();
        self.ring_mid.clear();
    }
}

/// A dense layer snapshot (`[in, out]` weight plus optional bias).
#[derive(Debug)]
struct DenseStage {
    w: Vec<f32>,
    b: Option<Vec<f32>>,
    in_dim: usize,
    out_dim: usize,
}

impl DenseStage {
    fn from_layer(store: &ParamStore, linear: &Linear) -> Self {
        Self {
            w: linear.weight_values(store).to_vec(),
            b: linear.bias_values(store).map(<[f32]>::to_vec),
            in_dim: linear.in_dim(),
            out_dim: linear.out_dim(),
        }
    }

    // hot-path: runs once per streamed sample, must stay allocation-free
    /// `out = x · W (+ b)` for a single row — the same `matmul_into` kernel
    /// the batch path uses, so results are bitwise identical.
    fn apply(&self, x: &[f32], out: &mut [f32]) {
        matmul_into(x, &self.w, out, 1, self.in_dim, self.out_dim);
        if let Some(b) = &self.b {
            for (o, &bv) in out.iter_mut().zip(b) {
                *o += bv;
            }
        }
    }
}

/// Incremental RPTCN inference over an unbounded sample stream. See the
/// module docs for the cost model and the parity guarantee.
#[derive(Debug)]
pub struct StreamingRptcn {
    blocks: Vec<StreamBlock>,
    fc: Option<DenseStage>,
    attn: Option<DenseStage>,
    head: DenseStage,
    features: usize,
    horizon: usize,
    hidden: Vec<f32>,
    fc_out: Vec<f32>,
    scores: Vec<f32>,
    out: Vec<f32>,
    steps: u64,
}

impl StreamingRptcn {
    /// Snapshot a fitted forecaster's weights into a streaming engine.
    /// Weight normalisation is folded once here, so pushes touch only
    /// dense tensors.
    pub fn new(model: &RptcnForecaster) -> Result<Self, StreamingError> {
        if model.config().use_attention && model.config().attention == AttentionKind::Temporal {
            return Err(StreamingError::TemporalAttention);
        }
        let net = model.network().ok_or(StreamingError::NotFitted)?;
        let store = &net.store;
        let blocks: Vec<StreamBlock> = net
            .backbone
            .blocks()
            .iter()
            .map(|b| {
                StreamBlock::new(
                    StreamConv::from_layer(store, b.conv1()),
                    StreamConv::from_layer(store, b.conv2()),
                    b.downsample().map(|d| StreamConv::from_layer(store, d)),
                )
            })
            .collect();
        let fc = net.fc.as_ref().map(|l| DenseStage::from_layer(store, l));
        let attn = net
            .feature_attention
            .as_ref()
            .map(|a| DenseStage::from_layer(store, a.proj()));
        let head = DenseStage::from_layer(store, &net.head);

        let features = blocks[0].conv1.in_ch;
        let ch = net.backbone.out_channels();
        let fc_dim = fc.as_ref().map_or(0, |f| f.out_dim);
        Self::validate_widths(&blocks);
        Ok(Self {
            hidden: vec![0.0; ch],
            fc_out: vec![0.0; fc_dim],
            scores: vec![0.0; head.in_dim],
            out: vec![0.0; head.out_dim],
            horizon: head.out_dim,
            features,
            blocks,
            fc,
            attn,
            head,
            steps: 0,
        })
    }

    fn validate_widths(blocks: &[StreamBlock]) {
        for pair in blocks.windows(2) {
            debug_assert_eq!(pair[0].conv2.out_ch, pair[1].conv1.in_ch);
        }
    }

    // hot-path: runs once per streamed sample, must stay allocation-free
    /// Feed one `[features]` sample and get the forecast for the stream so
    /// far. Allocation-free; the returned slice is valid until the next
    /// push.
    pub fn push(&mut self, sample: &[f32]) -> &[f32] {
        assert_eq!(sample.len(), self.features, "sample width");
        self.steps += 1;

        for i in 0..self.blocks.len() {
            let (done, rest) = self.blocks.split_at_mut(i);
            let cur: &[f32] = match done.last() {
                Some(prev) => &prev.out,
                None => sample,
            };
            rest[0].push(cur);
        }
        // The constructor builds at least one block; skip the copy (and
        // keep the previous hidden state) rather than panic if not.
        if let Some(last) = self.blocks.last() {
            self.hidden.copy_from_slice(&last.out);
        }

        let h: &mut Vec<f32> = if let Some(fc) = &self.fc {
            fc.apply(&self.hidden, &mut self.fc_out);
            relu_in_place(&mut self.fc_out);
            &mut self.fc_out
        } else {
            &mut self.hidden
        };
        if let Some(attn) = &self.attn {
            let dim = attn.out_dim;
            attn.apply(h, &mut self.scores[..dim]);
            softmax_rows_in_place(&mut self.scores[..dim], 1, dim);
            for (hv, &s) in h.iter_mut().zip(&self.scores[..dim]) {
                *hv *= s * dim as f32;
            }
        }
        self.head.apply(h, &mut self.out);
        &self.out
    }

    /// Forget all pushed history (rings back to the zero-padded state).
    pub fn reset(&mut self) {
        for b in &mut self.blocks {
            b.clear();
        }
        self.steps = 0;
    }

    /// Samples pushed since construction or the last [`reset`](Self::reset).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    pub fn features(&self) -> usize {
        self.features
    }

    pub fn horizon(&self) -> usize {
        self.horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rptcn::RptcnConfig;

    #[test]
    fn ring_taps_and_wraps() {
        let mut r = Ring::new(2, 3);
        assert_eq!(r.tap(0), &[0.0, 0.0]);
        r.push(&[1.0, 2.0]);
        r.push(&[3.0, 4.0]);
        assert_eq!(r.tap(0), &[3.0, 4.0]);
        assert_eq!(r.tap(1), &[1.0, 2.0]);
        assert_eq!(r.tap(2), &[0.0, 0.0]);
        r.push(&[5.0, 6.0]);
        r.push(&[7.0, 8.0]); // wraps, evicting [1, 2]
        assert_eq!(r.tap(0), &[7.0, 8.0]);
        assert_eq!(r.tap(2), &[3.0, 4.0]);
    }

    #[test]
    fn unfitted_and_temporal_models_are_rejected() {
        let unfitted = RptcnForecaster::paper_default();
        assert_eq!(
            StreamingRptcn::new(&unfitted).unwrap_err(),
            StreamingError::NotFitted
        );
        let mut temporal = RptcnForecaster::new(RptcnConfig {
            attention: AttentionKind::Temporal,
            ..RptcnConfig::default()
        });
        temporal.init_untrained(2, 1);
        assert_eq!(
            StreamingRptcn::new(&temporal).unwrap_err(),
            StreamingError::TemporalAttention
        );
    }

    #[test]
    fn reset_restores_the_cold_stream() {
        let mut model = RptcnForecaster::new(RptcnConfig {
            channels: 6,
            levels: 2,
            fc_dim: 8,
            ..RptcnConfig::default()
        });
        model.init_untrained(3, 1);
        let mut s = StreamingRptcn::new(&model).unwrap();
        let samples = [[0.3, -0.1, 0.8], [0.9, 0.2, -0.4], [0.1, 0.1, 0.5]];
        let first: Vec<Vec<f32>> = samples.iter().map(|r| s.push(r).to_vec()).collect();
        assert_eq!(s.steps(), 3);
        s.reset();
        assert_eq!(s.steps(), 0);
        let second: Vec<Vec<f32>> = samples.iter().map(|r| s.push(r).to_vec()).collect();
        assert_eq!(first, second, "reset did not clear ring state");
    }
}
