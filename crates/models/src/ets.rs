//! Exponential-smoothing (Holt–Winters) forecaster — the classic
//! regression-family baseline from the paper's related work (§VI-A).
//! Supports simple, trend (Holt) and additive-seasonal (Winters) variants;
//! smoothing constants are selected by grid search over the in-sample
//! one-step squared error.

use std::time::Instant;

use tensor::Tensor;
use timeseries::WindowedDataset;

use crate::arima::reconstruct_target_series;
use crate::forecaster::{FitReport, Forecaster};

/// Which exponential-smoothing variant to fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EtsVariant {
    /// Level only (simple exponential smoothing).
    Simple,
    /// Level + additive trend (Holt's linear method, damped).
    Trend,
    /// Level + trend + additive seasonality with the given period.
    Seasonal { period: usize },
}

/// ETS hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EtsConfig {
    pub variant: EtsVariant,
    /// Grid resolution for the smoothing-constant search.
    pub grid: usize,
    /// Trend damping factor (1 = undamped).
    pub damping: f64,
}

impl Default for EtsConfig {
    fn default() -> Self {
        Self {
            variant: EtsVariant::Trend,
            grid: 8,
            damping: 0.95,
        }
    }
}

/// Holt–Winters state fitted to a series.
#[derive(Debug, Clone)]
pub struct EtsForecaster {
    config: EtsConfig,
    alpha: f64,
    beta: f64,
    gamma: f64,
    target_index: usize,
    horizon: usize,
    fitted: bool,
}

impl EtsForecaster {
    pub fn new(config: EtsConfig) -> Self {
        Self {
            config,
            alpha: 0.5,
            beta: 0.1,
            gamma: 0.1,
            target_index: 0,
            horizon: 1,
            fitted: false,
        }
    }

    /// Selected smoothing constants `(alpha, beta, gamma)`.
    pub fn smoothing(&self) -> (f64, f64, f64) {
        (self.alpha, self.beta, self.gamma)
    }

    /// One-step-ahead in-sample SSE for a candidate parameterisation.
    fn sse(&self, series: &[f32], alpha: f64, beta: f64, gamma: f64) -> f64 {
        let mut sse = 0.0;
        let mut count = 0usize;
        run_smoother(series, self.config, alpha, beta, gamma, |pred, actual| {
            let e = pred - actual as f64;
            sse += e * e;
            count += 1;
        });
        if count == 0 {
            f64::INFINITY
        } else {
            sse / count as f64
        }
    }

    /// Grid-search the smoothing constants on a raw series.
    pub fn fit_series(&mut self, series: &[f32]) {
        assert!(series.len() >= 8, "series too short for ETS");
        let grid = self.config.grid.max(2);
        let candidates: Vec<f64> = (1..=grid).map(|i| i as f64 / (grid + 1) as f64).collect();
        let mut best = (f64::INFINITY, 0.5, 0.1, 0.1);
        let needs_beta = !matches!(self.config.variant, EtsVariant::Simple);
        let needs_gamma = matches!(self.config.variant, EtsVariant::Seasonal { .. });
        for &a in &candidates {
            let betas: &[f64] = if needs_beta { &candidates } else { &[0.0] };
            for &b in betas {
                let gammas: &[f64] = if needs_gamma { &candidates } else { &[0.0] };
                for &g in gammas {
                    let sse = self.sse(series, a, b, g);
                    if sse < best.0 {
                        best = (sse, a, b, g);
                    }
                }
            }
        }
        self.alpha = best.1;
        self.beta = best.2;
        self.gamma = best.3;
        self.fitted = true;
    }

    /// Forecast `horizon` values following `history`.
    pub fn forecast(&self, history: &[f32], horizon: usize) -> Vec<f32> {
        assert!(self.fitted, "forecast before fit");
        let state = final_state(history, self.config, self.alpha, self.beta, self.gamma);
        (1..=horizon)
            .map(|h| state.predict(h, self.config) as f32)
            .collect()
    }
}

/// Smoother state: level, trend and seasonal components.
struct SmootherState {
    level: f64,
    trend: f64,
    seasonal: Vec<f64>,
    t: usize,
    damping: f64,
}

impl SmootherState {
    fn predict(&self, h: usize, cfg: EtsConfig) -> f64 {
        // Damped-trend extrapolation: sum of phi^1..phi^h.
        let phi_sum: f64 = (1..=h).map(|i| self.damping.powi(i as i32)).sum();
        let mut out = self.level + phi_sum * self.trend;
        if let EtsVariant::Seasonal { period } = cfg.variant {
            if period > 0 && !self.seasonal.is_empty() {
                // `t` is the index of the last observed sample, so the
                // sample being forecast sits at index t + h.
                out += self.seasonal[(self.t + h) % period];
            }
        }
        out
    }
}

/// Run the additive Holt–Winters recursion over `series`, invoking
/// `on_step(prediction, actual)` for each one-step-ahead forecast, and
/// return the final state.
fn run_smoother(
    series: &[f32],
    cfg: EtsConfig,
    alpha: f64,
    beta: f64,
    gamma: f64,
    mut on_step: impl FnMut(f64, f32),
) -> SmootherState {
    let period = match cfg.variant {
        EtsVariant::Seasonal { period } => period.max(1),
        _ => 1,
    };
    // Initialise the level from the first season's mean and the seasonal
    // components from the deviations within it — the standard Holt–Winters
    // warm start, without which the recursion spends the whole first cycle
    // absorbing the seasonal signal into the trend.
    let warm = period.min(series.len());
    let level0 = tensor::stats::mean(&series[..warm]);
    let seasonal0: Vec<f64> = (0..period)
        .map(|i| {
            if i < warm {
                series[i] as f64 - level0
            } else {
                0.0
            }
        })
        .collect();
    let mut state = SmootherState {
        level: level0,
        // The raw first difference is season-contaminated, so the seasonal
        // variant starts trendless.
        trend: if series.len() > 1 && period == 1 {
            (series[1] - series[0]) as f64
        } else {
            0.0
        },
        seasonal: seasonal0,
        t: 0,
        damping: cfg.damping,
    };
    for (t, &x) in series.iter().enumerate().skip(1) {
        state.t = t - 1;
        let pred = state.predict(1, cfg);
        on_step(pred, x);
        let x = x as f64;
        let season_idx = t % period;
        let seasonal = if matches!(cfg.variant, EtsVariant::Seasonal { .. }) {
            state.seasonal[season_idx]
        } else {
            0.0
        };
        let prev_level = state.level;
        state.level =
            alpha * (x - seasonal) + (1.0 - alpha) * (prev_level + cfg.damping * state.trend);
        if !matches!(cfg.variant, EtsVariant::Simple) {
            state.trend =
                beta * (state.level - prev_level) + (1.0 - beta) * cfg.damping * state.trend;
        }
        if matches!(cfg.variant, EtsVariant::Seasonal { .. }) {
            state.seasonal[season_idx] = gamma * (x - state.level) + (1.0 - gamma) * seasonal;
        }
    }
    state.t = series.len() - 1;
    state
}

fn final_state(series: &[f32], cfg: EtsConfig, alpha: f64, beta: f64, gamma: f64) -> SmootherState {
    run_smoother(series, cfg, alpha, beta, gamma, |_, _| {})
}

impl Forecaster for EtsForecaster {
    fn name(&self) -> &str {
        "ETS"
    }

    fn fit(&mut self, train: &WindowedDataset, _valid: Option<&WindowedDataset>) -> FitReport {
        let start = Instant::now();
        self.target_index = train.target_index;
        self.horizon = train.horizon;
        let series = reconstruct_target_series(train);
        self.fit_series(&series);
        let (truth, pred) = self.evaluate(train);
        FitReport {
            train_loss: vec![timeseries::metrics::mse(&truth, &pred)],
            valid_loss: Vec::new(),
            fit_time: start.elapsed(),
            stopped_early: false,
        }
    }

    fn predict(&self, x: &Tensor) -> Tensor {
        let (n, window, f) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let mut out = Vec::with_capacity(n * self.horizon);
        for i in 0..n {
            let history: Vec<f32> = (0..window)
                .map(|t| x.as_slice()[(i * window + t) * f + self.target_index])
                .collect();
            out.extend(self.forecast(&history, self.horizon));
        }
        Tensor::from_vec(out, &[n, self.horizon])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timeseries::{make_windows, TimeSeriesFrame};

    #[test]
    fn constant_series_forecasts_constant() {
        let series = vec![0.42f32; 100];
        let mut m = EtsForecaster::new(EtsConfig::default());
        m.fit_series(&series);
        let fc = m.forecast(&series[60..100], 4);
        for &v in &fc {
            assert!((v - 0.42).abs() < 1e-3, "drifted: {v}");
        }
    }

    #[test]
    fn trend_variant_extrapolates_a_line() {
        let series: Vec<f32> = (0..150).map(|i| 0.1 + 0.005 * i as f32).collect();
        let mut m = EtsForecaster::new(EtsConfig {
            variant: EtsVariant::Trend,
            damping: 1.0,
            ..Default::default()
        });
        m.fit_series(&series);
        let fc = m.forecast(&series[100..150], 3);
        for (h, &v) in fc.iter().enumerate() {
            let expected = 0.1 + 0.005 * (150 + h) as f32;
            assert!((v - expected).abs() < 0.01, "h={h}: {v} vs {expected}");
        }
    }

    #[test]
    fn seasonal_variant_tracks_a_cycle() {
        let series: Vec<f32> = (0..240)
            .map(|i| 0.5 + 0.2 * ((i % 12) as f32 / 12.0 * std::f32::consts::TAU).sin())
            .collect();
        let mut m = EtsForecaster::new(EtsConfig {
            variant: EtsVariant::Seasonal { period: 12 },
            ..Default::default()
        });
        m.fit_series(&series);
        let fc = m.forecast(&series[..228], 12);
        let truth = &series[228..240];
        let mae = timeseries::metrics::mae(truth, &fc);
        assert!(mae < 0.06, "seasonal forecast mae {mae}");
    }

    #[test]
    fn windowed_interface_and_report() {
        let series: Vec<f32> = (0..200)
            .map(|i| 0.4 + 0.1 * (i as f32 * 0.2).sin())
            .collect();
        let frame = TimeSeriesFrame::from_columns(&[("cpu", series)]).unwrap();
        let ds = make_windows(&frame, "cpu", 20, 2).unwrap();
        let mut m = EtsForecaster::new(EtsConfig::default());
        let report = m.fit(&ds, None);
        assert_eq!(report.train_loss.len(), 1);
        let pred = m.predict(&ds.x);
        assert_eq!(pred.shape(), &[ds.len(), 2]);
        assert!(pred.all_finite());
        let (a, b, _) = m.smoothing();
        assert!(a > 0.0 && a < 1.0 && b >= 0.0);
    }

    #[test]
    #[should_panic(expected = "forecast before fit")]
    fn forecast_requires_fit() {
        EtsForecaster::new(EtsConfig::default()).forecast(&[0.5; 20], 1);
    }
}
