//! RPTCN — the paper's model (Fig. 5): a TCN backbone extended with a fully
//! connected layer (eq. 6) and an attention mechanism (eqs. 7–8) before the
//! output head. Ablation flags expose every component so the
//! `ablation_components` bench can quantify each addition.

use autograd::layers::{Dropout, FeatureAttention, Linear, TemporalAttention};
use autograd::{Graph, ParamStore, SequenceModel, Var};
use tensor::{Rng, Tensor};
use timeseries::WindowedDataset;

use crate::checkpoint::{CheckpointError, ModelState};
use crate::forecaster::{FitReport, Forecaster};
use crate::neural::{self, NeuralTrainSpec};
use crate::tcn::TcnBackbone;

/// Which attention mechanism sits after the FC layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttentionKind {
    /// Paper default: feature attention `g = f_φ(x) ⊙ z` on the FC output.
    Feature,
    /// Discussion-section alternative: attention over the TCN time axis.
    Temporal,
}

/// RPTCN architecture and training knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RptcnConfig {
    pub channels: usize,
    pub levels: usize,
    pub kernel: usize,
    pub dropout: f32,
    pub weight_norm: bool,
    /// Width of the fully connected layer.
    pub fc_dim: usize,
    /// Ablation: include the FC layer.
    pub use_fc: bool,
    /// Ablation: include the attention mechanism.
    pub use_attention: bool,
    pub attention: AttentionKind,
    pub spec: NeuralTrainSpec,
}

impl Default for RptcnConfig {
    fn default() -> Self {
        Self {
            channels: 16,
            levels: 4,
            kernel: 3,
            dropout: 0.1,
            weight_norm: true,
            fc_dim: 32,
            use_fc: true,
            use_attention: true,
            attention: AttentionKind::Feature,
            spec: NeuralTrainSpec {
                learning_rate: 2e-3,
                ..Default::default()
            },
        }
    }
}

pub(crate) struct RptcnNetwork {
    pub(crate) store: ParamStore,
    pub(crate) backbone: TcnBackbone,
    pub(crate) fc: Option<Linear>,
    pub(crate) feature_attention: Option<FeatureAttention>,
    pub(crate) temporal_attention: Option<TemporalAttention>,
    dropout: Dropout,
    pub(crate) head: Linear,
    features: usize,
    horizon: usize,
}

impl SequenceModel for RptcnNetwork {
    fn forward(&self, g: &mut Graph, x: &Tensor, training: bool, rng: &mut Rng) -> Var {
        let time = x.shape()[1];
        let ct = g.input(neural::to_channels_time(x));
        let seq = self.backbone.forward(g, ct, training, rng);

        // Collapse the time axis: temporal attention when configured,
        // otherwise the causally complete final step.
        let mut h = match &self.temporal_attention {
            Some(attn) => attn.forward(g, seq),
            None => g.select_time(seq, time - 1),
        };

        if let Some(fc) = &self.fc {
            h = fc.forward(g, h);
            h = g.relu(h);
            h = self.dropout.apply(g, h, training, rng);
        }
        if let Some(attn) = &self.feature_attention {
            h = attn.forward(g, h, h);
        }
        self.head.forward(g, h)
    }

    fn infer(&self, ctx: &mut autograd::InferenceContext, x: &Tensor) -> Tensor {
        let (batch, time, features) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let mut ct = ctx.take(batch * features * time);
        neural::to_channels_time_into(x, &mut ct);
        let seq = self.backbone.infer(&self.store, ctx, &ct, batch, time);
        ctx.give(ct);
        let ch = self.backbone.out_channels();

        let mut h = match &self.temporal_attention {
            Some(attn) => attn.infer(&self.store, ctx, &seq, batch, time),
            None => {
                let mut last = ctx.take(batch * ch);
                autograd::infer::select_time_into(&seq, &mut last, batch, ch, time, time - 1);
                last
            }
        };
        ctx.give(seq);

        // Dropout is a no-op at inference, so the FC branch is just
        // linear → relu, matching the taped graph with `training=false`.
        if let Some(fc) = &self.fc {
            let mut next = fc.infer(&self.store, ctx, &h, batch);
            autograd::infer::relu_in_place(&mut next);
            ctx.give(std::mem::replace(&mut h, next));
        }
        if let Some(attn) = &self.feature_attention {
            attn.infer_in_place(&self.store, ctx, &mut h, batch);
        }
        let out = self.head.infer(&self.store, ctx, &h, batch);
        ctx.give(h);
        let result = Tensor::from_vec(out[..batch * self.horizon].to_vec(), &[batch, self.horizon]);
        ctx.give(out);
        result
    }

    fn params(&self) -> &ParamStore {
        &self.store
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn horizon(&self) -> usize {
        self.horizon
    }
}

/// RPTCN as a [`Forecaster`].
pub struct RptcnForecaster {
    config: RptcnConfig,
    network: Option<RptcnNetwork>,
}

impl RptcnForecaster {
    pub fn new(config: RptcnConfig) -> Self {
        Self {
            config,
            network: None,
        }
    }

    /// The paper's configuration.
    pub fn paper_default() -> Self {
        Self::new(RptcnConfig::default())
    }

    pub fn config(&self) -> &RptcnConfig {
        &self.config
    }

    fn build(&self, features: usize, horizon: usize) -> RptcnNetwork {
        let cfg = &self.config;
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(cfg.spec.seed.wrapping_add(0xA11));
        let backbone = TcnBackbone::new(
            &mut store,
            "rptcn",
            features,
            cfg.channels,
            cfg.levels,
            cfg.kernel,
            cfg.dropout,
            cfg.weight_norm,
            &mut rng,
        );
        let temporal_attention = (cfg.use_attention && cfg.attention == AttentionKind::Temporal)
            .then(|| TemporalAttention::new(&mut store, "tattn", cfg.channels, &mut rng));
        let fc = cfg
            .use_fc
            .then(|| Linear::new(&mut store, "fc", cfg.channels, cfg.fc_dim, &mut rng));
        let attn_dim = if cfg.use_fc { cfg.fc_dim } else { cfg.channels };
        let feature_attention = (cfg.use_attention && cfg.attention == AttentionKind::Feature)
            .then(|| FeatureAttention::new(&mut store, "attn", attn_dim, &mut rng));
        let head = Linear::with_init(
            &mut store,
            "head",
            attn_dim,
            horizon,
            autograd::Init::Constant(0.0),
            true,
            &mut rng,
        );
        RptcnNetwork {
            store,
            backbone,
            fc,
            feature_attention,
            temporal_attention,
            dropout: Dropout::new(cfg.dropout),
            head,
            features,
            horizon,
        }
    }

    /// Reconstruct the config recorded in a checkpoint snapshot.
    pub fn config_from_state(state: &ModelState) -> Result<RptcnConfig, CheckpointError> {
        if state.arch != "RPTCN" {
            return Err(CheckpointError(format!(
                "expected RPTCN state, got `{}`",
                state.arch
            )));
        }
        Ok(RptcnConfig {
            channels: state.require_usize("channels")?,
            levels: state.require_usize("levels")?,
            kernel: state.require_usize("kernel")?,
            dropout: state.require_f32("dropout")?,
            weight_norm: state.require_bool("weight_norm")?,
            fc_dim: state.require_usize("fc_dim")?,
            use_fc: state.require_bool("use_fc")?,
            use_attention: state.require_bool("use_attention")?,
            attention: if state.require_bool("temporal_attention")? {
                AttentionKind::Temporal
            } else {
                AttentionKind::Feature
            },
            spec: neural::spec_from_meta(state)?,
        })
    }

    /// Rebuild a fitted forecaster from a checkpoint snapshot.
    pub fn from_state(state: &ModelState) -> Result<Self, CheckpointError> {
        let mut m = Self::new(Self::config_from_state(state)?);
        m.load_state(state)?;
        Ok(m)
    }

    /// Scalar parameter count once built.
    pub fn num_parameters(&self) -> Option<usize> {
        self.network.as_ref().map(|n| n.store.num_scalars())
    }

    /// Internal network handle (used by the streaming inference engine).
    pub(crate) fn network(&self) -> Option<&RptcnNetwork> {
        self.network.as_ref()
    }

    /// Build the network without training, perturbing every parameter with
    /// small Gaussian noise. The head and attention projection are
    /// zero-initialised, so a freshly built network would short-circuit most
    /// of the forward path; the noise makes benchmarks and parity tests
    /// exercise realistic weights without paying for a fit.
    pub fn init_untrained(&mut self, features: usize, horizon: usize) {
        let mut net = self.build(features, horizon);
        let mut rng = Rng::seed_from(self.config.spec.seed.wrapping_add(0x1DF5));
        let perturbed: Vec<(String, Tensor)> = net
            .store
            .export_named()
            .into_iter()
            .map(|(name, mut t)| {
                let noise = Tensor::rand_normal(t.shape(), 0.0, 0.05, &mut rng);
                for (v, &n) in t.as_mut_slice().iter_mut().zip(noise.as_slice()) {
                    *v += n;
                }
                (name, t)
            })
            .collect();
        net.store
            .import_named(&perturbed)
            .expect("perturbed tensors keep their names and shapes"); // lint: allow(r2) — same-store round trip
        self.network = Some(net);
    }

    /// Taped-graph inference — the parity/benchmark reference for
    /// [`Forecaster::predict`]'s tape-free path.
    pub fn predict_taped(&self, x: &Tensor) -> Tensor {
        let net = self.network.as_ref().expect("predict before fit"); // lint: allow(r2) — Forecaster::predict contract
        neural::predict_network_taped(net, x, self.config.spec.batch_size)
    }

    /// Tape-free batched inference on an explicit worker pool instead of
    /// the process-global one — the seam `bench_infer` uses to measure
    /// throughput scaling across worker counts within a single process.
    /// Bitwise identical to [`Forecaster::predict`] for any pool size.
    pub fn predict_with_executor(
        &self,
        x: &Tensor,
        exec: &autograd::batch_exec::BatchExecutor,
    ) -> Tensor {
        let net = self.network.as_ref().expect("predict before fit"); // lint: allow(r2) — Forecaster::predict contract
        autograd::infer::predict_on(net, x, self.config.spec.batch_size.max(1), exec)
    }
}

impl Forecaster for RptcnForecaster {
    fn name(&self) -> &str {
        "RPTCN"
    }

    fn fit(&mut self, train: &WindowedDataset, valid: Option<&WindowedDataset>) -> FitReport {
        let mut net = self.build(train.num_features(), train.horizon);
        let report = neural::fit_network(&mut net, self.config.spec, train, valid);
        self.network = Some(net);
        report
    }

    fn predict(&self, x: &Tensor) -> Tensor {
        let net = self.network.as_ref().expect("predict before fit"); // lint: allow(r2) — Forecaster::predict contract
        neural::predict_network(net, x, self.config.spec.batch_size)
    }

    fn state(&self) -> Option<ModelState> {
        let net = self.network.as_ref()?;
        let cfg = &self.config;
        let mut st = ModelState::new("RPTCN", net.features, net.horizon);
        st.push_meta("channels", cfg.channels as f64);
        st.push_meta("levels", cfg.levels as f64);
        st.push_meta("kernel", cfg.kernel as f64);
        st.push_meta("dropout", cfg.dropout as f64);
        st.push_meta("weight_norm", cfg.weight_norm as u8 as f64);
        st.push_meta("fc_dim", cfg.fc_dim as f64);
        st.push_meta("use_fc", cfg.use_fc as u8 as f64);
        st.push_meta("use_attention", cfg.use_attention as u8 as f64);
        st.push_meta(
            "temporal_attention",
            (cfg.attention == AttentionKind::Temporal) as u8 as f64,
        );
        neural::push_spec_meta(&mut st, &cfg.spec);
        st.tensors = net.store.export_named();
        Some(st)
    }

    fn load_state(&mut self, state: &ModelState) -> Result<(), CheckpointError> {
        self.config = Self::config_from_state(state)?;
        let mut net = self.build(state.features, state.horizon);
        net.store.import_named(&state.tensors)?;
        self.network = Some(net);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timeseries::{make_windows, TimeSeriesFrame};

    fn dataset() -> WindowedDataset {
        let series: Vec<f32> = (0..400)
            .map(|i| 0.5 + 0.35 * (i as f32 * 0.2).sin())
            .collect();
        let frame = TimeSeriesFrame::from_columns(&[("cpu", series)]).unwrap();
        make_windows(&frame, "cpu", 16, 1).unwrap()
    }

    fn quick_spec() -> NeuralTrainSpec {
        NeuralTrainSpec {
            epochs: 15,
            learning_rate: 3e-3,
            ..Default::default()
        }
    }

    #[test]
    fn full_model_learns() {
        let ds = dataset();
        let mut model = RptcnForecaster::new(RptcnConfig {
            channels: 8,
            levels: 3,
            dropout: 0.0,
            fc_dim: 16,
            spec: quick_spec(),
            ..Default::default()
        });
        let report = model.fit(&ds, None);
        assert!(report.final_train_loss() < report.train_loss[0] * 0.5);
        let (truth, pred) = model.evaluate(&ds);
        let mse = timeseries::metrics::mse(&truth, &pred);
        assert!(mse < 0.01, "RPTCN mse {mse}");
        assert!(model.num_parameters().unwrap() > 0);
    }

    #[test]
    fn every_ablation_variant_trains() {
        let ds = dataset();
        let variants = [
            (true, true, AttentionKind::Feature),
            (true, false, AttentionKind::Feature),
            (false, true, AttentionKind::Feature),
            (false, false, AttentionKind::Feature),
            (true, true, AttentionKind::Temporal),
        ];
        for (use_fc, use_attention, attention) in variants {
            let mut model = RptcnForecaster::new(RptcnConfig {
                channels: 6,
                levels: 2,
                fc_dim: 12,
                dropout: 0.0,
                use_fc,
                use_attention,
                attention,
                spec: NeuralTrainSpec {
                    epochs: 3,
                    ..quick_spec()
                },
                ..Default::default()
            });
            let report = model.fit(&ds, None);
            assert!(
                report.train_loss.iter().all(|l| l.is_finite()),
                "variant fc={use_fc} attn={use_attention} {attention:?} diverged"
            );
            let pred = model.predict(&ds.x);
            assert!(pred.all_finite());
            assert_eq!(pred.shape(), &[ds.len(), 1]);
        }
    }

    #[test]
    fn paper_default_has_documented_components() {
        let m = RptcnForecaster::paper_default();
        assert!(m.config().use_fc);
        assert!(m.config().use_attention);
        assert_eq!(m.config().attention, AttentionKind::Feature);
        assert_eq!(m.config().levels, 4);
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = dataset();
        let run = || {
            let mut m = RptcnForecaster::new(RptcnConfig {
                channels: 6,
                levels: 2,
                dropout: 0.0,
                spec: NeuralTrainSpec {
                    epochs: 3,
                    ..quick_spec()
                },
                ..Default::default()
            });
            m.fit(&ds, None);
            m.predict(&ds.x)
        };
        let a = run();
        let b = run();
        assert!(a.allclose(&b, 1e-6), "training not reproducible");
    }
}
