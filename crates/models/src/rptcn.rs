//! RPTCN — the paper's model (Fig. 5): a TCN backbone extended with a fully
//! connected layer (eq. 6) and an attention mechanism (eqs. 7–8) before the
//! output head. Ablation flags expose every component so the
//! `ablation_components` bench can quantify each addition.

use autograd::layers::{Dropout, FeatureAttention, Linear, TemporalAttention};
use autograd::{Graph, ParamStore, SequenceModel, Var};
use tensor::{Rng, Tensor};
use timeseries::WindowedDataset;

use crate::checkpoint::{CheckpointError, ModelState};
use crate::forecaster::{FitReport, Forecaster};
use crate::neural::{self, NeuralTrainSpec};
use crate::tcn::TcnBackbone;

/// Which attention mechanism sits after the FC layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttentionKind {
    /// Paper default: feature attention `g = f_φ(x) ⊙ z` on the FC output.
    Feature,
    /// Discussion-section alternative: attention over the TCN time axis.
    Temporal,
}

/// RPTCN architecture and training knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RptcnConfig {
    pub channels: usize,
    pub levels: usize,
    pub kernel: usize,
    pub dropout: f32,
    pub weight_norm: bool,
    /// Width of the fully connected layer.
    pub fc_dim: usize,
    /// Ablation: include the FC layer.
    pub use_fc: bool,
    /// Ablation: include the attention mechanism.
    pub use_attention: bool,
    pub attention: AttentionKind,
    /// Optional quantile heads: `(lo, hi)` pinball levels. When set, a
    /// second zero-initialised linear head emits per-step `q_lo`/`q_hi`
    /// estimates, trained jointly with the point head via the composite
    /// `LossKind::PointInterval` loss. `Forecaster::predict` still returns
    /// the point block only; [`RptcnForecaster::predict_quantiles`] exposes
    /// the wide `[n, 3·horizon]` output.
    pub quantiles: Option<(f32, f32)>,
    pub spec: NeuralTrainSpec,
}

impl Default for RptcnConfig {
    fn default() -> Self {
        Self {
            channels: 16,
            levels: 4,
            kernel: 3,
            dropout: 0.1,
            weight_norm: true,
            fc_dim: 32,
            use_fc: true,
            use_attention: true,
            attention: AttentionKind::Feature,
            quantiles: None,
            spec: NeuralTrainSpec {
                learning_rate: 2e-3,
                ..Default::default()
            },
        }
    }
}

pub(crate) struct RptcnNetwork {
    pub(crate) store: ParamStore,
    pub(crate) backbone: TcnBackbone,
    pub(crate) fc: Option<Linear>,
    pub(crate) feature_attention: Option<FeatureAttention>,
    pub(crate) temporal_attention: Option<TemporalAttention>,
    dropout: Dropout,
    pub(crate) head: Linear,
    /// Optional `[attn_dim → 2·horizon]` head emitting per-row
    /// `[q_lo | q_hi]` column blocks appended after the point block.
    quantile_head: Option<Linear>,
    features: usize,
    /// Point-forecast horizon; the network's total output width is
    /// `3·horizon` when the quantile head is present (see [`Self::horizon`]).
    horizon: usize,
}

impl SequenceModel for RptcnNetwork {
    fn forward(&self, g: &mut Graph, x: &Tensor, training: bool, rng: &mut Rng) -> Var {
        let time = x.shape()[1];
        let ct = g.input(neural::to_channels_time(x));
        let seq = self.backbone.forward(g, ct, training, rng);

        // Collapse the time axis: temporal attention when configured,
        // otherwise the causally complete final step.
        let mut h = match &self.temporal_attention {
            Some(attn) => attn.forward(g, seq),
            None => g.select_time(seq, time - 1),
        };

        if let Some(fc) = &self.fc {
            h = fc.forward(g, h);
            h = g.relu(h);
            h = self.dropout.apply(g, h, training, rng);
        }
        if let Some(attn) = &self.feature_attention {
            h = attn.forward(g, h, h);
        }
        let point = self.head.forward(g, h);
        match &self.quantile_head {
            Some(q) => {
                let quant = q.forward(g, h);
                g.concat_cols(&[point, quant])
            }
            None => point,
        }
    }

    fn infer(&self, ctx: &mut autograd::InferenceContext, x: &Tensor) -> Tensor {
        let (batch, time, features) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let mut ct = ctx.take(batch * features * time);
        neural::to_channels_time_into(x, &mut ct);
        let seq = self.backbone.infer(&self.store, ctx, &ct, batch, time);
        ctx.give(ct);
        let ch = self.backbone.out_channels();

        let mut h = match &self.temporal_attention {
            Some(attn) => attn.infer(&self.store, ctx, &seq, batch, time),
            None => {
                let mut last = ctx.take(batch * ch);
                autograd::infer::select_time_into(&seq, &mut last, batch, ch, time, time - 1);
                last
            }
        };
        ctx.give(seq);

        // Dropout is a no-op at inference, so the FC branch is just
        // linear → relu, matching the taped graph with `training=false`.
        if let Some(fc) = &self.fc {
            let mut next = fc.infer(&self.store, ctx, &h, batch);
            autograd::infer::relu_in_place(&mut next);
            ctx.give(std::mem::replace(&mut h, next));
        }
        if let Some(attn) = &self.feature_attention {
            attn.infer_in_place(&self.store, ctx, &mut h, batch);
        }
        let out = self.head.infer(&self.store, ctx, &h, batch);
        let result = match &self.quantile_head {
            Some(q) => {
                // Interleave rows as [point | q_lo | q_hi], matching the
                // taped graph's `concat_cols([head, quantile_head])`.
                let qout = q.infer(&self.store, ctx, &h, batch);
                let hz = self.horizon;
                let mut data = vec![0.0f32; batch * 3 * hz];
                for b in 0..batch {
                    data[b * 3 * hz..b * 3 * hz + hz].copy_from_slice(&out[b * hz..(b + 1) * hz]);
                    data[b * 3 * hz + hz..(b + 1) * 3 * hz]
                        .copy_from_slice(&qout[b * 2 * hz..(b + 1) * 2 * hz]);
                }
                ctx.give(qout);
                Tensor::from_vec(data, &[batch, 3 * hz])
            }
            None => Tensor::from_vec(out[..batch * self.horizon].to_vec(), &[batch, self.horizon]),
        };
        ctx.give(h);
        ctx.give(out);
        result
    }

    fn params(&self) -> &ParamStore {
        &self.store
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn horizon(&self) -> usize {
        // Total output width: the tape-free engine and `train::predict`
        // both size their output buffers by this.
        if self.quantile_head.is_some() {
            3 * self.horizon
        } else {
            self.horizon
        }
    }
}

/// RPTCN as a [`Forecaster`].
pub struct RptcnForecaster {
    config: RptcnConfig,
    network: Option<RptcnNetwork>,
}

impl RptcnForecaster {
    pub fn new(config: RptcnConfig) -> Self {
        Self {
            config,
            network: None,
        }
    }

    /// The paper's configuration.
    pub fn paper_default() -> Self {
        Self::new(RptcnConfig::default())
    }

    pub fn config(&self) -> &RptcnConfig {
        &self.config
    }

    fn build(&self, features: usize, horizon: usize) -> RptcnNetwork {
        let cfg = &self.config;
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(cfg.spec.seed.wrapping_add(0xA11));
        let backbone = TcnBackbone::new(
            &mut store,
            "rptcn",
            features,
            cfg.channels,
            cfg.levels,
            cfg.kernel,
            cfg.dropout,
            cfg.weight_norm,
            &mut rng,
        );
        let temporal_attention = (cfg.use_attention && cfg.attention == AttentionKind::Temporal)
            .then(|| TemporalAttention::new(&mut store, "tattn", cfg.channels, &mut rng));
        let fc = cfg
            .use_fc
            .then(|| Linear::new(&mut store, "fc", cfg.channels, cfg.fc_dim, &mut rng));
        let attn_dim = if cfg.use_fc { cfg.fc_dim } else { cfg.channels };
        let feature_attention = (cfg.use_attention && cfg.attention == AttentionKind::Feature)
            .then(|| FeatureAttention::new(&mut store, "attn", attn_dim, &mut rng));
        let head = Linear::with_init(
            &mut store,
            "head",
            attn_dim,
            horizon,
            autograd::Init::Constant(0.0),
            true,
            &mut rng,
        );
        let quantile_head = cfg.quantiles.is_some().then(|| {
            Linear::with_init(
                &mut store,
                "qhead",
                attn_dim,
                2 * horizon,
                autograd::Init::Constant(0.0),
                true,
                &mut rng,
            )
        });
        RptcnNetwork {
            store,
            backbone,
            fc,
            feature_attention,
            temporal_attention,
            dropout: Dropout::new(cfg.dropout),
            head,
            quantile_head,
            features,
            horizon,
        }
    }

    /// Reconstruct the config recorded in a checkpoint snapshot.
    pub fn config_from_state(state: &ModelState) -> Result<RptcnConfig, CheckpointError> {
        if state.arch != "RPTCN" {
            return Err(CheckpointError(format!(
                "expected RPTCN state, got `{}`",
                state.arch
            )));
        }
        Ok(RptcnConfig {
            channels: state.require_usize("channels")?,
            levels: state.require_usize("levels")?,
            kernel: state.require_usize("kernel")?,
            dropout: state.require_f32("dropout")?,
            weight_norm: state.require_bool("weight_norm")?,
            fc_dim: state.require_usize("fc_dim")?,
            use_fc: state.require_bool("use_fc")?,
            use_attention: state.require_bool("use_attention")?,
            attention: if state.require_bool("temporal_attention")? {
                AttentionKind::Temporal
            } else {
                AttentionKind::Feature
            },
            // Optional keys so pre-quantile checkpoints still load.
            quantiles: match (state.meta("quantile_lo"), state.meta("quantile_hi")) {
                (Some(lo), Some(hi)) => Some((lo as f32, hi as f32)),
                _ => None,
            },
            spec: neural::spec_from_meta(state)?,
        })
    }

    /// Rebuild a fitted forecaster from a checkpoint snapshot.
    pub fn from_state(state: &ModelState) -> Result<Self, CheckpointError> {
        let mut m = Self::new(Self::config_from_state(state)?);
        m.load_state(state)?;
        Ok(m)
    }

    /// Scalar parameter count once built.
    pub fn num_parameters(&self) -> Option<usize> {
        self.network.as_ref().map(|n| n.store.num_scalars())
    }

    /// Internal network handle (used by the streaming inference engine).
    pub(crate) fn network(&self) -> Option<&RptcnNetwork> {
        self.network.as_ref()
    }

    /// Build the network without training, perturbing every parameter with
    /// small Gaussian noise. The head and attention projection are
    /// zero-initialised, so a freshly built network would short-circuit most
    /// of the forward path; the noise makes benchmarks and parity tests
    /// exercise realistic weights without paying for a fit.
    pub fn init_untrained(&mut self, features: usize, horizon: usize) {
        let mut net = self.build(features, horizon);
        let mut rng = Rng::seed_from(self.config.spec.seed.wrapping_add(0x1DF5));
        let perturbed: Vec<(String, Tensor)> = net
            .store
            .export_named()
            .into_iter()
            .map(|(name, mut t)| {
                let noise = Tensor::rand_normal(t.shape(), 0.0, 0.05, &mut rng);
                for (v, &n) in t.as_mut_slice().iter_mut().zip(noise.as_slice()) {
                    *v += n;
                }
                (name, t)
            })
            .collect();
        net.store
            .import_named(&perturbed)
            .expect("perturbed tensors keep their names and shapes"); // lint: allow(r2) — same-store round trip
        self.network = Some(net);
    }

    /// Taped-graph inference — the parity/benchmark reference for
    /// [`Forecaster::predict`]'s tape-free path.
    pub fn predict_taped(&self, x: &Tensor) -> Tensor {
        let net = self.network.as_ref().expect("predict before fit"); // lint: allow(r2) — Forecaster::predict contract
        self.point_block(neural::predict_network_taped(
            net,
            x,
            self.config.spec.batch_size,
        ))
    }

    /// Full multi-head output: `[n, 3·horizon]` rows laid out
    /// `[point | q_lo | q_hi]`. `None` when the model was built without
    /// quantile heads.
    pub fn predict_quantiles(&self, x: &Tensor) -> Option<Tensor> {
        self.config.quantiles?;
        let net = self.network.as_ref().expect("predict before fit"); // lint: allow(r2) — Forecaster::predict contract
        Some(neural::predict_network(net, x, self.config.spec.batch_size))
    }

    /// Slice the point block out of a wide `[n, 3h]` multi-head prediction;
    /// identity for point-only models. A plain row-prefix copy, so point
    /// forecasts stay bitwise-identical with or without quantile heads.
    fn point_block(&self, wide: Tensor) -> Tensor {
        if self.config.quantiles.is_none() {
            return wide;
        }
        let (n, w) = (wide.shape()[0], wide.shape()[1]);
        let h = w / 3;
        let src = wide.as_slice();
        let mut out = vec![0.0f32; n * h];
        for r in 0..n {
            out[r * h..(r + 1) * h].copy_from_slice(&src[r * w..r * w + h]);
        }
        Tensor::from_vec(out, &[n, h])
    }

    /// Tape-free batched inference on an explicit worker pool instead of
    /// the process-global one — the seam `bench_infer` uses to measure
    /// throughput scaling across worker counts within a single process.
    /// Bitwise identical to [`Forecaster::predict`] for any pool size.
    pub fn predict_with_executor(
        &self,
        x: &Tensor,
        exec: &autograd::batch_exec::BatchExecutor,
    ) -> Tensor {
        let net = self.network.as_ref().expect("predict before fit"); // lint: allow(r2) — Forecaster::predict contract
        self.point_block(autograd::infer::predict_on(
            net,
            x,
            self.config.spec.batch_size.max(1),
            exec,
        ))
    }
}

impl Forecaster for RptcnForecaster {
    fn name(&self) -> &str {
        "RPTCN"
    }

    fn fit(&mut self, train: &WindowedDataset, valid: Option<&WindowedDataset>) -> FitReport {
        let mut net = self.build(train.num_features(), train.horizon);
        let loss = match self.config.quantiles {
            Some((lo, hi)) => autograd::LossKind::PointInterval { lo, hi },
            None => autograd::LossKind::Mse,
        };
        let report = neural::fit_network_with_loss(&mut net, self.config.spec, loss, train, valid);
        self.network = Some(net);
        report
    }

    fn predict(&self, x: &Tensor) -> Tensor {
        let net = self.network.as_ref().expect("predict before fit"); // lint: allow(r2) — Forecaster::predict contract
        self.point_block(neural::predict_network(net, x, self.config.spec.batch_size))
    }

    fn state(&self) -> Option<ModelState> {
        let net = self.network.as_ref()?;
        let cfg = &self.config;
        let mut st = ModelState::new("RPTCN", net.features, net.horizon);
        st.push_meta("channels", cfg.channels as f64);
        st.push_meta("levels", cfg.levels as f64);
        st.push_meta("kernel", cfg.kernel as f64);
        st.push_meta("dropout", cfg.dropout as f64);
        st.push_meta("weight_norm", cfg.weight_norm as u8 as f64);
        st.push_meta("fc_dim", cfg.fc_dim as f64);
        st.push_meta("use_fc", cfg.use_fc as u8 as f64);
        st.push_meta("use_attention", cfg.use_attention as u8 as f64);
        st.push_meta(
            "temporal_attention",
            (cfg.attention == AttentionKind::Temporal) as u8 as f64,
        );
        if let Some((lo, hi)) = cfg.quantiles {
            st.push_meta("quantile_lo", lo as f64);
            st.push_meta("quantile_hi", hi as f64);
        }
        neural::push_spec_meta(&mut st, &cfg.spec);
        st.tensors = net.store.export_named();
        Some(st)
    }

    fn load_state(&mut self, state: &ModelState) -> Result<(), CheckpointError> {
        self.config = Self::config_from_state(state)?;
        let mut net = self.build(state.features, state.horizon);
        net.store.import_named(&state.tensors)?;
        self.network = Some(net);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timeseries::{make_windows, TimeSeriesFrame};

    fn dataset() -> WindowedDataset {
        let series: Vec<f32> = (0..400)
            .map(|i| 0.5 + 0.35 * (i as f32 * 0.2).sin())
            .collect();
        let frame = TimeSeriesFrame::from_columns(&[("cpu", series)]).unwrap();
        make_windows(&frame, "cpu", 16, 1).unwrap()
    }

    fn quick_spec() -> NeuralTrainSpec {
        NeuralTrainSpec {
            epochs: 15,
            learning_rate: 3e-3,
            ..Default::default()
        }
    }

    #[test]
    fn full_model_learns() {
        let ds = dataset();
        let mut model = RptcnForecaster::new(RptcnConfig {
            channels: 8,
            levels: 3,
            dropout: 0.0,
            fc_dim: 16,
            spec: quick_spec(),
            ..Default::default()
        });
        let report = model.fit(&ds, None);
        assert!(report.final_train_loss() < report.train_loss[0] * 0.5);
        let (truth, pred) = model.evaluate(&ds);
        let mse = timeseries::metrics::mse(&truth, &pred);
        assert!(mse < 0.01, "RPTCN mse {mse}");
        assert!(model.num_parameters().unwrap() > 0);
    }

    #[test]
    fn every_ablation_variant_trains() {
        let ds = dataset();
        let variants = [
            (true, true, AttentionKind::Feature),
            (true, false, AttentionKind::Feature),
            (false, true, AttentionKind::Feature),
            (false, false, AttentionKind::Feature),
            (true, true, AttentionKind::Temporal),
        ];
        for (use_fc, use_attention, attention) in variants {
            let mut model = RptcnForecaster::new(RptcnConfig {
                channels: 6,
                levels: 2,
                fc_dim: 12,
                dropout: 0.0,
                use_fc,
                use_attention,
                attention,
                spec: NeuralTrainSpec {
                    epochs: 3,
                    ..quick_spec()
                },
                ..Default::default()
            });
            let report = model.fit(&ds, None);
            assert!(
                report.train_loss.iter().all(|l| l.is_finite()),
                "variant fc={use_fc} attn={use_attention} {attention:?} diverged"
            );
            let pred = model.predict(&ds.x);
            assert!(pred.all_finite());
            assert_eq!(pred.shape(), &[ds.len(), 1]);
        }
    }

    #[test]
    fn paper_default_has_documented_components() {
        let m = RptcnForecaster::paper_default();
        assert!(m.config().use_fc);
        assert!(m.config().use_attention);
        assert_eq!(m.config().attention, AttentionKind::Feature);
        assert_eq!(m.config().levels, 4);
    }

    #[test]
    fn quantile_heads_learn_an_ordered_interval() {
        let ds = dataset();
        let mut model = RptcnForecaster::new(RptcnConfig {
            channels: 8,
            levels: 3,
            dropout: 0.0,
            fc_dim: 16,
            quantiles: Some((0.1, 0.9)),
            spec: quick_spec(),
            ..Default::default()
        });
        model.fit(&ds, None);
        let point = model.predict(&ds.x);
        assert_eq!(point.shape(), &[ds.len(), 1], "point block shape");
        let wide = model.predict_quantiles(&ds.x).expect("quantile model");
        assert_eq!(wide.shape(), &[ds.len(), 3]);
        assert!(wide.all_finite());
        // Point block of the wide output must equal `predict` bitwise.
        let mut ordered = 0usize;
        for r in 0..ds.len() {
            assert_eq!(wide.at(&[r, 0]), point.at(&[r, 0]), "row {r} point");
            if wide.at(&[r, 1]) <= wide.at(&[r, 2]) {
                ordered += 1;
            }
        }
        // Pinball training at (0.1, 0.9) should order lo ≤ hi on nearly
        // every window of a smooth series.
        assert!(
            ordered * 10 >= ds.len() * 9,
            "only {ordered}/{} rows ordered",
            ds.len()
        );
        // The interval should bracket most of the truth.
        let truth = &ds.y;
        let mut covered = 0usize;
        for r in 0..ds.len() {
            let t = truth.at(&[r, 0]);
            if wide.at(&[r, 1]) <= t && t <= wide.at(&[r, 2]) {
                covered += 1;
            }
        }
        assert!(
            covered * 2 >= ds.len(),
            "quantile interval covers only {covered}/{} targets",
            ds.len()
        );
    }

    #[test]
    fn quantile_model_tape_free_matches_taped_and_round_trips() {
        let ds = dataset();
        let mut model = RptcnForecaster::new(RptcnConfig {
            channels: 6,
            levels: 2,
            dropout: 0.0,
            fc_dim: 12,
            quantiles: Some((0.05, 0.95)),
            spec: NeuralTrainSpec {
                epochs: 2,
                ..quick_spec()
            },
            ..Default::default()
        });
        model.fit(&ds, None);
        let tape_free = model.predict(&ds.x);
        let taped = model.predict_taped(&ds.x);
        assert_eq!(tape_free.shape(), taped.shape());
        assert!(tape_free.allclose(&taped, 1e-5), "taped/tape-free diverged");

        let state = model.state().expect("fitted state");
        let restored = RptcnForecaster::from_state(&state).expect("round trip");
        assert_eq!(restored.config().quantiles, Some((0.05, 0.95)));
        let again = restored.predict(&ds.x);
        assert_eq!(
            again.as_slice(),
            tape_free.as_slice(),
            "restore changed output"
        );
        let wide = restored.predict_quantiles(&ds.x).expect("quantile model");
        assert_eq!(wide.shape(), &[ds.len(), 3]);
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = dataset();
        let run = || {
            let mut m = RptcnForecaster::new(RptcnConfig {
                channels: 6,
                levels: 2,
                dropout: 0.0,
                spec: NeuralTrainSpec {
                    epochs: 3,
                    ..quick_spec()
                },
                ..Default::default()
            });
            m.fit(&ds, None);
            m.predict(&ds.x)
        };
        let a = run();
        let b = run();
        assert!(a.allclose(&b, 1e-6), "training not reproducible");
    }
}
