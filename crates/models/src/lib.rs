//! # models — RPTCN and every baseline the paper compares against
//!
//! All five models of Table II behind one [`Forecaster`] trait:
//!
//! | Model | Module | Notes |
//! |---|---|---|
//! | RPTCN | [`rptcn`] | TCN + fully-connected layer + attention (the paper's contribution), with ablation flags for each component |
//! | TCN | [`tcn`] | plain backbone + dense head (ablation reference) |
//! | LSTM | [`lstm`] | stacked LSTM baseline |
//! | CNN-LSTM | [`cnn_lstm`] | causal conv feature extractor + LSTM |
//! | XGBoost | [`gbt`] | from-scratch second-order gradient-boosted trees |
//! | ARIMA | [`arima`] | Hannan–Rissanen-estimated ARIMA(p, d, q) |
//! | Naive | [`forecaster::NaiveForecaster`] | persistence sanity floor |
//!
//! Deep models share [`neural::NeuralTrainSpec`] (Adam + MSE +
//! early stopping), mirroring the paper's Keras setup.

pub mod arima;
pub mod checkpoint;
pub mod cnn_lstm;
pub mod ets;
pub mod forecaster;
pub mod gbt;
pub mod gru;
pub mod linear;
pub mod lstm;
mod neural;
pub mod rptcn;
pub mod streaming;
pub mod tcn;

pub use arima::{ArimaConfig, ArimaForecaster};
pub use checkpoint::{
    forecaster_from_state, forecaster_like, load_model, save_model, CheckpointError, ModelState,
};
pub use cnn_lstm::{CnnLstmConfig, CnnLstmForecaster};
pub use ets::{EtsConfig, EtsForecaster, EtsVariant};
pub use forecaster::{FitReport, Forecaster, NaiveForecaster};
pub use gbt::{GbtConfig, GbtForecaster};
pub use gru::{GruConfig, GruForecaster};
pub use linear::{LinearConfig, LinearForecaster};
pub use lstm::{LstmConfig, LstmForecaster};
pub use neural::NeuralTrainSpec;
pub use rptcn::{AttentionKind, RptcnConfig, RptcnForecaster};
pub use streaming::{StreamingError, StreamingRptcn};
pub use tcn::{TcnBackbone, TcnConfig, TcnForecaster, TemporalBlock};
