//! ARIMA(p, d, q) baseline, estimated with the Hannan–Rissanen two-stage
//! procedure: a long autoregression (via Levinson–Durbin) supplies residual
//! estimates, then one ridge-regularised OLS fits the AR and MA
//! coefficients jointly. Forecasting is the standard recursion with future
//! innovations set to zero, followed by un-differencing.

use std::time::Instant;

use tensor::{linalg, stats, Tensor};
use timeseries::WindowedDataset;

use crate::forecaster::{FitReport, Forecaster};

/// ARIMA hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArimaConfig {
    /// Autoregressive order.
    pub p: usize,
    /// Differencing order (0 or 1 cover utilisation traces).
    pub d: usize,
    /// Moving-average order.
    pub q: usize,
    /// Ridge added to the OLS normal equations.
    pub ridge: f32,
}

impl Default for ArimaConfig {
    fn default() -> Self {
        Self {
            p: 3,
            d: 1,
            q: 1,
            ridge: 1e-4,
        }
    }
}

/// Fitted ARIMA model implementing [`Forecaster`]. Only the target column
/// of each window is consulted — ARIMA is the paper's univariate baseline.
#[derive(Debug, Clone)]
pub struct ArimaForecaster {
    config: ArimaConfig,
    phi: Vec<f64>,
    theta: Vec<f64>,
    intercept: f64,
    target_index: usize,
    horizon: usize,
    fitted: bool,
}

impl ArimaForecaster {
    pub fn new(config: ArimaConfig) -> Self {
        Self {
            config,
            phi: Vec::new(),
            theta: Vec::new(),
            intercept: 0.0,
            target_index: 0,
            horizon: 1,
            fitted: false,
        }
    }

    /// The estimated AR coefficients.
    pub fn phi(&self) -> &[f64] {
        &self.phi
    }

    /// The estimated MA coefficients.
    pub fn theta(&self) -> &[f64] {
        &self.theta
    }

    /// Fit directly on a raw univariate series (used by tests and by the
    /// windowed [`Forecaster::fit`] after reconstructing the series).
    pub fn fit_series(&mut self, series: &[f32]) {
        let z = difference(series, self.config.d);
        let (p, q) = (self.config.p, self.config.q);
        assert!(
            z.len() > (p + q + 2).max(8),
            "series too short for ARIMA({p},{},{q})",
            self.config.d
        );

        if q == 0 {
            // Pure AR: Yule–Walker via Levinson–Durbin is exact and fast.
            let acov = stats::autocovariance(&z, p);
            if let Ok((phi, _)) = linalg::levinson_durbin(&acov, p) {
                self.phi = phi;
                self.theta.clear();
                let mean = stats::mean(&z);
                self.intercept = mean * (1.0 - self.phi.iter().sum::<f64>());
                self.fitted = true;
                return;
            }
        }

        // Stage 1: long AR to estimate innovations.
        let long_order = (p + q + 4).min(z.len() / 4).max(1);
        let acov = stats::autocovariance(&z, long_order);
        let long_phi = match linalg::levinson_durbin(&acov, long_order) {
            Ok((phi, _)) => phi,
            Err(_) => vec![0.0; long_order],
        };
        let mean = stats::mean(&z);
        let mut resid = vec![0.0f64; z.len()];
        for t in long_order..z.len() {
            let mut pred = mean;
            for (k, &ph) in long_phi.iter().enumerate() {
                pred += ph * (z[t - 1 - k] as f64 - mean);
            }
            resid[t] = z[t] as f64 - pred;
        }

        // Stage 2: OLS of z_t on lagged z and lagged residuals + intercept.
        let start = long_order + p.max(q);
        let rows = z.len() - start;
        let cols = p + q + 1;
        let mut design = Vec::with_capacity(rows * cols);
        let mut target = Vec::with_capacity(rows);
        for t in start..z.len() {
            for k in 1..=p {
                design.push(z[t - k]);
            }
            for k in 1..=q {
                design.push(resid[t - k] as f32);
            }
            design.push(1.0);
            target.push(z[t]);
        }
        let beta = linalg::least_squares(
            &Tensor::from_vec(design, &[rows, cols]),
            &Tensor::from_vec(target, &[rows]),
            self.config.ridge,
        );
        match beta {
            Ok(beta) => {
                let b = beta.as_slice();
                self.phi = b[..p].iter().map(|&x| x as f64).collect();
                self.theta = b[p..p + q].iter().map(|&x| x as f64).collect();
                self.intercept = b[p + q] as f64;
            }
            Err(_) => {
                // Degenerate design (constant series): fall back to a
                // random-walk model.
                self.phi = vec![0.0; p];
                self.theta = vec![0.0; q];
                self.intercept = mean;
            }
        }
        self.fitted = true;
    }

    /// Forecast `horizon` values following a raw history window.
    pub fn forecast(&self, history: &[f32], horizon: usize) -> Vec<f32> {
        assert!(self.fitted, "forecast before fit");
        let d = self.config.d;
        assert!(history.len() > d + self.config.p, "history too short");
        let z = difference(history, d);
        let (p, q) = (self.config.p, self.config.q);

        // Reconstruct in-sample residuals along the window (zero-initialised).
        let mut resid = vec![0.0f64; z.len()];
        for t in 0..z.len() {
            let mut pred = self.intercept;
            for (k, &ph) in self.phi.iter().enumerate() {
                if t > k {
                    pred += ph * z[t - 1 - k] as f64;
                }
            }
            for (k, &th) in self.theta.iter().enumerate() {
                if t > k {
                    pred += th * resid[t - 1 - k];
                }
            }
            resid[t] = z[t] as f64 - pred;
        }

        // Recursive forecast in differenced space.
        let mut zext: Vec<f64> = z.iter().map(|&v| v as f64).collect();
        let mut rext = resid;
        for _ in 0..horizon {
            let t = zext.len();
            let mut pred = self.intercept;
            for (k, &ph) in self.phi.iter().enumerate() {
                if t > k {
                    pred += ph * zext[t - 1 - k];
                }
            }
            for (k, &th) in self.theta.iter().enumerate() {
                if t > k {
                    pred += th * rext[t - 1 - k];
                }
            }
            let _ = p;
            let _ = q;
            zext.push(pred);
            rext.push(0.0);
        }

        // Un-difference back to the original scale.
        let mut out = Vec::with_capacity(horizon);
        if d == 0 {
            for h in 0..horizon {
                out.push(zext[z.len() + h] as f32);
            }
        } else {
            // Repeated cumulative sums from the last observed values.
            let mut lasts: Vec<f64> = Vec::with_capacity(d);
            let mut cur: Vec<f32> = history.to_vec();
            for _ in 0..d {
                // `fit` validates the history is long enough to difference
                // `d` times; an empty tail would restore as 0.0 offsets.
                lasts.push(cur.last().copied().unwrap_or(0.0) as f64);
                cur = difference(&cur, 1);
            }
            for h in 0..horizon {
                let mut v = zext[z.len() + h];
                for l in lasts.iter_mut().rev() {
                    v += *l;
                    *l = v;
                }
                out.push(v as f32);
            }
        }
        out
    }
}

/// Apply `d` rounds of first differencing.
fn difference(series: &[f32], d: usize) -> Vec<f32> {
    let mut cur = series.to_vec();
    for _ in 0..d {
        cur = cur.windows(2).map(|w| w[1] - w[0]).collect();
    }
    cur
}

/// Stitch the original target series back together from overlapping windows
/// (window 0's history plus every sample's first target value, plus the
/// final sample's full horizon).
pub(crate) fn reconstruct_target_series(ds: &WindowedDataset) -> Vec<f32> {
    let (n, window, f) = (ds.x.shape()[0], ds.window, ds.num_features());
    let mut series = Vec::with_capacity(window + n + ds.horizon - 1);
    for t in 0..window {
        series.push(ds.x.as_slice()[t * f + ds.target_index]);
    }
    for i in 0..n {
        series.push(ds.y.at(&[i, 0]));
    }
    for h in 1..ds.horizon {
        series.push(ds.y.at(&[n - 1, h]));
    }
    series
}

impl Forecaster for ArimaForecaster {
    fn name(&self) -> &str {
        "ARIMA"
    }

    fn fit(&mut self, train: &WindowedDataset, _valid: Option<&WindowedDataset>) -> FitReport {
        let start = Instant::now();
        self.target_index = train.target_index;
        self.horizon = train.horizon;
        let series = reconstruct_target_series(train);
        self.fit_series(&series);
        // Report in-sample one-step MSE as the single "epoch" loss.
        let (truth, pred) = self.evaluate(train);
        FitReport {
            train_loss: vec![timeseries::metrics::mse(&truth, &pred)],
            valid_loss: Vec::new(),
            fit_time: start.elapsed(),
            stopped_early: false,
        }
    }

    fn predict(&self, x: &Tensor) -> Tensor {
        let (n, window, f) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let mut out = Vec::with_capacity(n * self.horizon);
        for i in 0..n {
            let history: Vec<f32> = (0..window)
                .map(|t| x.as_slice()[(i * window + t) * f + self.target_index])
                .collect();
            out.extend(self.forecast(&history, self.horizon));
        }
        Tensor::from_vec(out, &[n, self.horizon])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::Rng;
    use timeseries::{make_windows, TimeSeriesFrame};

    fn ar1_series(phi: f32, n: usize, seed: u64) -> Vec<f32> {
        let mut rng = Rng::seed_from(seed);
        let mut x = 0.0f32;
        (0..n)
            .map(|_| {
                x = phi * x + rng.normal(0.0, 0.1);
                x
            })
            .collect()
    }

    #[test]
    fn pure_ar_recovers_coefficient() {
        let series = ar1_series(0.8, 4000, 1);
        let mut m = ArimaForecaster::new(ArimaConfig {
            p: 1,
            d: 0,
            q: 0,
            ridge: 0.0,
        });
        m.fit_series(&series);
        assert!((m.phi()[0] - 0.8).abs() < 0.05, "phi {:?}", m.phi());
    }

    #[test]
    fn differencing_helper() {
        assert_eq!(difference(&[1.0, 3.0, 6.0, 10.0], 1), vec![2.0, 3.0, 4.0]);
        assert_eq!(difference(&[1.0, 3.0, 6.0, 10.0], 2), vec![1.0, 1.0]);
        assert_eq!(difference(&[5.0, 5.0], 0), vec![5.0, 5.0]);
    }

    #[test]
    fn forecast_of_linear_trend_continues_it() {
        // A straight line is perfectly captured by d=1 with zero noise.
        let series: Vec<f32> = (0..200).map(|i| 0.5 + 0.01 * i as f32).collect();
        let mut m = ArimaForecaster::new(ArimaConfig {
            p: 2,
            d: 1,
            q: 0,
            ridge: 1e-6,
        });
        m.fit_series(&series);
        let fc = m.forecast(&series[170..200], 3);
        for (h, &v) in fc.iter().enumerate() {
            let expected = 0.5 + 0.01 * (200 + h) as f32;
            assert!((v - expected).abs() < 0.01, "h={h}: {v} vs {expected}");
        }
    }

    #[test]
    fn constant_series_forecasts_constant() {
        let series = vec![0.4f32; 100];
        let mut m = ArimaForecaster::new(ArimaConfig::default());
        m.fit_series(&series);
        let fc = m.forecast(&series[70..100], 5);
        for &v in &fc {
            assert!((v - 0.4).abs() < 1e-3, "constant forecast drifted: {v}");
        }
    }

    #[test]
    fn reconstruction_matches_original_series() {
        let series: Vec<f32> = (0..30).map(|i| (i as f32 * 0.37).sin()).collect();
        let frame = TimeSeriesFrame::from_columns(&[("cpu", series.clone())]).unwrap();
        let ds = make_windows(&frame, "cpu", 5, 2).unwrap();
        let rebuilt = reconstruct_target_series(&ds);
        assert_eq!(rebuilt.len(), series.len());
        for (a, b) in rebuilt.iter().zip(&series) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn windowed_fit_and_predict_beat_naive_on_ar_process() {
        let series = ar1_series(0.9, 1200, 7);
        let frame = TimeSeriesFrame::from_columns(&[("cpu", series)]).unwrap();
        let ds = make_windows(&frame, "cpu", 20, 1).unwrap();
        let (train, _, test) = timeseries::split_windows(&ds, timeseries::SplitRatios::PAPER);
        let mut arima = ArimaForecaster::new(ArimaConfig {
            p: 2,
            d: 0,
            q: 1,
            ridge: 1e-4,
        });
        let report = arima.fit(&train, None);
        assert!(report.train_loss[0].is_finite());
        let (truth, pred) = arima.evaluate(&test);
        let arima_mse = timeseries::metrics::mse(&truth, &pred);

        let mut naive = crate::forecaster::NaiveForecaster::new();
        naive.fit(&train, None);
        let (truth_n, pred_n) = naive.evaluate(&test);
        let naive_mse = timeseries::metrics::mse(&truth_n, &pred_n);
        assert!(
            arima_mse < naive_mse,
            "ARIMA ({arima_mse:.5}) lost to persistence ({naive_mse:.5})"
        );
    }

    #[test]
    fn multistep_forecast_has_right_length() {
        let series = ar1_series(0.7, 500, 9);
        let mut m = ArimaForecaster::new(ArimaConfig::default());
        m.fit_series(&series);
        assert_eq!(m.forecast(&series[460..500], 7).len(), 7);
    }

    #[test]
    #[should_panic(expected = "forecast before fit")]
    fn forecast_requires_fit() {
        let m = ArimaForecaster::new(ArimaConfig::default());
        m.forecast(&[0.0; 30], 1);
    }
}
