//! Gradient-boosted regression trees in the XGBoost formulation — the
//! paper's "XGBoost" baseline, built from scratch.
//!
//! Second-order boosting with squared loss (`g = ŷ − y`, `h = 1`), exact
//! greedy splits over pre-sorted features, L2 leaf regularisation `λ`,
//! minimum split gain `γ`, shrinkage, and row/column subsampling. Split
//! search parallelises over features with rayon.

use std::time::Instant;

use rayon::prelude::*;
use tensor::{Rng, Tensor};
use timeseries::WindowedDataset;

use crate::forecaster::{FitReport, Forecaster};

/// Boosting hyper-parameters (defaults follow common XGBoost practice).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GbtConfig {
    pub n_rounds: usize,
    pub max_depth: usize,
    pub learning_rate: f32,
    /// L2 regularisation on leaf weights.
    pub lambda: f64,
    /// Minimum gain required to split.
    pub gamma: f64,
    /// Minimum hessian sum per child (with h = 1 this is a row count).
    pub min_child_weight: f64,
    /// Row subsampling per round.
    pub subsample: f64,
    /// Feature subsampling per tree.
    pub colsample: f64,
    /// Stop when validation loss fails to improve this many rounds.
    pub early_stopping_rounds: Option<usize>,
    pub seed: u64,
}

impl Default for GbtConfig {
    fn default() -> Self {
        Self {
            n_rounds: 120,
            max_depth: 4,
            learning_rate: 0.1,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
            subsample: 0.8,
            colsample: 0.8,
            early_stopping_rounds: Some(10),
            seed: 0,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Split {
        feature: usize,
        threshold: f32,
        left: usize,
        right: usize,
    },
    Leaf {
        value: f32,
    },
}

/// One regression tree in the ensemble.
#[derive(Debug, Clone)]
pub struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    fn predict_row(&self, row: &[f32]) -> f32 {
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of leaves (diagnostic).
    pub fn num_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }
}

struct SplitCandidate {
    gain: f64,
    feature: usize,
    threshold: f32,
}

/// Trainer state shared across one tree build.
struct TreeBuilder<'a> {
    features: &'a [f32],
    num_features: usize,
    sorted_idx: &'a [Vec<u32>],
    grad: &'a [f64],
    cfg: &'a GbtConfig,
    active_features: Vec<usize>,
}

impl TreeBuilder<'_> {
    fn feature_value(&self, row: usize, feature: usize) -> f32 {
        self.features[row * self.num_features + feature]
    }

    /// Best split of the rows flagged in `in_node`, or `None` if nothing
    /// clears `gamma` / `min_child_weight`.
    fn best_split(&self, in_node: &[bool], g_total: f64, h_total: f64) -> Option<SplitCandidate> {
        let parent_score = g_total * g_total / (h_total + self.cfg.lambda);
        let best = self
            .active_features
            .par_iter()
            .filter_map(|&f| {
                let mut gl = 0.0f64;
                let mut hl = 0.0f64;
                let mut best: Option<SplitCandidate> = None;
                let order = &self.sorted_idx[f];
                let mut prev_value: Option<f32> = None;
                for &ri in order {
                    let r = ri as usize;
                    if !in_node[r] {
                        continue;
                    }
                    let v = self.feature_value(r, f);
                    // A split boundary exists between two distinct values.
                    if let Some(pv) = prev_value {
                        if v > pv
                            && hl >= self.cfg.min_child_weight
                            && (h_total - hl) >= self.cfg.min_child_weight
                        {
                            let gr = g_total - gl;
                            let hr = h_total - hl;
                            let gain = 0.5
                                * (gl * gl / (hl + self.cfg.lambda)
                                    + gr * gr / (hr + self.cfg.lambda)
                                    - parent_score)
                                - self.cfg.gamma;
                            if gain > 0.0 && best.as_ref().is_none_or(|b| gain > b.gain) {
                                best = Some(SplitCandidate {
                                    gain,
                                    feature: f,
                                    threshold: 0.5 * (pv + v),
                                });
                            }
                        }
                    }
                    gl += self.grad[r];
                    hl += 1.0;
                    prev_value = Some(v);
                }
                best
            })
            .reduce_with(|a, b| if a.gain >= b.gain { a } else { b });
        best
    }

    fn build(
        &self,
        nodes: &mut Vec<Node>,
        in_node: Vec<bool>,
        count: usize,
        depth: usize,
    ) -> usize {
        let (g, h): (f64, f64) = in_node
            .iter()
            .enumerate()
            .filter(|&(_, &m)| m)
            .map(|(r, _)| (self.grad[r], 1.0))
            .fold((0.0, 0.0), |(ag, ah), (bg, bh)| (ag + bg, ah + bh));

        let leaf_value = (-g / (h + self.cfg.lambda)) as f32;
        if depth >= self.cfg.max_depth || count < 2 {
            nodes.push(Node::Leaf { value: leaf_value });
            return nodes.len() - 1;
        }
        let Some(split) = self.best_split(&in_node, g, h) else {
            nodes.push(Node::Leaf { value: leaf_value });
            return nodes.len() - 1;
        };

        let mut left_mask = vec![false; in_node.len()];
        let mut right_mask = vec![false; in_node.len()];
        let mut left_count = 0usize;
        let mut right_count = 0usize;
        for (r, &m) in in_node.iter().enumerate() {
            if !m {
                continue;
            }
            if self.feature_value(r, split.feature) <= split.threshold {
                left_mask[r] = true;
                left_count += 1;
            } else {
                right_mask[r] = true;
                right_count += 1;
            }
        }
        debug_assert!(left_count > 0 && right_count > 0);
        // Reserve this node's slot, then recurse.
        nodes.push(Node::Leaf { value: 0.0 });
        let slot = nodes.len() - 1;
        let left = self.build(nodes, left_mask, left_count, depth + 1);
        let right = self.build(nodes, right_mask, right_count, depth + 1);
        nodes[slot] = Node::Split {
            feature: split.feature,
            threshold: split.threshold,
            left,
            right,
        };
        slot
    }
}

/// Gradient-boosted tree ensemble regressor on flattened windows. One
/// independent booster is trained per horizon step.
#[derive(Debug, Clone)]
pub struct GbtForecaster {
    config: GbtConfig,
    base_score: Vec<f32>,
    boosters: Vec<Vec<Tree>>,
    horizon: usize,
    flat_features: usize,
}

impl GbtForecaster {
    pub fn new(config: GbtConfig) -> Self {
        Self {
            config,
            base_score: Vec::new(),
            boosters: Vec::new(),
            horizon: 1,
            flat_features: 0,
        }
    }

    /// Trees of the booster for horizon step `h`.
    pub fn trees(&self, h: usize) -> &[Tree] {
        &self.boosters[h]
    }

    fn predict_flat(&self, rows: &[f32], n: usize) -> Vec<f32> {
        let f = self.flat_features;
        let mut out = vec![0.0f32; n * self.horizon];
        for i in 0..n {
            let row = &rows[i * f..(i + 1) * f];
            for h in 0..self.horizon {
                let mut pred = self.base_score[h];
                for tree in &self.boosters[h] {
                    pred += self.config.learning_rate * tree.predict_row(row);
                }
                out[i * self.horizon + h] = pred;
            }
        }
        out
    }
}

/// Flatten `[n, window, f]` into `[n, window·f]` rows.
fn flatten_windows(x: &Tensor) -> (Vec<f32>, usize, usize) {
    let (n, window, f) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    (x.as_slice().to_vec(), n, window * f)
}

impl Forecaster for GbtForecaster {
    fn name(&self) -> &str {
        "XGBoost"
    }

    fn fit(&mut self, train: &WindowedDataset, valid: Option<&WindowedDataset>) -> FitReport {
        let start = Instant::now();
        let (rows, n, flat) = flatten_windows(&train.x);
        self.horizon = train.horizon;
        self.flat_features = flat;
        self.base_score = (0..self.horizon)
            .map(|h| {
                let col: Vec<f32> = (0..n).map(|i| train.y.at(&[i, h])).collect();
                tensor::stats::mean(&col) as f32
            })
            .collect();
        self.boosters = vec![Vec::new(); self.horizon];

        // Pre-sort each feature once; reused by every node of every tree.
        let sorted_idx: Vec<Vec<u32>> = (0..flat)
            .into_par_iter()
            .map(|f| {
                let mut idx: Vec<u32> = (0..n as u32).collect();
                // `total_cmp` orders NaN features last instead of
                // panicking on pathological inputs.
                idx.sort_by(|&a, &b| {
                    rows[a as usize * flat + f].total_cmp(&rows[b as usize * flat + f])
                });
                idx
            })
            .collect();

        let mut rng = Rng::seed_from(self.config.seed);
        let mut train_loss = Vec::new();
        let mut valid_loss = Vec::new();
        let mut stopped_early = false;

        // Current margin per (row, horizon).
        let mut margins: Vec<Vec<f32>> = (0..self.horizon)
            .map(|h| vec![self.base_score[h]; n])
            .collect();

        let valid_flat = valid.map(|v| flatten_windows(&v.x));
        let mut best_valid = f64::INFINITY;
        let mut rounds_since_best = 0usize;

        #[allow(clippy::needless_range_loop)] // h indexes several parallel structures
        for _round in 0..self.config.n_rounds {
            let mut round_sse = 0.0f64;
            for h in 0..self.horizon {
                // Squared loss: g = pred - y, h = 1.
                let grad: Vec<f64> = (0..n)
                    .map(|i| (margins[h][i] - train.y.at(&[i, h])) as f64)
                    .collect();
                round_sse += grad.iter().map(|g| g * g).sum::<f64>();

                // Row and feature subsampling.
                let mut in_node = vec![false; n];
                let mut count = 0usize;
                for flag in in_node.iter_mut() {
                    if rng.chance(self.config.subsample) {
                        *flag = true;
                        count += 1;
                    }
                }
                if count < 2 {
                    in_node.iter_mut().for_each(|f| *f = true);
                    count = n;
                }
                let mut active_features: Vec<usize> = (0..flat)
                    .filter(|_| rng.chance(self.config.colsample))
                    .collect();
                if active_features.is_empty() {
                    active_features = (0..flat).collect();
                }

                let builder = TreeBuilder {
                    features: &rows,
                    num_features: flat,
                    sorted_idx: &sorted_idx,
                    grad: &grad,
                    cfg: &self.config,
                    active_features,
                };
                let mut nodes = Vec::new();
                builder.build(&mut nodes, in_node, count, 0);
                let tree = Tree { nodes };

                // Update margins with shrinkage.
                for i in 0..n {
                    margins[h][i] += self.config.learning_rate
                        * tree.predict_row(&rows[i * flat..(i + 1) * flat]);
                }
                self.boosters[h].push(tree);
            }
            train_loss.push(round_sse / (n * self.horizon) as f64);

            if let (Some(v), Some((vrows, vn, _))) = (valid, &valid_flat) {
                let pred = self.predict_flat(vrows, *vn);
                let vl = timeseries::metrics::mse(v.y.as_slice(), &pred);
                valid_loss.push(vl);
                if vl < best_valid - 1e-12 {
                    best_valid = vl;
                    rounds_since_best = 0;
                } else {
                    rounds_since_best += 1;
                    if let Some(limit) = self.config.early_stopping_rounds {
                        if rounds_since_best >= limit {
                            stopped_early = true;
                            break;
                        }
                    }
                }
            }
        }

        FitReport {
            train_loss,
            valid_loss,
            fit_time: start.elapsed(),
            stopped_early,
        }
    }

    fn predict(&self, x: &Tensor) -> Tensor {
        assert!(!self.boosters.is_empty(), "predict before fit");
        let (rows, n, flat) = flatten_windows(x);
        assert_eq!(
            flat, self.flat_features,
            "feature width changed between fit and predict"
        );
        Tensor::from_vec(self.predict_flat(&rows, n), &[n, self.horizon])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timeseries::{make_windows, TimeSeriesFrame};

    fn step_dataset() -> WindowedDataset {
        // Target is a threshold function of the last window value — trees
        // should nail this.
        let series: Vec<f32> = (0..300)
            .map(|i| if (i / 25) % 2 == 0 { 0.2 } else { 0.8 })
            .collect();
        let frame = TimeSeriesFrame::from_columns(&[("cpu", series)]).unwrap();
        make_windows(&frame, "cpu", 6, 1).unwrap()
    }

    #[test]
    fn fits_piecewise_constant_function() {
        let ds = step_dataset();
        let mut gbt = GbtForecaster::new(GbtConfig {
            n_rounds: 40,
            subsample: 1.0,
            colsample: 1.0,
            ..Default::default()
        });
        let report = gbt.fit(&ds, None);
        assert_eq!(report.train_loss.len(), 40);
        // The regime transitions are unpredictable from a 6-step window, so
        // the loss floors at the irreducible transition error (~0.014); the
        // booster must get close to that floor.
        assert!(
            report.final_train_loss() < report.train_loss[0] * 0.2,
            "boosting barely reduced loss: {:?} -> {:?}",
            report.train_loss[0],
            report.final_train_loss()
        );
        let (truth, pred) = gbt.evaluate(&ds);
        assert!(timeseries::metrics::mae(&truth, &pred) < 0.05);
    }

    #[test]
    fn monotone_loss_without_subsampling() {
        let ds = step_dataset();
        let mut gbt = GbtForecaster::new(GbtConfig {
            n_rounds: 20,
            subsample: 1.0,
            colsample: 1.0,
            ..Default::default()
        });
        let report = gbt.fit(&ds, None);
        for w in report.train_loss.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "loss increased: {w:?}");
        }
    }

    #[test]
    fn early_stopping_fires() {
        let ds = step_dataset();
        let (train, valid, _) = timeseries::split_windows(&ds, timeseries::SplitRatios::PAPER);
        let mut gbt = GbtForecaster::new(GbtConfig {
            n_rounds: 500,
            early_stopping_rounds: Some(5),
            ..Default::default()
        });
        let report = gbt.fit(&train, Some(&valid));
        assert!(
            report.stopped_early,
            "expected early stopping on an easy problem"
        );
        assert!(report.valid_loss.len() < 500);
    }

    #[test]
    fn depth_zero_trees_are_stumps_of_the_mean() {
        let ds = step_dataset();
        let mut gbt = GbtForecaster::new(GbtConfig {
            n_rounds: 1,
            max_depth: 0,
            subsample: 1.0,
            colsample: 1.0,
            ..Default::default()
        });
        gbt.fit(&ds, None);
        assert_eq!(gbt.trees(0).len(), 1);
        assert_eq!(gbt.trees(0)[0].num_leaves(), 1);
        // Prediction equals the base score (mean) plus a ~zero leaf.
        let pred = gbt.predict(&ds.x);
        let mean = tensor::stats::mean(ds.y.as_slice()) as f32;
        for &p in pred.as_slice() {
            assert!((p - mean).abs() < 0.05);
        }
    }

    #[test]
    fn multivariate_features_are_used() {
        // Target depends only on the second column; the booster must find it.
        let n = 240;
        let helper: Vec<f32> = (0..n).map(|i| ((i * 7) % 13) as f32 / 13.0).collect();
        let noise_col: Vec<f32> = (0..n).map(|i| ((i * 3) % 5) as f32 / 5.0).collect();
        // cpu value = helper shifted by one step.
        let cpu: Vec<f32> = (0..n)
            .map(|i| if i == 0 { 0.0 } else { helper[i - 1] })
            .collect();
        let frame = TimeSeriesFrame::from_columns(&[
            ("cpu", cpu),
            ("helper", helper),
            ("noise", noise_col),
        ])
        .unwrap();
        let ds = make_windows(&frame, "cpu", 4, 1).unwrap();
        let mut gbt = GbtForecaster::new(GbtConfig {
            n_rounds: 60,
            subsample: 1.0,
            colsample: 1.0,
            ..Default::default()
        });
        gbt.fit(&ds, None);
        let (truth, pred) = gbt.evaluate(&ds);
        assert!(
            timeseries::metrics::mse(&truth, &pred) < 0.001,
            "failed to exploit the helper column: mse {}",
            timeseries::metrics::mse(&truth, &pred)
        );
    }

    #[test]
    fn multi_horizon_trains_independent_boosters() {
        let ds = {
            let series: Vec<f32> = (0..200).map(|i| (i % 10) as f32 / 10.0).collect();
            let frame = TimeSeriesFrame::from_columns(&[("cpu", series)]).unwrap();
            make_windows(&frame, "cpu", 5, 3).unwrap()
        };
        let mut gbt = GbtForecaster::new(GbtConfig {
            n_rounds: 30,
            ..Default::default()
        });
        gbt.fit(&ds, None);
        let pred = gbt.predict(&ds.x);
        assert_eq!(pred.shape(), &[ds.len(), 3]);
        let (truth, flat) = gbt.evaluate(&ds);
        assert!(timeseries::metrics::mae(&truth, &flat) < 0.1);
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_requires_fit() {
        let gbt = GbtForecaster::new(GbtConfig::default());
        gbt.predict(&Tensor::zeros(&[1, 4, 1]));
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = step_dataset();
        let run = || {
            let mut gbt = GbtForecaster::new(GbtConfig {
                n_rounds: 10,
                seed: 5,
                ..Default::default()
            });
            gbt.fit(&ds, None);
            gbt.predict(&ds.x)
        };
        assert_eq!(run(), run());
    }
}
