//! GRU forecaster — a related-work recurrent baseline (§VI-B) included in
//! the extended model zoo next to the paper's five Table-II models.

use autograd::layers::{Dropout, Gru, Linear};
use autograd::{Graph, ParamStore, SequenceModel, Var};
use tensor::{Rng, Tensor};
use timeseries::WindowedDataset;

use crate::checkpoint::{CheckpointError, ModelState};
use crate::forecaster::{FitReport, Forecaster};
use crate::neural::{self, NeuralTrainSpec};

/// GRU architecture and training knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GruConfig {
    pub hidden: usize,
    pub layers: usize,
    pub dropout: f32,
    pub spec: NeuralTrainSpec,
}

impl Default for GruConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            layers: 2,
            dropout: 0.1,
            spec: NeuralTrainSpec::default(),
        }
    }
}

struct GruNetwork {
    store: ParamStore,
    gru: Gru,
    dropout: Dropout,
    head: Linear,
    features: usize,
    horizon: usize,
}

impl SequenceModel for GruNetwork {
    fn forward(&self, g: &mut Graph, x: &Tensor, training: bool, rng: &mut Rng) -> Var {
        let steps = neural::time_step_inputs(g, x);
        let last = self.gru.forward_last(g, &steps);
        let dropped = self.dropout.apply(g, last, training, rng);
        self.head.forward(g, dropped)
    }

    fn infer(&self, ctx: &mut autograd::InferenceContext, x: &Tensor) -> Tensor {
        let (batch, time) = (x.shape()[0], x.shape()[1]);
        let last = self
            .gru
            .infer_last(&self.store, ctx, batch, time, |t, buf| {
                neural::fill_time_step(x, t, buf)
            });
        // Dropout is a no-op at inference.
        let out = self.head.infer(&self.store, ctx, &last, batch);
        ctx.give(last);
        let result = Tensor::from_vec(out[..batch * self.horizon].to_vec(), &[batch, self.horizon]);
        ctx.give(out);
        result
    }

    fn params(&self) -> &ParamStore {
        &self.store
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn horizon(&self) -> usize {
        self.horizon
    }
}

/// GRU as a [`Forecaster`].
pub struct GruForecaster {
    config: GruConfig,
    network: Option<GruNetwork>,
}

impl GruForecaster {
    pub fn new(config: GruConfig) -> Self {
        Self {
            config,
            network: None,
        }
    }

    fn build(&self, features: usize, horizon: usize) -> GruNetwork {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(self.config.spec.seed.wrapping_add(0x6EF));
        let gru = Gru::new(
            &mut store,
            "gru",
            features,
            self.config.hidden,
            self.config.layers,
            &mut rng,
        );
        let head = Linear::with_init(
            &mut store,
            "head",
            self.config.hidden,
            horizon,
            autograd::Init::Constant(0.0),
            true,
            &mut rng,
        );
        GruNetwork {
            store,
            gru,
            dropout: Dropout::new(self.config.dropout),
            head,
            features,
            horizon,
        }
    }

    /// Reconstruct the config recorded in a checkpoint snapshot.
    pub fn config_from_state(state: &ModelState) -> Result<GruConfig, CheckpointError> {
        if state.arch != "GRU" {
            return Err(CheckpointError(format!(
                "expected GRU state, got `{}`",
                state.arch
            )));
        }
        Ok(GruConfig {
            hidden: state.require_usize("hidden")?,
            layers: state.require_usize("layers")?,
            dropout: state.require_f32("dropout")?,
            spec: neural::spec_from_meta(state)?,
        })
    }

    /// Rebuild a fitted forecaster from a checkpoint snapshot.
    pub fn from_state(state: &ModelState) -> Result<Self, CheckpointError> {
        let mut m = Self::new(Self::config_from_state(state)?);
        m.load_state(state)?;
        Ok(m)
    }

    /// Taped-graph inference — the parity/benchmark reference for
    /// [`Forecaster::predict`]'s tape-free path.
    pub fn predict_taped(&self, x: &Tensor) -> Tensor {
        let net = self.network.as_ref().expect("predict before fit"); // lint: allow(r2) — Forecaster::predict contract
        neural::predict_network_taped(net, x, self.config.spec.batch_size)
    }
}

impl Forecaster for GruForecaster {
    fn name(&self) -> &str {
        "GRU"
    }

    fn fit(&mut self, train: &WindowedDataset, valid: Option<&WindowedDataset>) -> FitReport {
        let mut net = self.build(train.num_features(), train.horizon);
        let report = neural::fit_network(&mut net, self.config.spec, train, valid);
        self.network = Some(net);
        report
    }

    fn predict(&self, x: &Tensor) -> Tensor {
        let net = self.network.as_ref().expect("predict before fit"); // lint: allow(r2) — Forecaster::predict contract
        neural::predict_network(net, x, self.config.spec.batch_size)
    }

    fn state(&self) -> Option<ModelState> {
        let net = self.network.as_ref()?;
        let mut st = ModelState::new("GRU", net.features, net.horizon);
        st.push_meta("hidden", self.config.hidden as f64);
        st.push_meta("layers", self.config.layers as f64);
        st.push_meta("dropout", self.config.dropout as f64);
        neural::push_spec_meta(&mut st, &self.config.spec);
        st.tensors = net.store.export_named();
        Some(st)
    }

    fn load_state(&mut self, state: &ModelState) -> Result<(), CheckpointError> {
        self.config = Self::config_from_state(state)?;
        let mut net = self.build(state.features, state.horizon);
        net.store.import_named(&state.tensors)?;
        self.network = Some(net);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timeseries::{make_windows, TimeSeriesFrame};

    #[test]
    fn learns_a_sine_wave() {
        let series: Vec<f32> = (0..400)
            .map(|i| 0.5 + 0.4 * (i as f32 * 0.3).sin())
            .collect();
        let frame = TimeSeriesFrame::from_columns(&[("cpu", series)]).unwrap();
        let ds = make_windows(&frame, "cpu", 8, 1).unwrap();
        let mut model = GruForecaster::new(GruConfig {
            hidden: 16,
            layers: 1,
            dropout: 0.0,
            spec: NeuralTrainSpec {
                epochs: 25,
                learning_rate: 5e-3,
                ..Default::default()
            },
        });
        let report = model.fit(&ds, None);
        assert!(report.final_train_loss() < report.train_loss[0]);
        let (truth, pred) = model.evaluate(&ds);
        let mse = timeseries::metrics::mse(&truth, &pred);
        assert!(mse < 0.01, "GRU failed to learn a sine: mse {mse}");
    }

    #[test]
    fn multistep_prediction_shape() {
        let series: Vec<f32> = (0..150).map(|i| (i % 9) as f32 / 9.0).collect();
        let frame = TimeSeriesFrame::from_columns(&[("cpu", series)]).unwrap();
        let ds = make_windows(&frame, "cpu", 6, 3).unwrap();
        let mut model = GruForecaster::new(GruConfig {
            hidden: 8,
            layers: 1,
            spec: NeuralTrainSpec {
                epochs: 2,
                ..Default::default()
            },
            ..Default::default()
        });
        model.fit(&ds, None);
        let pred = model.predict(&ds.x);
        assert_eq!(pred.shape(), &[ds.len(), 3]);
        assert!(pred.all_finite());
    }
}
