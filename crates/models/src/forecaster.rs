//! The common interface every prediction model implements, so the
//! experiment harness can sweep `{ARIMA, XGBoost, LSTM, CNN-LSTM, RPTCN}`
//! uniformly.

use std::path::Path;
use std::time::Duration;

use tensor::Tensor;
use timeseries::WindowedDataset;

use crate::checkpoint::{self, CheckpointError, ModelState};

/// Per-fit diagnostics. For iterative models the loss vectors have one entry
/// per epoch/boosting round — the raw material for the convergence figures.
#[derive(Debug, Clone, Default)]
pub struct FitReport {
    /// Training loss per epoch (or boosting round). May be empty for
    /// closed-form models such as ARIMA.
    pub train_loss: Vec<f64>,
    /// Validation loss per epoch, when validation data was supplied.
    pub valid_loss: Vec<f64>,
    /// Wall-clock fit time.
    pub fit_time: Duration,
    /// Whether early stopping fired.
    pub stopped_early: bool,
}

impl FitReport {
    pub fn final_train_loss(&self) -> f64 {
        self.train_loss.last().copied().unwrap_or(f64::NAN)
    }

    pub fn best_valid_loss(&self) -> f64 {
        self.valid_loss
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }
}

/// A trainable multi-step forecaster over windowed multivariate inputs.
pub trait Forecaster {
    /// Short display name ("RPTCN", "ARIMA", …).
    fn name(&self) -> &str;

    /// Fit on a windowed training set, optionally monitoring validation
    /// loss (used for early stopping by the deep models).
    fn fit(&mut self, train: &WindowedDataset, valid: Option<&WindowedDataset>) -> FitReport;

    /// Predict `[n, horizon]` targets from `[n, window, features]` inputs.
    fn predict(&self, x: &Tensor) -> Tensor;

    /// Convenience: predict a dataset and return `(truth, predictions)` as
    /// flat paired slices.
    fn evaluate(&self, ds: &WindowedDataset) -> (Vec<f32>, Vec<f32>) {
        let pred = self.predict(&ds.x);
        (ds.y.as_slice().to_vec(), pred.into_vec())
    }

    /// Portable snapshot of the fitted state. `None` when the model is
    /// unfitted or does not support checkpointing (the classical baselines).
    fn state(&self) -> Option<ModelState> {
        None
    }

    /// Restore architecture + weights from a snapshot produced by
    /// [`Forecaster::state`]. Predictions after a restore are bit-identical
    /// to the model that produced the snapshot.
    fn load_state(&mut self, state: &ModelState) -> Result<(), CheckpointError> {
        Err(CheckpointError(format!(
            "{} does not support checkpointing (got `{}` state)",
            self.name(),
            state.arch
        )))
    }

    /// Serialise the fitted model to a versioned binary checkpoint file.
    fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let state = self.state().ok_or_else(|| {
            CheckpointError(format!(
                "{} has no checkpointable state (not fitted?)",
                self.name()
            ))
        })?;
        checkpoint::save_model(path, &state)
    }

    /// Load architecture + weights from a checkpoint file written by
    /// [`Forecaster::save`].
    fn load(&mut self, path: &Path) -> Result<(), CheckpointError> {
        let state = checkpoint::load_model(path)?;
        self.load_state(&state)
    }
}

/// Persistence baseline: tomorrow looks like today. Not in the paper's
/// baseline list, but indispensable as a sanity floor — any trained model
/// that loses to persistence on these traces is broken.
#[derive(Debug, Clone)]
pub struct NaiveForecaster {
    target_index: usize,
    horizon: usize,
}

impl NaiveForecaster {
    pub fn new() -> Self {
        Self {
            target_index: 0,
            horizon: 1,
        }
    }

    /// Rebuild from a checkpoint snapshot.
    pub fn from_state(state: &ModelState) -> Result<Self, CheckpointError> {
        let mut m = Self::new();
        m.load_state(state)?;
        Ok(m)
    }
}

impl Default for NaiveForecaster {
    fn default() -> Self {
        Self::new()
    }
}

impl Forecaster for NaiveForecaster {
    fn name(&self) -> &str {
        "Naive"
    }

    fn fit(&mut self, train: &WindowedDataset, _valid: Option<&WindowedDataset>) -> FitReport {
        self.target_index = train.target_index;
        self.horizon = train.horizon;
        FitReport::default()
    }

    fn predict(&self, x: &Tensor) -> Tensor {
        let (n, window, f) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let mut out = Vec::with_capacity(n * self.horizon);
        for i in 0..n {
            let last = x.as_slice()[(i * window + window - 1) * f + self.target_index];
            out.extend(std::iter::repeat_n(last, self.horizon));
        }
        Tensor::from_vec(out, &[n, self.horizon])
    }

    fn state(&self) -> Option<ModelState> {
        let mut st = ModelState::new("Naive", 0, self.horizon);
        st.push_meta("target_index", self.target_index as f64);
        Some(st)
    }

    fn load_state(&mut self, state: &ModelState) -> Result<(), CheckpointError> {
        if state.arch != "Naive" {
            return Err(CheckpointError(format!(
                "expected Naive state, got `{}`",
                state.arch
            )));
        }
        self.target_index = state.require_usize("target_index")?;
        self.horizon = state.horizon;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timeseries::{make_windows, TimeSeriesFrame};

    fn dataset() -> WindowedDataset {
        let frame = TimeSeriesFrame::from_columns(&[
            ("cpu", (0..20).map(|i| i as f32).collect()),
            ("mem", (0..20).map(|i| i as f32 * 2.0).collect()),
        ])
        .unwrap();
        make_windows(&frame, "cpu", 4, 2).unwrap()
    }

    #[test]
    fn naive_repeats_last_target_value() {
        let ds = dataset();
        let mut model = NaiveForecaster::new();
        model.fit(&ds, None);
        let pred = model.predict(&ds.x);
        assert_eq!(pred.shape(), &[ds.len(), 2]);
        // Window 0 covers cpu values 0..=3; persistence predicts 3, 3.
        assert_eq!(pred.at(&[0, 0]), 3.0);
        assert_eq!(pred.at(&[0, 1]), 3.0);
    }

    #[test]
    fn naive_tracks_target_column_index() {
        let frame = TimeSeriesFrame::from_columns(&[
            ("mem", vec![9.0; 10]),
            ("cpu", (0..10).map(|i| i as f32).collect()),
        ])
        .unwrap();
        let ds = make_windows(&frame, "cpu", 3, 1).unwrap();
        let mut model = NaiveForecaster::new();
        model.fit(&ds, None);
        let pred = model.predict(&ds.x);
        assert_eq!(pred.at(&[0, 0]), 2.0, "naive read the wrong column");
    }

    #[test]
    fn evaluate_pairs_truth_and_prediction() {
        let ds = dataset();
        let mut model = NaiveForecaster::new();
        model.fit(&ds, None);
        let (truth, pred) = model.evaluate(&ds);
        assert_eq!(truth.len(), pred.len());
        // On a linear ramp, persistence is off by exactly 1 and 2.
        assert_eq!(truth[0] - pred[0], 1.0);
        assert_eq!(truth[1] - pred[1], 2.0);
    }

    #[test]
    fn fit_report_helpers() {
        let r = FitReport {
            train_loss: vec![1.0, 0.5],
            valid_loss: vec![0.9, 0.7],
            ..Default::default()
        };
        assert_eq!(r.final_train_loss(), 0.5);
        assert_eq!(r.best_valid_loss(), 0.7);
        assert!(FitReport::default().final_train_loss().is_nan());
    }
}
