//! Temporal Convolutional Network backbone (Bai et al. 2018, paper §III-D):
//! a stack of residual blocks of dilated causal convolutions with weight
//! normalisation, ReLU and spatial dropout. RPTCN builds on this backbone;
//! it is also exposed as a plain `TCN` forecaster for the component
//! ablation.

use autograd::layers::{CausalConv1d, Dropout, Linear};
use autograd::{Graph, ParamStore, SequenceModel, Var};
use tensor::{Rng, Tensor};
use timeseries::WindowedDataset;

use crate::forecaster::{FitReport, Forecaster};
use crate::neural::{self, NeuralTrainSpec};

/// One TCN residual block (paper Fig. 6): two dilated causal convolutions,
/// each followed by ReLU and spatial dropout, plus a 1×1 convolution on the
/// skip path when channel counts differ; the block output is
/// `ReLU(x + F(x))` (paper eq. 5).
pub struct TemporalBlock {
    conv1: CausalConv1d,
    conv2: CausalConv1d,
    downsample: Option<CausalConv1d>,
    dropout: Dropout,
}

impl TemporalBlock {
    #[allow(clippy::too_many_arguments)] // block hyper-parameters
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        dilation: usize,
        dropout: f32,
        weight_norm: bool,
        rng: &mut Rng,
    ) -> Self {
        let conv1 = CausalConv1d::new(
            store,
            &format!("{name}.conv1"),
            in_ch,
            out_ch,
            kernel,
            dilation,
            weight_norm,
            rng,
        );
        let conv2 = CausalConv1d::new(
            store,
            &format!("{name}.conv2"),
            out_ch,
            out_ch,
            kernel,
            dilation,
            weight_norm,
            rng,
        );
        let downsample = (in_ch != out_ch).then(|| {
            CausalConv1d::new(
                store,
                &format!("{name}.down"),
                in_ch,
                out_ch,
                1,
                1,
                false,
                rng,
            )
        });
        Self {
            conv1,
            conv2,
            downsample,
            dropout: Dropout::new(dropout),
        }
    }

    /// `[batch, in_ch, T] -> [batch, out_ch, T]`.
    pub fn forward(&self, g: &mut Graph, x: Var, training: bool, rng: &mut Rng) -> Var {
        let h = self.conv1.forward(g, x);
        let h = g.relu(h);
        let h = self.dropout.apply_spatial(g, h, training, rng);
        let h = self.conv2.forward(g, h);
        let h = g.relu(h);
        let h = self.dropout.apply_spatial(g, h, training, rng);
        let res = match &self.downsample {
            Some(d) => d.forward(g, x),
            None => x,
        };
        let sum = g.add(res, h);
        g.relu(sum)
    }

    /// Tape-free forward: `x` is `[batch, in_ch, time]` row-major, returns
    /// `[batch, out_ch, time]` in a buffer from `ctx`. Dropout is inactive
    /// at inference, so the block reduces to conv→relu→conv→relu plus the
    /// residual sum — fused here as `(res + h).max(0)` in the output buffer.
    pub fn infer(
        &self,
        store: &ParamStore,
        ctx: &mut autograd::InferenceContext,
        x: &[f32],
        batch: usize,
        time: usize,
    ) -> Vec<f32> {
        let mut h1 = self.conv1.infer(store, ctx, x, batch, time);
        autograd::infer::relu_in_place(&mut h1);
        let mut out = self.conv2.infer(store, ctx, &h1, batch, time);
        autograd::infer::relu_in_place(&mut out);
        ctx.give(h1);
        match &self.downsample {
            Some(d) => {
                let res = d.infer(store, ctx, x, batch, time);
                for (o, &r) in out.iter_mut().zip(res.iter()) {
                    *o = (r + *o).max(0.0);
                }
                ctx.give(res);
            }
            None => {
                for (o, &r) in out.iter_mut().zip(x.iter()) {
                    *o = (r + *o).max(0.0);
                }
            }
        }
        out
    }

    /// Receptive-field contribution of this block: `2·(k−1)·d`.
    pub fn receptive_contribution(&self) -> usize {
        2 * (self.conv1.receptive_field() - 1)
    }

    pub fn conv1(&self) -> &CausalConv1d {
        &self.conv1
    }

    pub fn conv2(&self) -> &CausalConv1d {
        &self.conv2
    }

    pub fn downsample(&self) -> Option<&CausalConv1d> {
        self.downsample.as_ref()
    }
}

/// Stack of [`TemporalBlock`]s with exponentially growing dilations
/// `1, 2, 4, …` (paper Fig. 5 uses `[1, 2, 4]`).
pub struct TcnBackbone {
    blocks: Vec<TemporalBlock>,
    out_channels: usize,
}

impl TcnBackbone {
    #[allow(clippy::too_many_arguments)] // backbone hyper-parameters
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_features: usize,
        channels: usize,
        levels: usize,
        kernel: usize,
        dropout: f32,
        weight_norm: bool,
        rng: &mut Rng,
    ) -> Self {
        assert!(levels >= 1);
        let blocks = (0..levels)
            .map(|l| {
                let in_ch = if l == 0 { in_features } else { channels };
                TemporalBlock::new(
                    store,
                    &format!("{name}.block{l}"),
                    in_ch,
                    channels,
                    kernel,
                    1 << l,
                    dropout,
                    weight_norm,
                    rng,
                )
            })
            .collect();
        Self {
            blocks,
            out_channels: channels,
        }
    }

    /// `[batch, features, T] -> [batch, channels, T]`.
    pub fn forward(&self, g: &mut Graph, x: Var, training: bool, rng: &mut Rng) -> Var {
        let mut h = x;
        for block in &self.blocks {
            h = block.forward(g, h, training, rng);
        }
        h
    }

    /// Tape-free forward: `x` is `[batch, features, time]` row-major,
    /// returns `[batch, channels, time]` in a buffer from `ctx`.
    pub fn infer(
        &self,
        store: &ParamStore,
        ctx: &mut autograd::InferenceContext,
        x: &[f32],
        batch: usize,
        time: usize,
    ) -> Vec<f32> {
        let mut owned: Option<Vec<f32>> = None;
        for block in &self.blocks {
            let cur: &[f32] = owned.as_deref().unwrap_or(x);
            let next = block.infer(store, ctx, cur, batch, time);
            if let Some(prev) = owned.replace(next) {
                ctx.give(prev);
            }
        }
        owned.expect("backbone has at least one block") // lint: allow(r2) — spec guarantees ≥1 block
    }

    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    pub fn blocks(&self) -> &[TemporalBlock] {
        &self.blocks
    }

    /// Total receptive field: `1 + Σ 2·(k−1)·2^l`.
    pub fn receptive_field(&self) -> usize {
        1 + self
            .blocks
            .iter()
            .map(TemporalBlock::receptive_contribution)
            .sum::<usize>()
    }
}

/// Plain-TCN architecture knobs (shared by RPTCN, which extends them).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcnConfig {
    pub channels: usize,
    pub levels: usize,
    pub kernel: usize,
    pub dropout: f32,
    pub weight_norm: bool,
    pub spec: NeuralTrainSpec,
}

impl Default for TcnConfig {
    fn default() -> Self {
        Self {
            channels: 16,
            levels: 4,
            kernel: 3,
            dropout: 0.1,
            weight_norm: true,
            spec: NeuralTrainSpec {
                learning_rate: 2e-3,
                ..Default::default()
            },
        }
    }
}

struct TcnNetwork {
    store: ParamStore,
    backbone: TcnBackbone,
    head: Linear,
    horizon: usize,
}

impl SequenceModel for TcnNetwork {
    fn forward(&self, g: &mut Graph, x: &Tensor, training: bool, rng: &mut Rng) -> Var {
        let time = x.shape()[1];
        let ct = g.input(neural::to_channels_time(x));
        let seq = self.backbone.forward(g, ct, training, rng);
        let last = g.select_time(seq, time - 1);
        self.head.forward(g, last)
    }

    fn infer(&self, ctx: &mut autograd::InferenceContext, x: &Tensor) -> Tensor {
        let (batch, time, features) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        let mut ct = ctx.take(batch * features * time);
        neural::to_channels_time_into(x, &mut ct);
        let seq = self.backbone.infer(&self.store, ctx, &ct, batch, time);
        ctx.give(ct);
        let ch = self.backbone.out_channels();
        let mut last = ctx.take(batch * ch);
        autograd::infer::select_time_into(&seq, &mut last, batch, ch, time, time - 1);
        ctx.give(seq);
        let out = self.head.infer(&self.store, ctx, &last, batch);
        ctx.give(last);
        let result = Tensor::from_vec(out[..batch * self.horizon].to_vec(), &[batch, self.horizon]);
        ctx.give(out);
        result
    }

    fn params(&self) -> &ParamStore {
        &self.store
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn horizon(&self) -> usize {
        self.horizon
    }
}

/// Vanilla TCN forecaster (backbone + dense head, no FC/attention) — the
/// ablation reference RPTCN is compared against.
pub struct TcnForecaster {
    config: TcnConfig,
    network: Option<TcnNetwork>,
}

impl TcnForecaster {
    pub fn new(config: TcnConfig) -> Self {
        Self {
            config,
            network: None,
        }
    }

    fn build(&self, features: usize, horizon: usize) -> TcnNetwork {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(self.config.spec.seed.wrapping_add(0x7C4));
        let backbone = TcnBackbone::new(
            &mut store,
            "tcn",
            features,
            self.config.channels,
            self.config.levels,
            self.config.kernel,
            self.config.dropout,
            self.config.weight_norm,
            &mut rng,
        );
        let head = Linear::with_init(
            &mut store,
            "head",
            self.config.channels,
            horizon,
            autograd::Init::Constant(0.0),
            true,
            &mut rng,
        );
        TcnNetwork {
            store,
            backbone,
            head,
            horizon,
        }
    }

    /// Receptive field of the configured backbone.
    pub fn receptive_field(&self) -> usize {
        1 + (0..self.config.levels)
            .map(|l| 2 * (self.config.kernel - 1) * (1 << l))
            .sum::<usize>()
    }
}

impl Forecaster for TcnForecaster {
    fn name(&self) -> &str {
        "TCN"
    }

    fn fit(&mut self, train: &WindowedDataset, valid: Option<&WindowedDataset>) -> FitReport {
        let mut net = self.build(train.num_features(), train.horizon);
        let report = neural::fit_network(&mut net, self.config.spec, train, valid);
        self.network = Some(net);
        report
    }

    fn predict(&self, x: &Tensor) -> Tensor {
        let net = self.network.as_ref().expect("predict before fit"); // lint: allow(r2) — Forecaster::predict contract
        neural::predict_network(net, x, self.config.spec.batch_size)
    }
}

impl TcnForecaster {
    /// Taped-graph inference — the parity/benchmark reference for
    /// [`Forecaster::predict`]'s tape-free path.
    pub fn predict_taped(&self, x: &Tensor) -> Tensor {
        let net = self.network.as_ref().expect("predict before fit"); // lint: allow(r2) — Forecaster::predict contract
        neural::predict_network_taped(net, x, self.config.spec.batch_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timeseries::{make_windows, TimeSeriesFrame};

    #[test]
    fn receptive_field_formula() {
        let cfg = TcnConfig {
            levels: 3,
            kernel: 3,
            ..Default::default()
        };
        // 1 + 2*2*(1+2+4) = 29
        assert_eq!(TcnForecaster::new(cfg).receptive_field(), 29);
        let cfg = TcnConfig {
            levels: 4,
            kernel: 3,
            ..Default::default()
        };
        assert_eq!(TcnForecaster::new(cfg).receptive_field(), 61);
    }

    #[test]
    fn backbone_preserves_time_length_and_causality() {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(1);
        let backbone = TcnBackbone::new(&mut store, "t", 2, 4, 2, 3, 0.0, true, &mut rng);
        assert_eq!(backbone.receptive_field(), 1 + 4 + 8);

        let x1 = Tensor::rand_normal(&[1, 2, 12], 0.0, 1.0, &mut rng);
        let mut x2 = x1.clone();
        for c in 0..2 {
            let v = x2.at(&[0, c, 11]) + 10.0;
            x2.set(&[0, c, 11], v);
        }
        let run = |xd: &Tensor| {
            let mut g = Graph::new(&store);
            let mut r = Rng::seed_from(0);
            let xi = g.input(xd.clone());
            let out = backbone.forward(&mut g, xi, false, &mut r);
            g.value(out).clone()
        };
        let y1 = run(&x1);
        let y2 = run(&x2);
        assert_eq!(y1.shape(), &[1, 4, 12]);
        // Perturbing the last step must not change earlier outputs.
        for c in 0..4 {
            for t in 0..11 {
                assert_eq!(
                    y1.at(&[0, c, t]),
                    y2.at(&[0, c, t]),
                    "future leaked at t={t}"
                );
            }
        }
    }

    #[test]
    fn tcn_learns_a_periodic_signal() {
        let series: Vec<f32> = (0..400)
            .map(|i| 0.5 + 0.4 * (i as f32 * 0.25).sin())
            .collect();
        let frame = TimeSeriesFrame::from_columns(&[("cpu", series)]).unwrap();
        let ds = make_windows(&frame, "cpu", 16, 1).unwrap();
        let mut model = TcnForecaster::new(TcnConfig {
            channels: 8,
            levels: 3,
            dropout: 0.0,
            spec: NeuralTrainSpec {
                epochs: 20,
                learning_rate: 3e-3,
                ..Default::default()
            },
            ..Default::default()
        });
        let report = model.fit(&ds, None);
        assert!(report.final_train_loss() < report.train_loss[0] * 0.5);
        let (truth, pred) = model.evaluate(&ds);
        let mse = timeseries::metrics::mse(&truth, &pred);
        assert!(mse < 0.01, "TCN mse {mse}");
    }
}
