//! Shared plumbing for the deep forecasters: input-layout helpers and the
//! adapter that turns an `autograd::SequenceModel` into a [`Forecaster`].

use std::time::Instant;

use autograd::optim::Adam;
use autograd::{Graph, LossKind, SequenceModel, TrainConfig, Var};
use tensor::{Rng, Tensor};
use timeseries::WindowedDataset;

use crate::forecaster::FitReport;

/// Training hyper-parameters shared by every deep model. Mirrors the
/// paper's Keras setup: Adam, MSE loss, `EarlyStopping(patience=10)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeuralTrainSpec {
    pub epochs: usize,
    pub batch_size: usize,
    pub learning_rate: f32,
    pub clip_norm: f32,
    pub patience: usize,
    pub seed: u64,
}

impl Default for NeuralTrainSpec {
    fn default() -> Self {
        Self {
            epochs: 30,
            batch_size: 64,
            learning_rate: 1e-3,
            clip_norm: 5.0,
            patience: 10,
            seed: 0,
        }
    }
}

/// Append the training spec to a checkpoint's metadata table. The seed is
/// split into two u32 halves — every u32 is exactly representable as f64,
/// so the full 64-bit seed survives the trip losslessly.
pub(crate) fn push_spec_meta(state: &mut crate::checkpoint::ModelState, spec: &NeuralTrainSpec) {
    state.push_meta("spec.epochs", spec.epochs as f64);
    state.push_meta("spec.batch_size", spec.batch_size as f64);
    state.push_meta("spec.learning_rate", spec.learning_rate as f64);
    state.push_meta("spec.clip_norm", spec.clip_norm as f64);
    state.push_meta("spec.patience", spec.patience as f64);
    state.push_meta("spec.seed_lo", (spec.seed & 0xFFFF_FFFF) as f64);
    state.push_meta("spec.seed_hi", (spec.seed >> 32) as f64);
}

/// Inverse of [`push_spec_meta`].
pub(crate) fn spec_from_meta(
    state: &crate::checkpoint::ModelState,
) -> Result<NeuralTrainSpec, crate::checkpoint::CheckpointError> {
    let seed_lo = state.require_usize("spec.seed_lo")? as u64;
    let seed_hi = state.require_usize("spec.seed_hi")? as u64;
    Ok(NeuralTrainSpec {
        epochs: state.require_usize("spec.epochs")?,
        batch_size: state.require_usize("spec.batch_size")?,
        learning_rate: state.require_f32("spec.learning_rate")?,
        clip_norm: state.require_f32("spec.clip_norm")?,
        patience: state.require_usize("spec.patience")?,
        seed: (seed_hi << 32) | seed_lo,
    })
}

impl NeuralTrainSpec {
    /// Lower the spec into an autograd `TrainConfig` with an explicit
    /// training loss — plain MSE for the point models, the composite
    /// point + pinball loss for quantile-head models.
    pub(crate) fn to_train_config_with(self, loss: LossKind) -> TrainConfig {
        TrainConfig {
            epochs: self.epochs,
            batch_size: self.batch_size,
            loss,
            clip_norm: Some(self.clip_norm),
            patience: Some(self.patience),
            shuffle: true,
            seed: self.seed,
            // Online refits train unattended; keep the divergence guard at
            // its defaults so a bad refit rolls back instead of shipping
            // NaN weights to a serving entity.
            ..TrainConfig::default()
        }
    }
}

/// Fit a network and convert the history into a [`FitReport`].
pub(crate) fn fit_network<M: SequenceModel>(
    net: &mut M,
    spec: NeuralTrainSpec,
    train: &WindowedDataset,
    valid: Option<&WindowedDataset>,
) -> FitReport {
    fit_network_with_loss(net, spec, LossKind::Mse, train, valid)
}

/// [`fit_network`] with an explicit training loss (e.g. the composite
/// [`LossKind::PointInterval`] for multi-head quantile models).
pub(crate) fn fit_network_with_loss<M: SequenceModel>(
    net: &mut M,
    spec: NeuralTrainSpec,
    loss: LossKind,
    train: &WindowedDataset,
    valid: Option<&WindowedDataset>,
) -> FitReport {
    let start = Instant::now();
    let mut opt = Adam::new(spec.learning_rate);
    let history = autograd::fit(
        net,
        &train.x,
        &train.y,
        valid.map(|v| (&v.x, &v.y)),
        &mut opt,
        &spec.to_train_config_with(loss),
    );
    FitReport {
        train_loss: history.train_loss,
        valid_loss: history.valid_loss,
        fit_time: start.elapsed(),
        stopped_early: history.stopped_early,
    }
}

/// Run inference through the tape-free engine, reusing this thread's
/// scratch arena. All `Forecaster::predict` impls route through here, so
/// serving forecasts never build a tape.
pub(crate) fn predict_network<M: SequenceModel + Sync>(
    net: &M,
    x: &Tensor,
    batch: usize,
) -> Tensor {
    autograd::infer::with_thread_context(|ctx| autograd::infer::predict(net, x, batch, ctx))
}

/// Run inference through the taped [`SequenceModel`] interface. Kept as the
/// parity reference (and benchmark baseline) for the tape-free path.
pub(crate) fn predict_network_taped<M: SequenceModel>(net: &M, x: &Tensor, batch: usize) -> Tensor {
    let mut rng = Rng::seed_from(0);
    autograd::predict(net, x, batch, &mut rng)
}

/// Write step `step`'s `[batch, features]` slice of a `[batch, time,
/// features]` window batch into caller-provided scratch.
pub(crate) fn fill_time_step(x: &Tensor, step: usize, out: &mut [f32]) {
    let (b, t, f) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    debug_assert_eq!(out.len(), b * f, "fill_time_step scratch shape");
    for bi in 0..b {
        out[bi * f..(bi + 1) * f]
            .copy_from_slice(&x.as_slice()[(bi * t + step) * f..(bi * t + step) * f + f]);
    }
}

/// Slice a `[batch, time, features]` window batch into per-step
/// `[batch, features]` input leaves for recurrent models.
pub(crate) fn time_step_inputs(g: &mut Graph, x: &Tensor) -> Vec<Var> {
    let (b, t, f) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    (0..t)
        .map(|step| {
            let mut data = vec![0.0f32; b * f];
            fill_time_step(x, step, &mut data);
            g.input(Tensor::from_vec(data, &[b, f]))
        })
        .collect()
}

/// Rearrange `[batch, time, features]` into `[batch, channels, time]`,
/// writing into caller-provided scratch (no allocation on the serving path).
pub(crate) fn to_channels_time_into(x: &Tensor, out: &mut [f32]) {
    let (b, t, f) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    debug_assert_eq!(out.len(), b * f * t, "to_channels_time scratch shape");
    let src = x.as_slice();
    for bi in 0..b {
        for ti in 0..t {
            for fi in 0..f {
                out[(bi * f + fi) * t + ti] = src[(bi * t + ti) * f + fi];
            }
        }
    }
}

/// Rearrange `[batch, time, features]` into the `[batch, channels, time]`
/// layout convolutional models consume.
pub(crate) fn to_channels_time(x: &Tensor) -> Tensor {
    let (b, t, f) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let mut out = vec![0.0f32; b * f * t];
    to_channels_time_into(x, &mut out);
    Tensor::from_vec(out, &[b, f, t])
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograd::ParamStore;

    #[test]
    fn channels_time_layout() {
        // x[b][t][f] with distinguishable entries.
        let x = Tensor::arange(2 * 3 * 2).into_reshape(&[2, 3, 2]).unwrap();
        let ct = to_channels_time(&x);
        assert_eq!(ct.shape(), &[2, 2, 3]);
        // x[0, t, 0] = 0, 2, 4 should become channel 0 of item 0.
        assert_eq!(ct.at(&[0, 0, 0]), 0.0);
        assert_eq!(ct.at(&[0, 0, 1]), 2.0);
        assert_eq!(ct.at(&[0, 0, 2]), 4.0);
        // x[1, t, 1] = 7, 9, 11 -> channel 1 of item 1.
        assert_eq!(ct.at(&[1, 1, 0]), 7.0);
        assert_eq!(ct.at(&[1, 1, 2]), 11.0);
    }

    #[test]
    fn time_step_inputs_slice_correctly() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let x = Tensor::arange(2 * 3 * 2).into_reshape(&[2, 3, 2]).unwrap();
        let steps = time_step_inputs(&mut g, &x);
        assert_eq!(steps.len(), 3);
        // Step 1 holds x[:, 1, :] = [[2, 3], [8, 9]].
        assert_eq!(g.value(steps[1]).as_slice(), &[2.0, 3.0, 8.0, 9.0]);
        assert_eq!(g.value(steps[1]).shape(), &[2, 2]);
    }

    #[test]
    fn into_variants_match_allocating_helpers() {
        let x = Tensor::arange(2 * 4 * 3).into_reshape(&[2, 4, 3]).unwrap();
        let ct = to_channels_time(&x);
        let mut scratch = vec![f32::NAN; 2 * 3 * 4];
        to_channels_time_into(&x, &mut scratch);
        assert_eq!(scratch.as_slice(), ct.as_slice());

        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let steps = time_step_inputs(&mut g, &x);
        for (t, &step) in steps.iter().enumerate() {
            let mut buf = vec![f32::NAN; 2 * 3];
            fill_time_step(&x, t, &mut buf);
            assert_eq!(buf.as_slice(), g.value(step).as_slice());
        }
    }

    #[test]
    fn spec_converts_to_train_config() {
        let spec = NeuralTrainSpec {
            epochs: 7,
            patience: 3,
            ..Default::default()
        };
        let cfg = spec.to_train_config_with(LossKind::Mse);
        assert_eq!(cfg.epochs, 7);
        assert_eq!(cfg.patience, Some(3));
        assert_eq!(cfg.loss, LossKind::Mse);
    }
}
