//! LSTM baseline (paper §IV-C): stacked LSTM over the window, dense head on
//! the final hidden state.

use autograd::layers::{Dropout, Linear, Lstm};
use autograd::{Graph, ParamStore, SequenceModel, Var};
use tensor::{Rng, Tensor};
use timeseries::WindowedDataset;

use crate::checkpoint::{CheckpointError, ModelState};
use crate::forecaster::{FitReport, Forecaster};
use crate::neural::{self, NeuralTrainSpec};

/// LSTM architecture and training knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LstmConfig {
    pub hidden: usize,
    pub layers: usize,
    pub dropout: f32,
    pub spec: NeuralTrainSpec,
}

impl Default for LstmConfig {
    fn default() -> Self {
        Self {
            hidden: 32,
            layers: 2,
            dropout: 0.1,
            spec: NeuralTrainSpec::default(),
        }
    }
}

struct LstmNetwork {
    store: ParamStore,
    lstm: Lstm,
    dropout: Dropout,
    head: Linear,
    features: usize,
    horizon: usize,
}

impl SequenceModel for LstmNetwork {
    fn forward(&self, g: &mut Graph, x: &Tensor, training: bool, rng: &mut Rng) -> Var {
        let steps = neural::time_step_inputs(g, x);
        let last = self.lstm.forward_last(g, &steps);
        let dropped = self.dropout.apply(g, last, training, rng);
        self.head.forward(g, dropped)
    }

    fn infer(&self, ctx: &mut autograd::InferenceContext, x: &Tensor) -> Tensor {
        let (batch, time) = (x.shape()[0], x.shape()[1]);
        let last = self
            .lstm
            .infer_last(&self.store, ctx, batch, time, |t, buf| {
                neural::fill_time_step(x, t, buf)
            });
        // Dropout is a no-op at inference.
        let out = self.head.infer(&self.store, ctx, &last, batch);
        ctx.give(last);
        let result = Tensor::from_vec(out[..batch * self.horizon].to_vec(), &[batch, self.horizon]);
        ctx.give(out);
        result
    }

    fn params(&self) -> &ParamStore {
        &self.store
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn horizon(&self) -> usize {
        self.horizon
    }
}

/// The LSTM baseline as a [`Forecaster`]. The network is built lazily at
/// `fit` time, once the input feature width is known.
pub struct LstmForecaster {
    config: LstmConfig,
    network: Option<LstmNetwork>,
}

impl LstmForecaster {
    pub fn new(config: LstmConfig) -> Self {
        Self {
            config,
            network: None,
        }
    }

    fn build(&self, features: usize, horizon: usize) -> LstmNetwork {
        let mut store = ParamStore::new();
        let mut rng = Rng::seed_from(self.config.spec.seed.wrapping_add(0x157));
        let lstm = Lstm::new(
            &mut store,
            "lstm",
            features,
            self.config.hidden,
            self.config.layers,
            &mut rng,
        );
        let head = Linear::with_init(
            &mut store,
            "head",
            self.config.hidden,
            horizon,
            autograd::Init::Constant(0.0),
            true,
            &mut rng,
        );
        LstmNetwork {
            store,
            lstm,
            dropout: Dropout::new(self.config.dropout),
            head,
            features,
            horizon,
        }
    }

    /// Reconstruct the config recorded in a checkpoint snapshot.
    pub fn config_from_state(state: &ModelState) -> Result<LstmConfig, CheckpointError> {
        if state.arch != "LSTM" {
            return Err(CheckpointError(format!(
                "expected LSTM state, got `{}`",
                state.arch
            )));
        }
        Ok(LstmConfig {
            hidden: state.require_usize("hidden")?,
            layers: state.require_usize("layers")?,
            dropout: state.require_f32("dropout")?,
            spec: neural::spec_from_meta(state)?,
        })
    }

    /// Rebuild a fitted forecaster from a checkpoint snapshot.
    pub fn from_state(state: &ModelState) -> Result<Self, CheckpointError> {
        let mut m = Self::new(Self::config_from_state(state)?);
        m.load_state(state)?;
        Ok(m)
    }

    /// Number of scalar parameters once built.
    pub fn num_parameters(&self) -> Option<usize> {
        self.network.as_ref().map(|n| n.store.num_scalars())
    }

    /// Taped-graph inference — the parity/benchmark reference for
    /// [`Forecaster::predict`]'s tape-free path.
    pub fn predict_taped(&self, x: &Tensor) -> Tensor {
        let net = self.network.as_ref().expect("predict before fit"); // lint: allow(r2) — Forecaster::predict contract
        neural::predict_network_taped(net, x, self.config.spec.batch_size)
    }
}

impl Forecaster for LstmForecaster {
    fn name(&self) -> &str {
        "LSTM"
    }

    fn fit(&mut self, train: &WindowedDataset, valid: Option<&WindowedDataset>) -> FitReport {
        let mut net = self.build(train.num_features(), train.horizon);
        let report = neural::fit_network(&mut net, self.config.spec, train, valid);
        self.network = Some(net);
        report
    }

    fn predict(&self, x: &Tensor) -> Tensor {
        let net = self.network.as_ref().expect("predict before fit"); // lint: allow(r2) — Forecaster::predict contract
        neural::predict_network(net, x, self.config.spec.batch_size)
    }

    fn state(&self) -> Option<ModelState> {
        let net = self.network.as_ref()?;
        let mut st = ModelState::new("LSTM", net.features, net.horizon);
        st.push_meta("hidden", self.config.hidden as f64);
        st.push_meta("layers", self.config.layers as f64);
        st.push_meta("dropout", self.config.dropout as f64);
        neural::push_spec_meta(&mut st, &self.config.spec);
        st.tensors = net.store.export_named();
        Some(st)
    }

    fn load_state(&mut self, state: &ModelState) -> Result<(), CheckpointError> {
        self.config = Self::config_from_state(state)?;
        let mut net = self.build(state.features, state.horizon);
        net.store.import_named(&state.tensors)?;
        self.network = Some(net);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use timeseries::{make_windows, TimeSeriesFrame};

    fn sine_dataset(n: usize) -> WindowedDataset {
        let series: Vec<f32> = (0..n).map(|i| 0.5 + 0.4 * (i as f32 * 0.3).sin()).collect();
        let frame = TimeSeriesFrame::from_columns(&[("cpu", series)]).unwrap();
        make_windows(&frame, "cpu", 8, 1).unwrap()
    }

    #[test]
    fn learns_a_sine_wave() {
        let ds = sine_dataset(400);
        let mut model = LstmForecaster::new(LstmConfig {
            hidden: 16,
            layers: 1,
            dropout: 0.0,
            spec: NeuralTrainSpec {
                epochs: 25,
                learning_rate: 5e-3,
                ..Default::default()
            },
        });
        let report = model.fit(&ds, None);
        assert!(report.train_loss.len() <= 25);
        let (truth, pred) = model.evaluate(&ds);
        let mse = timeseries::metrics::mse(&truth, &pred);
        assert!(mse < 0.01, "LSTM failed to learn a sine: mse {mse}");
        assert!(model.num_parameters().unwrap() > 0);
    }

    #[test]
    fn early_stopping_with_validation() {
        let ds = sine_dataset(300);
        let (train, valid, _) = timeseries::split_windows(&ds, timeseries::SplitRatios::PAPER);
        let mut model = LstmForecaster::new(LstmConfig {
            hidden: 8,
            layers: 1,
            dropout: 0.0,
            spec: NeuralTrainSpec {
                epochs: 200,
                patience: 4,
                learning_rate: 5e-3,
                ..Default::default()
            },
        });
        let report = model.fit(&train, Some(&valid));
        assert!(report.train_loss.len() < 200, "early stopping never fired");
        assert!(!report.valid_loss.is_empty());
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_requires_fit() {
        let model = LstmForecaster::new(LstmConfig::default());
        model.predict(&Tensor::zeros(&[1, 4, 1]));
    }
}
