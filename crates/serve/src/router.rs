//! Entity → shard routing. FNV-1a over the entity id gives a stable,
//! uniform assignment: the same id always lands on the same shard (so
//! per-entity message order is preserved by the shard's FIFO queue), and
//! ids spread evenly across the worker pool.

/// FNV-1a hash of an entity id.
pub fn entity_hash(id: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in id.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The shard an entity id is served by, for a pool of `shards` workers.
pub fn shard_for(id: &str, shards: usize) -> usize {
    assert!(shards > 0, "shard pool cannot be empty");
    (entity_hash(id) % shards as u64) as usize
}

/// Group entity ids by their target shard — the fan-out step of a batched
/// forecast request. Returns one `(shard, ids)` bucket per non-empty shard.
pub fn group_by_shard<'a>(ids: &[&'a str], shards: usize) -> Vec<(usize, Vec<&'a str>)> {
    let mut buckets: Vec<Vec<&str>> = vec![Vec::new(); shards];
    for &id in ids {
        buckets[shard_for(id, shards)].push(id);
    }
    buckets
        .into_iter()
        .enumerate()
        .filter(|(_, ids)| !ids.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_deterministic() {
        for id in ["c_0", "c_1", "container-8153", ""] {
            assert_eq!(shard_for(id, 7), shard_for(id, 7));
        }
    }

    #[test]
    fn assignment_is_reasonably_uniform() {
        let shards = 8;
        let mut counts = vec![0usize; shards];
        for i in 0..4096 {
            counts[shard_for(&format!("c_{i}"), shards)] += 1;
        }
        let expected = 4096 / shards;
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                c > expected / 2 && c < expected * 2,
                "shard {s} got {c} of 4096 entities (expected ~{expected})"
            );
        }
    }

    #[test]
    fn group_by_shard_covers_every_id_once() {
        let ids: Vec<String> = (0..100).map(|i| format!("c_{i}")).collect();
        let refs: Vec<&str> = ids.iter().map(String::as_str).collect();
        let groups = group_by_shard(&refs, 4);
        let total: usize = groups.iter().map(|(_, g)| g.len()).sum();
        assert_eq!(total, 100);
        for (shard, group) in &groups {
            for id in group {
                assert_eq!(shard_for(id, 4), *shard);
            }
        }
    }

    #[test]
    fn single_shard_takes_everything() {
        assert_eq!(shard_for("anything", 1), 0);
    }
}
