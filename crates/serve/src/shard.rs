//! The shard worker: one thread owning a disjoint set of entities, driven
//! by a bounded FIFO message queue. Because an entity always routes to the
//! same shard, its messages are processed in arrival order — an ingest
//! followed by a forecast request is guaranteed to see the new sample.
//!
//! The message loop here is *supervised*: [`crate::supervisor`] runs it
//! under `catch_unwind` and restarts it (slots intact) when a panic
//! escapes, so one misbehaving model cannot take a whole shard's entities
//! offline. Samples are validated at this boundary (arity, NaN/Inf,
//! sequence gaps) and repaired or quarantined; non-finite or panicking
//! forecasts flip the entity into degraded mode, served by a naive
//! fallback until a clean refit restores it.
//!
//! Refits never run here. When an entity's cadence fires (or a degraded
//! entity needs recovery), the shard ships a [`RefitJob`] — a history
//! snapshot plus the model architecture — to the background refit pool and
//! keeps serving from the old model (or fallback); the freshly trained
//! replacement arrives later as [`ShardMsg::RefitDone`] and is validated
//! before being swapped in between messages.
//!
//! Every timing decision goes through the injected [`obs::Clock`] (span
//! durations, refit backoff and deadlines, injected stalls), and every
//! fault-path transition — quarantine, repair, degradation, refit
//! outcome, batch forecast — is recorded in the service's
//! [`obs::Journal`] with shard and entity attribution.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use models::checkpoint::{forecaster_like, ModelState};
use models::Forecaster;
use obs::{EventKind, Journal, SharedClock, Span};
use rptcn::{
    prepare, run_model, Calibration, ConformalState, DecisionConfig, DecisionRule,
    FittedPreprocess, HysteresisState, PipelineConfig, PredictorState, ResourcePredictor,
    ScaleAction,
};
use tensor::Tensor;
use timeseries::TimeSeriesFrame;

use crate::error::ServeError;
use crate::fallback::FallbackForecaster;
use crate::faults::{FaultPlan, RefitFault};
use crate::interval::{IntervalForecast, IntervalSource, Reservation};
use crate::service::{IngestGuard, RefitPolicy};
use crate::stats::{lock_recover, EntityHealth, ShardStatsCore};
use crate::supervisor::EntityHealthReport;

/// Per-entity results of a batched forecast request.
pub(crate) type ForecastReplies = Vec<(String, Result<Vec<f32>, ServeError>)>;

/// Per-entity results of a batched interval-forecast request.
pub(crate) type IntervalReplies = Vec<(String, Result<IntervalForecast, ServeError>)>;

/// Per-entity results of a batched reservation request.
pub(crate) type ReserveReplies = Vec<(String, Result<Reservation, ServeError>)>;

/// When a sequence gap is detected, at most this many synthetic
/// forward-fill samples are inserted to keep window continuity (the
/// paper's cleaning step caps how much missing data is worth repairing).
const MAX_GAP_FILL: u64 = 4;

/// Real-time slice the refit watchdog waits per poll while comparing the
/// attempt's elapsed time — measured on the injected clock — against the
/// deadline. Small enough that a virtual-clock timeout is noticed almost
/// immediately, large enough not to spin.
const WATCHDOG_POLL: Duration = Duration::from_millis(2);

/// Everything a shard worker can be asked to do.
pub(crate) enum ShardMsg {
    /// Onboard a fitted predictor under `id`.
    Install {
        id: String,
        predictor: Box<ResourcePredictor>,
        reply: SyncSender<Result<(), ServeError>>,
    },
    /// One monitoring sample for `id` (fire-and-forget). `seq` is the
    /// caller's monotone sample counter when it has one — gaps are detected
    /// and repaired, stale replays quarantined.
    Ingest {
        id: String,
        sample: Vec<f32>,
        seq: Option<u64>,
    },
    /// Forecast a batch of entities living on this shard.
    ForecastBatch {
        ids: Vec<String>,
        reply: SyncSender<ForecastReplies>,
    },
    /// Forecast a batch of entities with conformal interval offsets.
    ForecastIntervalBatch {
        ids: Vec<String>,
        reply: SyncSender<IntervalReplies>,
    },
    /// Decide capacity reservations for a batch of entities.
    ReserveBatch {
        ids: Vec<String>,
        reply: SyncSender<ReserveReplies>,
    },
    /// A background refit finished.
    RefitDone { id: String, outcome: RefitOutcome },
    /// Capture the state of every entity on this shard, sorted by id.
    Snapshot {
        reply: SyncSender<Result<Vec<(String, PredictorState)>, ServeError>>,
    },
    /// Evict an entity from this shard (used when its state migrates to
    /// another node). Replies `false` if the entity was never installed.
    Remove { id: String, reply: SyncSender<bool> },
    /// Report every entity's serving health, sorted by id.
    Health {
        reply: SyncSender<Vec<(String, EntityHealthReport)>>,
    },
    /// Round-trip marker: replied to once every earlier message is done.
    Barrier { reply: SyncSender<()> },
    /// Stop the worker. Needed to break the sender cycle at shutdown: shards
    /// hold refit-pool senders and refit workers hold shard senders, so
    /// neither channel would close on its own.
    Shutdown,
}

/// How a background refit ended.
pub(crate) enum RefitOutcome {
    /// Training succeeded; the replacement still has to pass validation on
    /// the live history before it is installed.
    Replaced(Box<dyn Forecaster + Send>, FittedPreprocess),
    /// Every attempt failed (bad data, divergence, injected fault).
    Failed,
    /// The last attempt exceeded the refit deadline and was abandoned.
    TimedOut,
}

/// A unit of background training: everything the refit pool needs to fit a
/// fresh model without touching the live predictor. Cloneable so a timed
/// attempt can move its own copy onto a watchdog thread.
#[derive(Clone)]
pub(crate) struct RefitJob {
    pub entity: String,
    pub shard: usize,
    pub frame: TimeSeriesFrame,
    pub cfg: PipelineConfig,
    pub model_state: ModelState,
}

pub(crate) struct EntitySlot {
    pub(crate) predictor: ResourcePredictor,
    /// Index of the pipeline target within the sample layout (for scoring
    /// and for feeding the fallback).
    target_column: Option<usize>,
    samples_since_refit: usize,
    pub(crate) refit_in_flight: bool,
    /// Forecast issued at the previous ingest, scored on the next one.
    pending: Option<f32>,
    pub(crate) health: EntityHealth,
    /// Always-warm naive forecaster serving while the model is degraded.
    pub(crate) fallback: FallbackForecaster,
    /// Last fully-finite sample, used to repair poisoned values and fill
    /// sequence gaps.
    last_valid: Option<Vec<f32>>,
    /// Next expected sequence number when the caller supplies them.
    next_seq: Option<u64>,
    /// Times this entity's model crashed the shard worker.
    pub(crate) crashes: u32,
    pub(crate) last_error: Option<ServeError>,
    horizon: usize,
    /// Rolling signed residuals (`actual − forecast`, raw units) fed from
    /// ingest-time scoring; backs interval offsets and reservations.
    pub(crate) conformal: ConformalState,
    /// Per-entity scale-down damping state.
    hysteresis: HysteresisState,
    /// Last interval served while the entity was healthy — what a
    /// degraded entity answers from. The point buffer is reused in place
    /// on refresh, so steady-state serving never reallocates it.
    last_good: Option<LastGoodInterval>,
}

/// Snapshot of the most recent healthy interval, kept per entity so a
/// degraded model never forces callers onto an uncovered point estimate.
struct LastGoodInterval {
    point: Vec<f32>,
    offset_lo: f32,
    offset_hi: f32,
    /// Upper offset at the cost model's critical ratio (for reservations).
    reserve_offset: f32,
    calibration: Calibration,
}

/// Static configuration handed to each shard worker.
pub(crate) struct ShardContext {
    pub shard_id: usize,
    pub stats: Arc<ShardStatsCore>,
    /// Time source for spans, stalls and refit pacing — the production
    /// monotonic clock, or a `SimClock` in deterministic tests.
    pub clock: SharedClock,
    /// Fleet-wide event journal; every entry this shard writes carries its
    /// shard id.
    pub journal: Arc<Journal>,
    pub refit_tx: Sender<RefitJob>,
    /// Dispatch a background refit after this many samples per entity
    /// (0 disables periodic refits).
    pub refit_every: usize,
    /// Whether a refit pool exists at all — recovery refits for degraded
    /// entities are only dispatched when someone will train them.
    pub refit_enabled: bool,
    /// Issue (and later score) a rolling forecast on every ingest.
    pub score_on_ingest: bool,
    /// What to do with invalid samples at the shard boundary.
    pub ingest_guard: IngestGuard,
    /// Fault-injection plan (chaos tests); `None` in production.
    pub faults: Option<FaultPlan>,
    /// Cost model + hysteresis for capacity reservations.
    pub decision: DecisionConfig,
    /// Nominal central coverage of served intervals (e.g. 0.9).
    pub interval_coverage: f64,
    /// Size of each entity's conformal residual window.
    pub residual_window: usize,
}

impl ShardContext {
    /// Record a journal event attributed to this shard.
    pub(crate) fn note(&self, kind: EventKind, entity: Option<&str>, detail: String) {
        self.journal.emit(
            self.clock.now_nanos(),
            kind,
            Some(self.shard_id),
            entity,
            detail,
        );
    }
}

/// One pass of the shard message loop. Runs until every sender is dropped
/// or `Shutdown` arrives; panics unwind into the supervisor, which records
/// the entity named in `current` as the culprit and restarts the loop with
/// `slots` intact.
pub(crate) fn shard_loop(
    ctx: &ShardContext,
    rx: &Receiver<ShardMsg>,
    slots: &mut HashMap<String, EntitySlot>,
    current: &mut Option<String>,
) {
    while let Ok(msg) = rx.recv() {
        ctx.stats.queue_depth.dec();
        if let Some(stall) = ctx
            .faults
            .as_ref()
            .and_then(|p| p.message_stall(ctx.shard_id))
        {
            // Stalls wait on the injected clock like every other delay.
            // Backpressure tests that need the bounded queue to genuinely
            // fill keep the production clock, where this is a real sleep.
            ctx.clock.sleep(stall);
        }
        match msg {
            ShardMsg::Install {
                id,
                predictor,
                reply,
            } => {
                let result = install_entity(ctx, slots, id, predictor);
                let _ = reply.send(result);
            }
            ShardMsg::Ingest { id, sample, seq } => {
                ingest_sample(ctx, slots, current, id, sample, seq);
                *current = None;
            }
            ShardMsg::ForecastBatch { ids, reply } => {
                let _ = reply.send(forecast_many(ctx, slots, current, ids));
            }
            ShardMsg::ForecastIntervalBatch { ids, reply } => {
                let _ = reply.send(forecast_interval_many(ctx, slots, current, ids));
            }
            ShardMsg::ReserveBatch { ids, reply } => {
                let _ = reply.send(reserve_many(ctx, slots, current, ids));
            }
            ShardMsg::RefitDone { id, outcome } => {
                *current = Some(id.clone());
                apply_refit_outcome(ctx, slots, &id, outcome);
                *current = None;
            }
            ShardMsg::Snapshot { reply } => {
                let _ = reply.send(snapshot_all(slots));
            }
            ShardMsg::Remove { id, reply } => {
                let removed = match slots.remove(&id) {
                    Some(slot) => {
                        ctx.stats.entities.dec();
                        if slot.health == EntityHealth::Degraded {
                            ctx.stats.degraded.dec();
                        }
                        true
                    }
                    None => false,
                };
                let _ = reply.send(removed);
            }
            ShardMsg::Health { reply } => {
                let mut out: Vec<(String, EntityHealthReport)> = slots
                    .iter()
                    .map(|(id, slot)| {
                        (
                            id.clone(),
                            EntityHealthReport {
                                health: slot.health,
                                crashes: slot.crashes,
                                last_error: slot.last_error.clone(),
                            },
                        )
                    })
                    .collect();
                out.sort_by(|a, b| a.0.cmp(&b.0));
                let _ = reply.send(out);
            }
            ShardMsg::Barrier { reply } => {
                let _ = reply.send(());
            }
            ShardMsg::Shutdown => break,
        }
    }
}

fn install_entity(
    ctx: &ShardContext,
    slots: &mut HashMap<String, EntitySlot>,
    id: String,
    predictor: Box<ResourcePredictor>,
) -> Result<(), ServeError> {
    match slots.entry(id) {
        Entry::Occupied(entry) => Err(ServeError::DuplicateEntity(entry.key().clone())),
        Entry::Vacant(entry) => {
            let target = predictor.config().target.clone();
            let target_column = predictor.column_names().iter().position(|n| n == &target);
            let horizon = predictor.config().horizon;
            let mut fallback = FallbackForecaster::default();
            fallback.seed(&predictor.target_history(64));
            let last_valid = predictor
                .last_sample()
                .filter(|s| s.iter().all(|v| v.is_finite()));
            entry.insert(EntitySlot {
                predictor: *predictor,
                target_column,
                samples_since_refit: 0,
                refit_in_flight: false,
                pending: None,
                health: EntityHealth::Healthy,
                fallback,
                last_valid,
                next_seq: None,
                crashes: 0,
                last_error: None,
                horizon,
                conformal: ConformalState::new(ctx.residual_window),
                hysteresis: HysteresisState::default(),
                last_good: None,
            });
            ctx.stats.entities.inc();
            Ok(())
        }
    }
}

fn ingest_sample(
    ctx: &ShardContext,
    slots: &mut HashMap<String, EntitySlot>,
    current: &mut Option<String>,
    id: String,
    mut sample: Vec<f32>,
    seq: Option<u64>,
) {
    // Records into the ingest histogram on every exit path, including the
    // quarantine early-returns.
    let _span = Span::start(&*ctx.clock, &ctx.stats.ingest_ns);
    let Some(slot) = slots.get_mut(&id) else {
        // No slot means no history to fabricate a forecast from: count the
        // orphan here; the next forecast for this id surfaces
        // `ServeError::UnknownEntity` to the caller.
        ctx.stats.unknown_entity_ingests.inc();
        return;
    };
    *current = Some(id.clone());
    if let Some(plan) = &ctx.faults {
        plan.corrupt_sample(&id, &mut sample);
    }

    // Guardrail 1: arity. A sample of the wrong width cannot be repaired.
    if sample.len() != slot.predictor.column_names().len() {
        ctx.stats.quarantined_samples.inc();
        ctx.note(
            EventKind::Quarantined,
            Some(&id),
            format!(
                "sample arity {} != {}",
                sample.len(),
                slot.predictor.column_names().len()
            ),
        );
        return;
    }

    // Guardrail 2: sequence gaps (paper §III-A: monitoring streams lose
    // records). Stale replays are quarantined; gaps are forward-filled up
    // to a cap so the model's input window stays contiguous.
    if let Some(seq) = seq {
        match slot.next_seq {
            Some(expected) if seq < expected => {
                ctx.stats.quarantined_samples.inc();
                ctx.note(
                    EventKind::Quarantined,
                    Some(&id),
                    format!("stale sequence replay: got {seq}, expected {expected}"),
                );
                return;
            }
            Some(expected) if seq > expected => {
                let missed = seq - expected;
                ctx.stats.gap_samples.add(missed);
                if ctx.ingest_guard == IngestGuard::Repair {
                    if let Some(fill) = slot.last_valid.clone() {
                        for _ in 0..missed.min(MAX_GAP_FILL) {
                            let _ = slot.predictor.observe(&fill);
                        }
                    }
                }
            }
            _ => {}
        }
        slot.next_seq = Some(seq + 1);
    }

    // Guardrail 3: non-finite values — repaired by forward-filling the
    // last valid observation, or quarantined when repair is impossible.
    if sample.iter().any(|v| !v.is_finite()) {
        let repaired = match (ctx.ingest_guard, &slot.last_valid) {
            (IngestGuard::Repair, Some(last)) => {
                for (v, lv) in sample.iter_mut().zip(last) {
                    if !v.is_finite() {
                        *v = *lv;
                    }
                }
                true
            }
            _ => false,
        };
        if repaired {
            ctx.stats.repaired_samples.inc();
            ctx.note(
                EventKind::Repaired,
                Some(&id),
                "non-finite values forward-filled from last valid sample".to_string(),
            );
        } else {
            ctx.stats.quarantined_samples.inc();
            ctx.note(
                EventKind::Quarantined,
                Some(&id),
                "unrepairable non-finite sample".to_string(),
            );
            return;
        }
    }

    // Score the forecast issued last interval against the truth arriving
    // now.
    if let (Some(forecast), Some(col)) = (slot.pending.take(), slot.target_column) {
        if let Some(&actual) = sample.get(col) {
            lock_recover(&ctx.stats.score).score(forecast, actual);
            // Same signed residual (raw units) calibrates the entity's
            // conformal window; non-finite values are dropped inside.
            slot.conformal.push(actual - forecast);
        }
    }
    if slot.predictor.observe(&sample).is_err() {
        ctx.stats.quarantined_samples.inc();
        ctx.note(
            EventKind::Quarantined,
            Some(&id),
            "history rejected the sample".to_string(),
        );
        return;
    }
    if let Some(col) = slot.target_column {
        slot.fallback.observe(sample[col]);
    }
    slot.last_valid = Some(sample);
    ctx.stats.ingested.inc();
    slot.samples_since_refit += 1;
    if ctx.refit_every > 0 && slot.samples_since_refit >= ctx.refit_every && !slot.refit_in_flight {
        dispatch_refit(ctx, &id, slot);
    }
    if ctx.score_on_ingest {
        slot.pending = rolling_forecast(ctx, &id, slot).map(|fc| fc[0]);
    }
}

/// One-step forecast for ingest-time scoring: model when healthy (guarded
/// against panics and non-finite output), fallback otherwise — so the
/// rolling accuracy of degraded entities tracks what they actually serve.
fn rolling_forecast(ctx: &ShardContext, id: &str, slot: &mut EntitySlot) -> Option<Vec<f32>> {
    if slot.health == EntityHealth::Healthy {
        match catch_unwind(AssertUnwindSafe(|| slot.predictor.forecast())) {
            Ok(Ok(fc)) if !fc.is_empty() && fc.iter().all(|v| v.is_finite()) => return Some(fc),
            Ok(Ok(fc)) => degrade(
                ctx,
                id,
                slot,
                ServeError::Frame(format!("non-finite rolling forecast {fc:?}")),
            ),
            Ok(Err(e)) => degrade(ctx, id, slot, ServeError::from(e)),
            Err(_) => degrade(ctx, id, slot, ServeError::Frame("model panicked".into())),
        }
    }
    slot.fallback.forecast(slot.horizon)
}

/// Serve a batch of forecast requests. Healthy entities that share a
/// weight group (see [`ResourcePredictor::shared_group`]) and produce
/// identically-shaped input windows are stacked into ONE batched engine
/// call; every other entity — degraded, unknown, ungrouped, or alone in
/// its group — takes the per-entity path unchanged, so the fallback and
/// degradation semantics of [`forecast_entity`] are preserved exactly.
fn forecast_many(
    ctx: &ShardContext,
    slots: &mut HashMap<String, EntitySlot>,
    current: &mut Option<String>,
    ids: Vec<String>,
) -> ForecastReplies {
    /// (shared group, window, features): entities whose keys match can be
    /// stacked into one batch.
    type GroupKey = (u64, usize, usize);
    let mut replies: Vec<Option<Result<Vec<f32>, ServeError>>> =
        (0..ids.len()).map(|_| None).collect();
    // group key → [(reply index, normalized window)]
    let mut groups: HashMap<GroupKey, Vec<(usize, Vec<f32>)>> = HashMap::new();

    for (idx, id) in ids.iter().enumerate() {
        *current = Some(id.clone());
        if let Some(plan) = &ctx.faults {
            if plan.take_forecast_panic(id) {
                FaultPlan::forecast_panic_now(id);
            }
        }
        let batchable = slots.get(id).and_then(|slot| {
            if slot.health != EntityHealth::Healthy {
                return None;
            }
            let group = slot.predictor.shared_group()?;
            match catch_unwind(AssertUnwindSafe(|| slot.predictor.inference_window())) {
                Ok(Ok((x, w, f))) => Some(((group, w, f), x)),
                // Window preparation failed or panicked: the per-entity
                // path below re-runs it under its own guard and degrades.
                _ => None,
            }
        });
        match batchable {
            Some((key, x)) => groups.entry(key).or_default().push((idx, x)),
            None => replies[idx] = Some(forecast_one(ctx, slots, id)),
        }
        *current = None;
    }

    for ((_, window, features), mut members) in groups {
        // A singleton gains nothing from stacking; keep it on the
        // per-entity path so its behaviour and latency accounting are
        // identical to an ungrouped entity.
        if members.len() == 1 {
            let idx = members[0].0;
            let id = &ids[idx];
            *current = Some(id.clone());
            replies[idx] = Some(forecast_one(ctx, slots, id));
            *current = None;
            continue;
        }
        let batch_started = ctx.clock.now_nanos();
        let rows = members.len();
        let mut stacked = Vec::with_capacity(rows * window * features);
        for (_, x) in &members {
            stacked.extend_from_slice(x);
        }
        let leader = &ids[members[0].0];
        *current = Some(leader.clone());
        let x = Tensor::from_vec(stacked, &[rows, window, features]);
        // The leader was grouped from `slots` moments ago, so the lookup
        // cannot miss; treating a miss like a panicked batch keeps this
        // path panic-free and still answers every member below.
        let pred = slots
            .get(leader)
            .map(|slot| catch_unwind(AssertUnwindSafe(|| slot.predictor.predict_batch(&x))));
        *current = None;
        let pred = match pred {
            Some(Ok(pred)) => pred,
            None | Some(Err(_)) => {
                // The batched call panicked; retry each member alone so the
                // per-entity guard pins down and degrades the culprit while
                // its groupmates still get answers.
                for (idx, _) in members {
                    let id = &ids[idx];
                    *current = Some(id.clone());
                    replies[idx] = Some(forecast_one(ctx, slots, id));
                    *current = None;
                }
                continue;
            }
        };
        ctx.stats.batch_calls.inc();
        let per_entity_nanos = ctx.clock.now_nanos().saturating_sub(batch_started) / rows as u64;
        // Stacked batches of >= MIN_PARALLEL_ROWS rows are split across the
        // pinned batch-executor pool inside the engine; surface the pool
        // width so journal readers can attribute throughput.
        let workers = autograd::batch_exec::global().workers();
        ctx.note(
            EventKind::BatchForecast,
            None,
            format!("{rows} entities answered by one engine call ({workers}-worker pool)"),
        );
        let horizon = pred.shape()[1];
        members.sort_by_key(|(idx, _)| *idx);
        for (row, (idx, _)) in members.iter().enumerate() {
            let id = &ids[*idx];
            *current = Some(id.clone());
            let normalized = &pred.as_slice()[row * horizon..(row + 1) * horizon];
            // Members were grouped from `slots` in this same call, so the
            // lookup cannot miss; answer UnknownEntity rather than panic.
            let Some(slot) = slots.get_mut(id) else {
                replies[*idx] = Some(Err(ServeError::UnknownEntity(id.clone())));
                *current = None;
                continue;
            };
            let fc = slot.predictor.denormalize_forecast(normalized);
            if !fc.is_empty() && fc.iter().all(|v| v.is_finite()) {
                ctx.stats.forecasts.inc();
                ctx.stats.batched_forecasts.inc();
                ctx.stats.forecast_ns.record(per_entity_nanos);
                replies[*idx] = Some(Ok(fc));
            } else {
                // A bad row degrades only its own entity; the shared
                // fallback machinery answers, mirroring `forecast_entity`.
                degrade(
                    ctx,
                    id,
                    slot,
                    ServeError::Frame(format!("non-finite forecast {fc:?}")),
                );
                if ctx.refit_enabled && !slot.refit_in_flight {
                    dispatch_refit(ctx, id, slot);
                }
                replies[*idx] = Some(match slot.fallback.forecast(slot.horizon) {
                    Some(fb) => {
                        ctx.stats.fallback_forecasts.inc();
                        ctx.stats.forecasts.inc();
                        ctx.stats.forecast_ns.record(per_entity_nanos);
                        Ok(fb)
                    }
                    None => Err(ServeError::Poisoned(id.clone())),
                });
            }
            *current = None;
        }
    }

    ids.into_iter()
        .zip(replies)
        .map(|(id, res)| {
            // Every index is answered by the loops above; a hole would be
            // a batching bug, surfaced as an error instead of a panic.
            let res = res.unwrap_or_else(|| Err(ServeError::UnknownEntity(id.clone())));
            (id, res)
        })
        .collect()
}

/// Per-entity forecast with the original timing and counter accounting:
/// successful forecasts finish a span into the latency histogram, failed
/// ones cancel it so errors never skew the percentiles.
fn forecast_one(
    ctx: &ShardContext,
    slots: &mut HashMap<String, EntitySlot>,
    id: &str,
) -> Result<Vec<f32>, ServeError> {
    let span = Span::start(&*ctx.clock, &ctx.stats.forecast_ns);
    let res = forecast_entity(ctx, slots, id);
    if res.is_ok() {
        ctx.stats.forecasts.inc();
        span.finish();
    } else {
        span.cancel();
    }
    res
}

/// Batched interval forecasts. Point values come from the SAME
/// [`forecast_many`] path plain forecasts use, so the point block of an
/// interval reply is bitwise-identical to [`ShardMsg::ForecastBatch`];
/// the interval attaches as two scalar conformal offsets (no extra
/// allocation on the healthy streaming path — the point vector is moved,
/// not copied). Degraded entities are answered from their last-good
/// interval (journaled as `interval_fallback`), never from an uncovered
/// point estimate.
fn forecast_interval_many(
    ctx: &ShardContext,
    slots: &mut HashMap<String, EntitySlot>,
    current: &mut Option<String>,
    ids: Vec<String>,
) -> IntervalReplies {
    forecast_many(ctx, slots, current, ids)
        .into_iter()
        .map(|(id, res)| {
            let out = res.map(|point| attach_interval(ctx, slots, &id, point).0);
            (id, out)
        })
        .collect()
}

/// Batched capacity reservations: interval first (same machinery as
/// [`forecast_interval_many`], including the degraded last-good fallback),
/// then the Bayesian decision rule with per-entity hysteresis.
fn reserve_many(
    ctx: &ShardContext,
    slots: &mut HashMap<String, EntitySlot>,
    current: &mut Option<String>,
    ids: Vec<String>,
) -> ReserveReplies {
    let rule = DecisionRule::new(ctx.decision);
    forecast_many(ctx, slots, current, ids)
        .into_iter()
        .map(|(id, res)| {
            let out = res.map(|point| {
                let (interval, reserve_offset) = attach_interval(ctx, slots, &id, point);
                decide_reservation(ctx, slots, &rule, &id, &interval, reserve_offset)
            });
            (id, out)
        })
        .collect()
}

/// Attach conformal offsets to a point forecast that [`forecast_many`]
/// just produced for `id`. Returns the interval plus the upper offset at
/// the cost model's critical ratio (what a reservation adds on top of the
/// peak point forecast). Healthy entities refresh their last-good
/// interval in place (the stored point buffer is reused, not
/// reallocated); degraded entities answer from it.
fn attach_interval(
    ctx: &ShardContext,
    slots: &mut HashMap<String, EntitySlot>,
    id: &str,
    point: Vec<f32>,
) -> (IntervalForecast, f32) {
    let cold = ctx.decision.cold_start_headroom;
    let Some(slot) = slots.get_mut(id) else {
        // forecast_many only answers Ok for installed entities; a slot
        // evicted mid-batch is answered wide-open rather than panicking.
        let interval = IntervalForecast {
            point,
            offset_lo: -cold,
            offset_hi: cold,
            calibration: Calibration::Insufficient,
            source: IntervalSource::Widened,
        };
        return (interval, cold);
    };
    if slot.health == EntityHealth::Healthy {
        let calibration = slot.conformal.calibration();
        let (offset_lo, offset_hi, reserve_offset) = match calibration {
            Calibration::Calibrated => {
                let (lo, hi) = slot.conformal.interval_offsets(ctx.interval_coverage);
                let tau = ctx.decision.cost.critical_ratio();
                (lo, hi, slot.conformal.upper_offset(tau))
            }
            Calibration::Insufficient => {
                // Degrade gracefully: widest residual ever seen plus the
                // configured cold-start prior, on both sides.
                let w = slot.conformal.max_abs() + cold;
                (-w, w, w)
            }
        };
        match &mut slot.last_good {
            Some(lg) => {
                lg.point.clear();
                lg.point.extend_from_slice(&point);
                lg.offset_lo = offset_lo;
                lg.offset_hi = offset_hi;
                lg.reserve_offset = reserve_offset;
                lg.calibration = calibration;
            }
            None => {
                slot.last_good = Some(LastGoodInterval {
                    point: point.clone(),
                    offset_lo,
                    offset_hi,
                    reserve_offset,
                    calibration,
                });
            }
        }
        ctx.stats.interval_forecasts.inc();
        let interval = IntervalForecast {
            point,
            offset_lo,
            offset_hi,
            calibration,
            source: IntervalSource::Live,
        };
        (interval, reserve_offset)
    } else {
        ctx.stats.interval_fallbacks.inc();
        match &slot.last_good {
            Some(lg) => {
                ctx.note(
                    EventKind::IntervalFallback,
                    Some(id),
                    "degraded entity answered from last-good interval".to_string(),
                );
                let interval = IntervalForecast {
                    point: lg.point.clone(),
                    offset_lo: lg.offset_lo,
                    offset_hi: lg.offset_hi,
                    calibration: lg.calibration,
                    source: IntervalSource::LastGood,
                };
                (interval, lg.reserve_offset)
            }
            None => {
                let w = slot.conformal.max_abs() + cold;
                ctx.note(
                    EventKind::IntervalFallback,
                    Some(id),
                    "degraded entity with no last-good interval: fallback point widened"
                        .to_string(),
                );
                let interval = IntervalForecast {
                    point,
                    offset_lo: -w,
                    offset_hi: w,
                    calibration: Calibration::Insufficient,
                    source: IntervalSource::Widened,
                };
                (interval, w)
            }
        }
    }
}

/// Run one reservation decision through the rule + per-entity hysteresis,
/// with counter and journal accounting for executed scale actions.
fn decide_reservation(
    ctx: &ShardContext,
    slots: &mut HashMap<String, EntitySlot>,
    rule: &DecisionRule,
    id: &str,
    interval: &IntervalForecast,
    reserve_offset: f32,
) -> Reservation {
    // Reserve against the peak of the horizon: capacity must cover the
    // worst forecast step, not the average one.
    let peak = interval
        .point
        .iter()
        .fold(f32::NEG_INFINITY, |a, &b| a.max(b));
    let target = rule.target(peak, reserve_offset);
    let Some(slot) = slots.get_mut(id) else {
        return Reservation {
            target,
            reservation: target,
            action: ScaleAction::Hold,
            calibration: interval.calibration,
            source: interval.source,
        };
    };
    let decision = rule.decide(&mut slot.hysteresis, target);
    ctx.stats.reservations.inc();
    match decision.action {
        ScaleAction::Up => {
            ctx.stats.scale_ups.inc();
            ctx.note(
                EventKind::ScaleUp,
                Some(id),
                format!("reservation raised to {:.4}", decision.reservation),
            );
        }
        ScaleAction::Down => {
            ctx.stats.scale_downs.inc();
            ctx.note(
                EventKind::ScaleDown,
                Some(id),
                format!("reservation lowered to {:.4}", decision.reservation),
            );
        }
        ScaleAction::Hold => {}
    }
    Reservation {
        target,
        reservation: decision.reservation,
        action: decision.action,
        calibration: interval.calibration,
        source: interval.source,
    }
}

/// Serve one forecast request. Healthy entities use their model; any
/// panic, error or non-finite output flips them to degraded and the naive
/// fallback answers — the caller always receives finite values or a typed
/// error, never NaN.
fn forecast_entity(
    ctx: &ShardContext,
    slots: &mut HashMap<String, EntitySlot>,
    id: &str,
) -> Result<Vec<f32>, ServeError> {
    let Some(slot) = slots.get_mut(id) else {
        return Err(ServeError::UnknownEntity(id.to_string()));
    };
    if slot.health == EntityHealth::Healthy {
        match catch_unwind(AssertUnwindSafe(|| slot.predictor.forecast())) {
            Ok(Ok(fc)) if !fc.is_empty() && fc.iter().all(|v| v.is_finite()) => return Ok(fc),
            Ok(Ok(fc)) => degrade(
                ctx,
                id,
                slot,
                ServeError::Frame(format!("non-finite forecast {fc:?}")),
            ),
            Ok(Err(e)) => degrade(ctx, id, slot, ServeError::from(e)),
            Err(_) => degrade(ctx, id, slot, ServeError::Frame("model panicked".into())),
        }
        if ctx.refit_enabled && !slot.refit_in_flight {
            dispatch_refit(ctx, id, slot);
        }
    }
    match slot.fallback.forecast(slot.horizon) {
        Some(fc) => {
            ctx.stats.fallback_forecasts.inc();
            Ok(fc)
        }
        None => Err(ServeError::Poisoned(id.to_string())),
    }
}

/// Flip an entity into degraded mode (idempotent) and remember why. The
/// transition — not every repeated failure — is journalled.
pub(crate) fn degrade(ctx: &ShardContext, id: &str, slot: &mut EntitySlot, reason: ServeError) {
    if slot.health == EntityHealth::Healthy {
        slot.health = EntityHealth::Degraded;
        ctx.stats.degraded.inc();
        ctx.note(EventKind::Degraded, Some(id), reason.to_string());
    }
    slot.last_error = Some(reason);
}

fn apply_refit_outcome(
    ctx: &ShardContext,
    slots: &mut HashMap<String, EntitySlot>,
    id: &str,
    outcome: RefitOutcome,
) {
    let Some(slot) = slots.get_mut(id) else {
        return;
    };
    slot.refit_in_flight = false;
    match outcome {
        RefitOutcome::Replaced(model, preprocess) => {
            match slot.predictor.try_install_refit(model, preprocess) {
                Ok(()) => {
                    ctx.stats.refits_completed.inc();
                    ctx.note(
                        EventKind::RefitCompleted,
                        Some(id),
                        "replacement validated and swapped in".to_string(),
                    );
                    if slot.health == EntityHealth::Degraded {
                        slot.health = EntityHealth::Healthy;
                        ctx.stats.degraded.dec();
                        slot.last_error = None;
                        ctx.note(
                            EventKind::Recovered,
                            Some(id),
                            "clean refit restored the model".to_string(),
                        );
                    }
                }
                Err(e) => {
                    ctx.stats.refits_rejected.inc();
                    ctx.note(EventKind::RefitRollback, Some(id), e.0.clone());
                    slot.last_error = Some(ServeError::Frame(e.0));
                }
            }
        }
        RefitOutcome::Failed => {
            ctx.stats.refit_failures.inc();
            ctx.note(
                EventKind::RefitFailed,
                Some(id),
                "every training attempt failed".to_string(),
            );
            slot.last_error = Some(ServeError::Frame(format!(
                "background refit for `{id}` failed"
            )));
        }
        RefitOutcome::TimedOut => {
            ctx.stats.refit_timeouts.inc();
            ctx.note(
                EventKind::RefitTimedOut,
                Some(id),
                "last attempt exceeded the refit deadline".to_string(),
            );
            slot.last_error = Some(ServeError::RefitTimeout {
                entity: id.to_string(),
            });
        }
    }
}

/// Ship a shadow-refit job for `slot` to the background pool. The live
/// model keeps serving; `refit_in_flight` stops duplicate dispatches.
pub(crate) fn dispatch_refit(ctx: &ShardContext, id: &str, slot: &mut EntitySlot) {
    let Some(model_state) = slot.predictor.model_state() else {
        // Model cannot be checkpointed, so it cannot be shadow-trained
        // either; re-arm and keep serving.
        slot.samples_since_refit = 0;
        return;
    };
    let Ok(frame) = slot.predictor.history_snapshot() else {
        slot.samples_since_refit = 0;
        return;
    };
    let job = RefitJob {
        entity: id.to_string(),
        shard: ctx.shard_id,
        frame,
        cfg: slot.predictor.config().clone(),
        model_state,
    };
    if ctx.refit_tx.send(job).is_ok() {
        slot.refit_in_flight = true;
        slot.samples_since_refit = 0;
        ctx.stats.refits_started.inc();
    }
}

fn snapshot_all(
    slots: &HashMap<String, EntitySlot>,
) -> Result<Vec<(String, PredictorState)>, ServeError> {
    let mut ids: Vec<&String> = slots.keys().collect();
    ids.sort();
    ids.into_iter()
        .map(|id| {
            slots[id]
                .predictor
                .snapshot()
                .map(|st| (id.clone(), st))
                .map_err(ServeError::from)
        })
        .collect()
}

/// A refit-pool worker: pulls jobs, trains a fresh model of the same
/// architecture on the shipped history (with retries, bounded exponential
/// backoff and an optional per-attempt deadline, all paced on the injected
/// clock), and posts the outcome back to the owning shard. Each job's
/// end-to-end duration lands in the shard's `refit_ns` histogram. Exits
/// when the job channel closes.
pub(crate) fn run_refit_worker(
    rx: Arc<Mutex<Receiver<RefitJob>>>,
    shards: Vec<(SyncSender<ShardMsg>, Arc<ShardStatsCore>)>,
    policy: RefitPolicy,
    faults: Option<FaultPlan>,
    clock: SharedClock,
) {
    loop {
        // Hold the lock only while waiting: workers take turns receiving,
        // then train in parallel.
        let job = match lock_recover(&rx).recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        let (tx, stats) = &shards[job.shard];
        let span = Span::start(&*clock, &stats.refit_ns);
        let outcome = execute_refit(&job, &policy, faults.as_ref(), &clock);
        span.finish();
        stats.queue_depth.inc();
        if tx
            .send(ShardMsg::RefitDone {
                id: job.entity,
                outcome,
            })
            .is_err()
        {
            // Shard already gone: service is shutting down.
            stats.queue_depth.dec();
            return;
        }
    }
}

/// Run a job through the retry policy: every attempt is panic-guarded and
/// (when a deadline is set) abandoned if it exceeds it; failures back off
/// exponentially up to `backoff_max` so a struggling entity cannot hog the
/// pool. Backoff waits on the injected clock, so a `SimClock` turns the
/// whole retry ladder instant.
fn execute_refit(
    job: &RefitJob,
    policy: &RefitPolicy,
    faults: Option<&FaultPlan>,
    clock: &SharedClock,
) -> RefitOutcome {
    let fault = faults.and_then(|p| p.refit_fault(&job.entity));
    let mut timed_out = false;
    for attempt in 0..policy.max_attempts.max(1) {
        if attempt > 0 {
            let shift = (attempt - 1).min(16);
            let backoff = policy
                .backoff
                .saturating_mul(1u32 << shift)
                .min(policy.backoff_max);
            clock.sleep(backoff);
        }
        if fault == Some(RefitFault::Fail) {
            continue;
        }
        let delay = match fault {
            Some(RefitFault::Slow(d)) => Some(d),
            _ => None,
        };
        match attempt_refit(job, delay, policy.timeout, clock) {
            Ok(Some(replacement)) => return RefitOutcome::Replaced(replacement.0, replacement.1),
            Ok(None) => continue,
            Err(AttemptTimedOut) => {
                timed_out = true;
                continue;
            }
        }
    }
    if timed_out {
        RefitOutcome::TimedOut
    } else {
        RefitOutcome::Failed
    }
}

struct AttemptTimedOut;

type Replacement = (Box<dyn Forecaster + Send>, FittedPreprocess);

/// One training attempt. Panics are contained (a crashing `fit` is a
/// failed attempt, not a dead pool worker). With a deadline, training runs
/// on a watchdog thread; the watchdog compares elapsed time *on the
/// injected clock* against the deadline in short real-time polls, so a
/// virtually-delayed attempt under a `SimClock` times out deterministically
/// and without real waiting. A result that arrives after its (clock-time)
/// deadline is discarded as timed out, never installed.
fn attempt_refit(
    job: &RefitJob,
    injected_delay: Option<Duration>,
    timeout: Option<Duration>,
    clock: &SharedClock,
) -> Result<Option<Replacement>, AttemptTimedOut> {
    match timeout {
        None => {
            if let Some(d) = injected_delay {
                clock.sleep(d);
            }
            Ok(catch_unwind(AssertUnwindSafe(|| train_replacement(job))).unwrap_or(None))
        }
        Some(deadline) => {
            let owned = job.clone();
            let (tx, rx) = std::sync::mpsc::sync_channel(1);
            let attempt_clock = Arc::clone(clock);
            // Stamp the start *before* spawning: the attempt thread may
            // advance a `SimClock` (injected delay) before this thread
            // runs again, and that advance must count as elapsed time.
            let started = clock.now_nanos();
            std::thread::Builder::new()
                .name(format!("serve-refit-attempt-{}", owned.entity))
                .spawn(move || {
                    if let Some(d) = injected_delay {
                        attempt_clock.sleep(d);
                    }
                    let out = catch_unwind(AssertUnwindSafe(|| train_replacement(&owned)))
                        .unwrap_or(None);
                    let _ = tx.send(out);
                })
                .map_err(|_| AttemptTimedOut)?;
            let deadline_nanos = deadline.as_nanos() as u64;
            let over_deadline =
                |clock: &SharedClock| clock.now_nanos().saturating_sub(started) > deadline_nanos;
            loop {
                match rx.recv_timeout(WATCHDOG_POLL.min(deadline)) {
                    // Late results are discarded even though they arrived:
                    // in clock time the attempt overran its deadline.
                    Ok(_) if over_deadline(clock) => return Err(AttemptTimedOut),
                    Ok(out) => return Ok(out),
                    Err(RecvTimeoutError::Timeout) => {
                        if over_deadline(clock) {
                            return Err(AttemptTimedOut);
                        }
                    }
                    Err(RecvTimeoutError::Disconnected) => return Err(AttemptTimedOut),
                }
            }
        }
    }
}

/// Fit a fresh model of the same architecture on the job's history
/// snapshot. `None` when preparation or training fails — the shard then
/// keeps the model it has.
fn train_replacement(job: &RefitJob) -> Option<Replacement> {
    let mut model = forecaster_like(&job.model_state).ok()?;
    let prepared = prepare(&job.frame, &job.cfg).ok()?;
    run_model(model.as_mut(), &prepared);
    Some((model, prepared.fitted()))
}
