//! The shard worker: one thread owning a disjoint set of entities, driven
//! by a bounded FIFO message queue. Because an entity always routes to the
//! same shard, its messages are processed in arrival order — an ingest
//! followed by a forecast request is guaranteed to see the new sample.
//!
//! Refits never run here. When an entity's cadence fires, the shard ships
//! a [`RefitJob`] (history snapshot + model architecture) to the background
//! refit pool and keeps serving forecasts from the old model; the freshly
//! trained replacement arrives later as a [`ShardMsg::RefitDone`] and is
//! swapped in between messages.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use models::checkpoint::{forecaster_like, ModelState};
use models::Forecaster;
use rptcn::{
    prepare, run_model, FittedPreprocess, PipelineConfig, PredictorState, ResourcePredictor,
};
use timeseries::TimeSeriesFrame;

use crate::error::ServeError;
use crate::stats::ShardStatsCore;

/// Per-entity results of a batched forecast request.
pub(crate) type ForecastReplies = Vec<(String, Result<Vec<f32>, ServeError>)>;

/// Everything a shard worker can be asked to do.
pub(crate) enum ShardMsg {
    /// Onboard a fitted predictor under `id`.
    Install {
        id: String,
        predictor: Box<ResourcePredictor>,
        reply: SyncSender<Result<(), ServeError>>,
    },
    /// One monitoring sample for `id` (fire-and-forget).
    Ingest { id: String, sample: Vec<f32> },
    /// Forecast a batch of entities living on this shard.
    ForecastBatch {
        ids: Vec<String>,
        reply: SyncSender<ForecastReplies>,
    },
    /// A background refit finished (`None` = training failed; keep serving
    /// the old model and re-arm the cadence).
    RefitDone {
        id: String,
        replacement: Option<(Box<dyn Forecaster + Send>, FittedPreprocess)>,
    },
    /// Capture the state of every entity on this shard, sorted by id.
    Snapshot {
        reply: SyncSender<Result<Vec<(String, PredictorState)>, ServeError>>,
    },
    /// Round-trip marker: replied to once every earlier message is done.
    Barrier { reply: SyncSender<()> },
    /// Stop the worker. Needed to break the sender cycle at shutdown: shards
    /// hold refit-pool senders and refit workers hold shard senders, so
    /// neither channel would close on its own.
    Shutdown,
}

/// A unit of background training: everything the refit pool needs to fit a
/// fresh model without touching the live predictor.
pub(crate) struct RefitJob {
    pub entity: String,
    pub shard: usize,
    pub frame: TimeSeriesFrame,
    pub cfg: PipelineConfig,
    pub model_state: ModelState,
}

struct EntitySlot {
    predictor: ResourcePredictor,
    /// Index of the pipeline target within the sample layout (for scoring).
    target_column: Option<usize>,
    samples_since_refit: usize,
    refit_in_flight: bool,
    /// Forecast issued at the previous ingest, scored on the next one.
    pending: Option<f32>,
}

/// Static configuration handed to each shard worker.
pub(crate) struct ShardContext {
    pub shard_id: usize,
    pub stats: Arc<ShardStatsCore>,
    pub refit_tx: Sender<RefitJob>,
    /// Dispatch a background refit after this many samples per entity
    /// (0 disables periodic refits).
    pub refit_every: usize,
    /// Issue (and later score) a rolling forecast on every ingest.
    pub score_on_ingest: bool,
}

/// The shard worker loop. Runs until every sender is dropped.
pub(crate) fn run_shard(ctx: ShardContext, rx: Receiver<ShardMsg>) {
    let mut slots: HashMap<String, EntitySlot> = HashMap::new();
    while let Ok(msg) = rx.recv() {
        ctx.stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
        match msg {
            ShardMsg::Install {
                id,
                predictor,
                reply,
            } => {
                let result = match slots.entry(id) {
                    Entry::Occupied(entry) => Err(ServeError::DuplicateEntity(entry.key().clone())),
                    Entry::Vacant(entry) => {
                        let target = predictor.config().target.clone();
                        let target_column =
                            predictor.column_names().iter().position(|n| n == &target);
                        entry.insert(EntitySlot {
                            predictor: *predictor,
                            target_column,
                            samples_since_refit: 0,
                            refit_in_flight: false,
                            pending: None,
                        });
                        ctx.stats.entities.fetch_add(1, Ordering::Relaxed);
                        Ok(())
                    }
                };
                let _ = reply.send(result);
            }
            ShardMsg::Ingest { id, sample } => {
                let Some(slot) = slots.get_mut(&id) else {
                    ctx.stats.rejected.fetch_add(1, Ordering::Relaxed);
                    continue;
                };
                // Score the forecast issued last interval against the truth
                // arriving now.
                if let (Some(forecast), Some(col)) = (slot.pending.take(), slot.target_column) {
                    if let Some(&actual) = sample.get(col) {
                        ctx.stats
                            .score
                            .lock()
                            .expect("score accumulator poisoned")
                            .score(forecast, actual);
                    }
                }
                if slot.predictor.observe(&sample).is_err() {
                    ctx.stats.rejected.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                ctx.stats.ingested.fetch_add(1, Ordering::Relaxed);
                slot.samples_since_refit += 1;
                if ctx.refit_every > 0
                    && slot.samples_since_refit >= ctx.refit_every
                    && !slot.refit_in_flight
                {
                    dispatch_refit(&ctx, &id, slot);
                }
                if ctx.score_on_ingest {
                    if let Ok(fc) = slot.predictor.forecast() {
                        slot.pending = fc.first().copied();
                    }
                }
            }
            ShardMsg::ForecastBatch { ids, reply } => {
                let results: ForecastReplies = ids
                    .into_iter()
                    .map(|id| {
                        let started = Instant::now();
                        let res = match slots.get(&id) {
                            Some(slot) => slot.predictor.forecast().map_err(ServeError::from),
                            None => Err(ServeError::UnknownEntity(id.clone())),
                        };
                        if res.is_ok() {
                            ctx.stats.forecasts.fetch_add(1, Ordering::Relaxed);
                            ctx.stats
                                .latency
                                .lock()
                                .expect("latency ring poisoned")
                                .record(started.elapsed().as_nanos() as u64);
                        }
                        (id, res)
                    })
                    .collect();
                let _ = reply.send(results);
            }
            ShardMsg::RefitDone { id, replacement } => {
                let Some(slot) = slots.get_mut(&id) else {
                    continue;
                };
                slot.refit_in_flight = false;
                if let Some((model, preprocess)) = replacement {
                    slot.predictor.install_refit(model, preprocess);
                    ctx.stats.refits_completed.fetch_add(1, Ordering::Relaxed);
                }
            }
            ShardMsg::Snapshot { reply } => {
                let _ = reply.send(snapshot_all(&slots));
            }
            ShardMsg::Barrier { reply } => {
                let _ = reply.send(());
            }
            ShardMsg::Shutdown => break,
        }
    }
}

/// Ship a shadow-refit job for `slot` to the background pool. The live
/// model keeps serving; `refit_in_flight` stops duplicate dispatches.
fn dispatch_refit(ctx: &ShardContext, id: &str, slot: &mut EntitySlot) {
    let Some(model_state) = slot.predictor.model_state() else {
        // Model cannot be checkpointed, so it cannot be shadow-trained
        // either; re-arm and keep serving.
        slot.samples_since_refit = 0;
        return;
    };
    let Ok(frame) = slot.predictor.history_snapshot() else {
        slot.samples_since_refit = 0;
        return;
    };
    let job = RefitJob {
        entity: id.to_string(),
        shard: ctx.shard_id,
        frame,
        cfg: slot.predictor.config().clone(),
        model_state,
    };
    if ctx.refit_tx.send(job).is_ok() {
        slot.refit_in_flight = true;
        slot.samples_since_refit = 0;
        ctx.stats.refits_started.fetch_add(1, Ordering::Relaxed);
    }
}

fn snapshot_all(
    slots: &HashMap<String, EntitySlot>,
) -> Result<Vec<(String, PredictorState)>, ServeError> {
    let mut ids: Vec<&String> = slots.keys().collect();
    ids.sort();
    ids.into_iter()
        .map(|id| {
            slots[id]
                .predictor
                .snapshot()
                .map(|st| (id.clone(), st))
                .map_err(ServeError::from)
        })
        .collect()
}

/// A refit-pool worker: pulls jobs, trains a fresh model of the same
/// architecture on the shipped history, and posts the replacement back to
/// the owning shard. Exits when the job channel closes.
pub(crate) fn run_refit_worker(
    rx: Arc<Mutex<Receiver<RefitJob>>>,
    shards: Vec<(SyncSender<ShardMsg>, Arc<ShardStatsCore>)>,
) {
    loop {
        // Hold the lock only while waiting: workers take turns receiving,
        // then train in parallel.
        let job = match rx.lock().expect("refit queue poisoned").recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        let replacement = train_replacement(&job);
        let (tx, stats) = &shards[job.shard];
        stats.queue_depth.fetch_add(1, Ordering::Relaxed);
        if tx
            .send(ShardMsg::RefitDone {
                id: job.entity,
                replacement,
            })
            .is_err()
        {
            // Shard already gone: service is shutting down.
            stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
            return;
        }
    }
}

/// Fit a fresh model of the same architecture on the job's history
/// snapshot. `None` when preparation or training fails — the shard then
/// keeps the model it has.
fn train_replacement(job: &RefitJob) -> Option<(Box<dyn Forecaster + Send>, FittedPreprocess)> {
    let mut model = forecaster_like(&job.model_state).ok()?;
    let prepared = prepare(&job.frame, &job.cfg).ok()?;
    run_model(model.as_mut(), &prepared);
    Some((model, prepared.fitted()))
}
