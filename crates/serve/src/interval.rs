//! Public types for probabilistic serving: interval forecasts and
//! capacity reservations (the serve-side face of `rptcn::decide`).
//!
//! An interval is represented as the point forecast plus two *scalar*
//! offsets — the conformal lower/upper margins apply to every step of the
//! horizon — so attaching an interval to a streaming forecast costs two
//! floats, not another vector: zero extra allocations on the hot path.

use rptcn::{Calibration, ScaleAction};

/// Where an interval's numbers came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntervalSource {
    /// Healthy entity: live point forecast + live conformal offsets.
    Live,
    /// Degraded entity answered from its last-good interval (journaled as
    /// `interval_fallback`) — never an uncovered point estimate.
    LastGood,
    /// Degraded entity with no last-good interval yet: the fallback point
    /// widened by the largest residual magnitude ever observed.
    Widened,
}

/// A point forecast with calibrated conformal interval offsets.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalForecast {
    /// Per-step point forecast (same values as [`crate::PredictionService::forecast`]).
    pub point: Vec<f32>,
    /// Signed offset to add below each point value (usually negative).
    pub offset_lo: f32,
    /// Offset to add above each point value.
    pub offset_hi: f32,
    /// Whether the offsets carry the conformal coverage guarantee.
    pub calibration: Calibration,
    /// Provenance of the numbers.
    pub source: IntervalSource,
}

impl IntervalForecast {
    /// Lower interval bound for horizon step `i`.
    pub fn lower(&self, i: usize) -> f32 {
        self.point[i] + self.offset_lo
    }

    /// Upper interval bound for horizon step `i`.
    pub fn upper(&self, i: usize) -> f32 {
        self.point[i] + self.offset_hi
    }

    /// Horizon length of the point forecast.
    pub fn len(&self) -> usize {
        self.point.len()
    }

    /// True when the point forecast is empty.
    pub fn is_empty(&self) -> bool {
        self.point.is_empty()
    }
}

/// One capacity-reservation decision for an entity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reservation {
    /// The raw Bayesian target: peak point forecast plus the conformal
    /// offset at the cost model's critical ratio, clamped.
    pub target: f32,
    /// The standing reservation after hysteresis.
    pub reservation: f32,
    /// How the standing reservation changed.
    pub action: ScaleAction,
    /// Calibration of the offsets behind the target.
    pub calibration: Calibration,
    /// Provenance of the interval behind the target.
    pub source: IntervalSource,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_point_plus_scalar_offsets() {
        let iv = IntervalForecast {
            point: vec![0.5, 0.6],
            offset_lo: -0.1,
            offset_hi: 0.2,
            calibration: Calibration::Calibrated,
            source: IntervalSource::Live,
        };
        assert!((iv.lower(0) - 0.4).abs() < 1e-6);
        assert!((iv.upper(1) - 0.8).abs() < 1e-6);
        assert_eq!(iv.len(), 2);
        assert!(!iv.is_empty());
    }
}
