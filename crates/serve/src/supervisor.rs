//! Shard supervision: the shard message loop runs under `catch_unwind`,
//! and a panic escaping it — a crashing model, a poisoned invariant, an
//! injected fault — restarts the loop with the surviving entity slots
//! intact instead of killing the thread and orphaning every entity on the
//! shard.
//!
//! On each restart the supervisor:
//! 1. bumps the shard's `restarts` counter,
//! 2. attributes the crash to the entity whose message was being processed
//!    (tracked in a crash cursor the loop updates before touching any
//!    predictor),
//! 3. rebuilds that entity's predictor from its own snapshot — shedding
//!    any state a half-completed mutation may have corrupted — and flips
//!    it to [`EntityHealth::Degraded`] so the naive fallback serves it,
//! 4. dispatches a recovery refit so the entity returns to `Healthy` as
//!    soon as a clean model can be trained from its history.
//!
//! Callers that were waiting on a reply channel when the panic struck
//! observe [`ServeError::ShardDown`](crate::ServeError::ShardDown) for
//! that one request (the reply sender is dropped during unwinding) and
//! succeed on retry — the restarted loop keeps draining the same queue.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::Receiver;

use obs::{EventKind, Span};
use rptcn::ResourcePredictor;

use crate::error::ServeError;
use crate::shard::{degrade, dispatch_refit, shard_loop, EntitySlot, ShardContext, ShardMsg};
use crate::stats::EntityHealth;

/// Serving health of one entity, as reported by
/// [`PredictionService::entity_health`](crate::PredictionService::entity_health).
#[derive(Debug, Clone, PartialEq)]
pub struct EntityHealthReport {
    pub health: EntityHealth,
    /// Times this entity's model crashed the shard worker.
    pub crashes: u32,
    /// Why the entity last left `Healthy` (cleared on recovery).
    pub last_error: Option<ServeError>,
}

/// Run a shard worker until clean shutdown, restarting its message loop
/// whenever a panic unwinds out of it.
pub(crate) fn run_supervised_shard(ctx: ShardContext, rx: Receiver<ShardMsg>) {
    let mut slots: HashMap<String, EntitySlot> = HashMap::new();
    loop {
        let mut current: Option<String> = None;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            shard_loop(&ctx, &rx, &mut slots, &mut current)
        }));
        match outcome {
            Ok(()) => break,
            Err(_) => {
                ctx.stats.restarts.inc();
                ctx.note(
                    EventKind::ShardRestart,
                    current.as_deref(),
                    match &current {
                        Some(id) => format!("panic escaped while processing `{id}`"),
                        None => "panic escaped between messages".to_string(),
                    },
                );
                if let Some(id) = current {
                    // Restart handling — degrade, rebuild, recovery refit —
                    // is timed into the shard's restart histogram.
                    let _span = Span::start(&*ctx.clock, &ctx.stats.restart_ns);
                    quarantine_culprit(&ctx, &mut slots, &id);
                }
            }
        }
    }
}

/// Contain the entity whose message crashed the loop: degrade it, rebuild
/// its predictor from a snapshot, and queue a recovery refit.
fn quarantine_culprit(ctx: &ShardContext, slots: &mut HashMap<String, EntitySlot>, id: &str) {
    let Some(slot) = slots.get_mut(id) else {
        return;
    };
    slot.crashes += 1;
    degrade(
        ctx,
        id,
        slot,
        ServeError::Frame(format!("entity `{id}` crashed the shard worker")),
    );
    // Shed whatever a half-completed mutation left behind: a freshly
    // deserialised predictor from the entity's own snapshot is guaranteed
    // internally consistent. If even snapshotting fails, keep the old
    // object — degraded mode never calls its model anyway.
    if let Ok(state) = slot.predictor.snapshot() {
        if let Ok(fresh) = ResourcePredictor::from_state(&state) {
            slot.predictor = fresh;
        }
    }
    // A refit may have been in flight when the crash hit; it will still be
    // applied (or fail) via its RefitDone message. Only dispatch a recovery
    // refit when none is pending.
    if ctx.refit_enabled && !slot.refit_in_flight {
        dispatch_refit(ctx, id, slot);
    }
}
