//! The public face of the serving subsystem: [`PredictionService`] owns a
//! pool of shard workers (each a thread with a bounded FIFO queue) and a
//! background refit pool, and routes every entity to a fixed shard by
//! hashing its id.
//!
//! Lifecycle: `new` spawns the threads, [`PredictionService::add_entity`]
//! fits a model on the caller's thread and installs it on its shard,
//! [`PredictionService::ingest`] streams monitoring samples (with explicit
//! backpressure), [`PredictionService::forecast_many`] fans a batched
//! forecast request out across shards, and
//! [`PredictionService::checkpoint`] / [`PredictionService::restore`]
//! round-trip the whole fleet through a versioned binary file.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::path::Path;
use std::sync::mpsc::{channel, sync_channel, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use models::Forecaster;
use obs::{EventKind, Journal, MetricsSnapshot, MonotonicClock, Registry, SharedClock};
use rptcn::{new_shared_group, DecisionConfig, PipelineConfig, PipelineRun, ResourcePredictor};
use timeseries::TimeSeriesFrame;

use crate::checkpoint::{load_fleet, save_fleet};
use crate::error::ServeError;
use crate::faults::FaultPlan;
use crate::interval::{IntervalForecast, Reservation};
use crate::router::{group_by_shard, shard_for};
use crate::shard::{run_refit_worker, RefitJob, ShardContext, ShardMsg};
use crate::stats::{ServiceStats, ShardStatsCore};
use crate::supervisor::{run_supervised_shard, EntityHealthReport};

/// What to do when an entity's shard queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backpressure {
    /// Block the caller until the shard drains (no sample loss).
    Block,
    /// Fail fast with [`ServeError::QueueFull`]; the caller decides whether
    /// to retry or drop.
    Reject,
}

/// What to do with an invalid (NaN/Inf) sample at the shard boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestGuard {
    /// Forward-fill poisoned values from the entity's last valid sample
    /// (the paper's cleaning step, applied online). Counted in
    /// `repaired_samples`.
    Repair,
    /// Drop invalid samples entirely. Counted in `quarantined_samples`.
    Quarantine,
}

/// Retry/backoff/deadline policy for background refits.
#[derive(Debug, Clone)]
pub struct RefitPolicy {
    /// Training attempts per refit job before it is reported failed.
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per retry.
    pub backoff: Duration,
    /// Upper bound on the exponential backoff.
    pub backoff_max: Duration,
    /// Per-attempt deadline. A training run that exceeds it is abandoned
    /// on its watchdog thread and counted in `refit_timeouts`, so a wedged
    /// job cannot stall the entity's refit cadence. `None` disables the
    /// watchdog (attempts run inline on the pool worker).
    pub timeout: Option<Duration>,
}

impl Default for RefitPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            backoff: Duration::from_millis(25),
            backoff_max: Duration::from_secs(1),
            timeout: None,
        }
    }
}

/// Tuning knobs for a [`PredictionService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of shard worker threads.
    pub shards: usize,
    /// Bounded capacity of each shard's message queue.
    pub queue_capacity: usize,
    /// Background training threads shared by all shards.
    pub refit_workers: usize,
    /// Dispatch a background refit after this many ingested samples per
    /// entity (0 disables periodic refits).
    pub refit_every: usize,
    /// Full-queue policy for [`PredictionService::ingest`].
    pub backpressure: Backpressure,
    /// Issue a rolling one-step forecast on every ingest and score it
    /// against the next sample (feeds `rolling_mae` / `rolling_mse`).
    pub score_on_ingest: bool,
    /// Time source for every latency span, refit backoff/deadline and
    /// injected stall. Production uses the default monotonic clock; tests
    /// inject an [`obs::SimClock`] to advance time by hand.
    pub clock: SharedClock,
    /// Capacity of the service's bounded event journal (operational
    /// events: restarts, degradations, quarantines, refit outcomes).
    pub journal_capacity: usize,
    /// Shard-boundary policy for invalid samples.
    pub ingest_guard: IngestGuard,
    /// Retry/backoff/deadline policy for background refits.
    pub refit_policy: RefitPolicy,
    /// Deterministic fault-injection plan for chaos tests; `None` (the
    /// default) in production.
    pub faults: Option<FaultPlan>,
    /// Cost model, hysteresis and reservation clamps behind
    /// [`PredictionService::reserve`].
    pub decision: DecisionConfig,
    /// Nominal two-sided coverage of
    /// [`PredictionService::forecast_with_interval`] bounds (e.g. `0.9`
    /// for a 90% interval).
    pub interval_coverage: f64,
    /// Per-entity rolling residual window feeding conformal calibration
    /// (scored on ingest when `score_on_ingest` is set).
    pub residual_window: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            queue_capacity: 1024,
            refit_workers: 2,
            refit_every: 0,
            backpressure: Backpressure::Block,
            score_on_ingest: true,
            clock: MonotonicClock::shared(),
            journal_capacity: 1024,
            ingest_guard: IngestGuard::Repair,
            refit_policy: RefitPolicy::default(),
            faults: None,
            decision: DecisionConfig::default(),
            interval_coverage: 0.9,
            residual_window: 128,
        }
    }
}

/// A sharded online prediction service for a fleet of monitored entities.
pub struct PredictionService {
    config: ServiceConfig,
    ids: BTreeSet<String>,
    shard_txs: Vec<SyncSender<ShardMsg>>,
    stats: Vec<Arc<ShardStatsCore>>,
    registry: Arc<Registry>,
    journal: Arc<Journal>,
    shard_handles: Vec<JoinHandle<()>>,
    refit_handles: Vec<JoinHandle<()>>,
}

impl PredictionService {
    /// Spawn the shard workers and the refit pool.
    ///
    /// Fails with [`ServeError::Spawn`] if the OS refuses to start a
    /// worker thread; a partially-spawned service is dropped cleanly
    /// (already-started shards see their channels close and exit).
    pub fn new(config: ServiceConfig) -> Result<Self, ServeError> {
        assert!(config.shards > 0, "service needs at least one shard");
        assert!(
            config.queue_capacity > 0,
            "shard queues must be bounded but non-empty"
        );

        let (refit_tx, refit_rx) = channel::<RefitJob>();
        let refit_rx = Arc::new(Mutex::new(refit_rx));

        let workers = if config.refit_every > 0 {
            config.refit_workers.max(1)
        } else {
            config.refit_workers
        };

        let registry = Arc::new(Registry::new());
        let journal = Arc::new(Journal::new(config.journal_capacity));

        let mut shard_txs = Vec::with_capacity(config.shards);
        let mut stats = Vec::with_capacity(config.shards);
        let mut shard_handles = Vec::with_capacity(config.shards);
        for shard_id in 0..config.shards {
            let (tx, rx) = sync_channel::<ShardMsg>(config.queue_capacity);
            let core = Arc::new(ShardStatsCore::new(&registry, shard_id));
            let ctx = ShardContext {
                shard_id,
                stats: Arc::clone(&core),
                clock: Arc::clone(&config.clock),
                journal: Arc::clone(&journal),
                refit_tx: refit_tx.clone(),
                refit_every: config.refit_every,
                refit_enabled: workers > 0,
                score_on_ingest: config.score_on_ingest,
                ingest_guard: config.ingest_guard,
                faults: config.faults.clone(),
                decision: config.decision,
                interval_coverage: config.interval_coverage,
                residual_window: config.residual_window,
            };
            let handle = thread::Builder::new()
                .name(format!("serve-shard-{shard_id}"))
                .spawn(move || run_supervised_shard(ctx, rx))
                .map_err(|e| ServeError::Spawn(format!("shard worker {shard_id}: {e}")))?;
            shard_txs.push(tx);
            stats.push(core);
            shard_handles.push(handle);
        }
        // The shards own the only long-lived refit senders: when they exit
        // at shutdown the job channel closes and the pool drains out.
        drop(refit_tx);

        let pool: Vec<(SyncSender<ShardMsg>, Arc<ShardStatsCore>)> = shard_txs
            .iter()
            .cloned()
            .zip(stats.iter().map(Arc::clone))
            .collect();
        let mut refit_handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let rx = Arc::clone(&refit_rx);
            let pool = pool.clone();
            let policy = config.refit_policy.clone();
            let faults = config.faults.clone();
            let clock = Arc::clone(&config.clock);
            let handle = thread::Builder::new()
                .name(format!("serve-refit-{w}"))
                .spawn(move || run_refit_worker(rx, pool, policy, faults, clock))
                .map_err(|e| ServeError::Spawn(format!("refit worker {w}: {e}")))?;
            refit_handles.push(handle);
        }

        Ok(Self {
            config,
            ids: BTreeSet::new(),
            shard_txs,
            stats,
            registry,
            journal,
            shard_handles,
            refit_handles,
        })
    }

    /// Fit `model` on `bootstrap` (on the caller's thread — shards never
    /// block on training) and install the predictor on the entity's shard.
    pub fn add_entity(
        &mut self,
        id: &str,
        bootstrap: &TimeSeriesFrame,
        cfg: PipelineConfig,
        model: Box<dyn Forecaster + Send>,
    ) -> Result<PipelineRun, ServeError> {
        if self.ids.contains(id) {
            return Err(ServeError::DuplicateEntity(id.to_string()));
        }
        let (predictor, run) =
            ResourcePredictor::fit(model, bootstrap, cfg).map_err(ServeError::from)?;
        self.install(id, predictor)?;
        Ok(run)
    }

    /// Onboard a fleet of entities that share ONE model: the model is
    /// fitted once on the first entity's bootstrap, then cloned
    /// bit-identically (no retraining) for every other entity, each with
    /// its own history and a scaler fitted on its own bootstrap. All
    /// members are tagged with a fresh weight-sharing group, so their
    /// shard answers same-shape forecast requests with one batched engine
    /// call until any member is refitted away from the group.
    ///
    /// The model must support checkpointing (neural forecasters and the
    /// naive baseline do) — cloning weights goes through its state.
    pub fn add_entities_shared(
        &mut self,
        entities: &[(&str, TimeSeriesFrame)],
        cfg: PipelineConfig,
        model: Box<dyn Forecaster + Send>,
    ) -> Result<PipelineRun, ServeError> {
        let Some(((first_id, first_frame), rest)) = entities.split_first() else {
            return Err(ServeError::Frame(
                "add_entities_shared needs at least one entity".into(),
            ));
        };
        let mut seen = BTreeSet::new();
        for (id, _) in entities {
            if self.ids.contains(*id) || !seen.insert(*id) {
                return Err(ServeError::DuplicateEntity(id.to_string()));
            }
        }
        let (mut template, run) =
            ResourcePredictor::fit(model, first_frame, cfg).map_err(ServeError::from)?;
        template.set_shared_group(Some(new_shared_group()));
        // Clone every member before installing any, so a bad bootstrap
        // leaves the service unchanged.
        let mut members = Vec::with_capacity(rest.len());
        for (id, frame) in rest {
            let clone = template.clone_for_entity(frame).map_err(ServeError::from)?;
            members.push((*id, clone));
        }
        self.install(first_id, template)?;
        for (id, predictor) in members {
            self.install(id, predictor)?;
        }
        Ok(run)
    }

    /// Install an already-fitted predictor (used by both `add_entity` and
    /// checkpoint restore).
    fn install(&mut self, id: &str, predictor: ResourcePredictor) -> Result<(), ServeError> {
        let shard = shard_for(id, self.config.shards);
        let (reply_tx, reply_rx) = sync_channel(1);
        self.send_blocking(
            shard,
            ShardMsg::Install {
                id: id.to_string(),
                predictor: Box::new(predictor),
                reply: reply_tx,
            },
        )?;
        reply_rx
            .recv()
            .map_err(|_| ServeError::ShardDown(shard))??;
        self.ids.insert(id.to_string());
        Ok(())
    }

    /// Stream one monitoring sample for `id` (values in the entity's
    /// bootstrap column order). Under [`Backpressure::Block`] this waits
    /// for queue space; under [`Backpressure::Reject`] a full queue returns
    /// [`ServeError::QueueFull`] without losing previously queued samples.
    pub fn ingest(&self, id: &str, sample: Vec<f32>) -> Result<(), ServeError> {
        self.ingest_inner(id, sample, None)
    }

    /// Like [`PredictionService::ingest`], with the caller's monotone
    /// sample sequence number. The shard detects gaps (missing monitoring
    /// records, per the paper's cleaning step) and forward-fills them, and
    /// quarantines stale replays — see `gap_samples` /
    /// `quarantined_samples` in [`crate::ShardStats`].
    pub fn ingest_at(&self, id: &str, seq: u64, sample: Vec<f32>) -> Result<(), ServeError> {
        self.ingest_inner(id, sample, Some(seq))
    }

    fn ingest_inner(&self, id: &str, sample: Vec<f32>, seq: Option<u64>) -> Result<(), ServeError> {
        if !self.ids.contains(id) {
            return Err(ServeError::UnknownEntity(id.to_string()));
        }
        let shard = shard_for(id, self.config.shards);
        let msg = ShardMsg::Ingest {
            id: id.to_string(),
            sample,
            seq,
        };
        match self.config.backpressure {
            Backpressure::Block => self.send_blocking(shard, msg),
            Backpressure::Reject => {
                self.stats[shard].queue_depth.inc();
                match self.shard_txs[shard].try_send(msg) {
                    Ok(()) => Ok(()),
                    Err(TrySendError::Full(_)) => {
                        self.stats[shard].queue_depth.dec();
                        self.stats[shard].rejected.inc();
                        self.journal.emit(
                            self.config.clock.now_nanos(),
                            EventKind::QueueRejected,
                            Some(shard),
                            Some(id),
                            "ingest rejected: shard queue full".to_string(),
                        );
                        Err(ServeError::QueueFull {
                            shard,
                            entity: id.to_string(),
                        })
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        self.stats[shard].queue_depth.dec();
                        Err(ServeError::ShardDown(shard))
                    }
                }
            }
        }
    }

    /// Forecast the next `horizon` target values for one entity.
    pub fn forecast(&self, id: &str) -> Result<Vec<f32>, ServeError> {
        let mut results = self.forecast_many(&[id]);
        match results.pop() {
            Some((_, res)) => res,
            None => Err(ServeError::UnknownEntity(id.to_string())),
        }
    }

    /// Batched forecasts: requests are grouped per shard, dispatched to all
    /// shards concurrently, and returned in the caller's id order. Because
    /// shard queues are FIFO, each forecast reflects every sample ingested
    /// for that entity before this call.
    pub fn forecast_many(&self, ids: &[&str]) -> Vec<(String, Result<Vec<f32>, ServeError>)> {
        self.fan_out(ids, |ids, reply| ShardMsg::ForecastBatch { ids, reply })
    }

    /// Forecast with a calibrated conformal interval for one entity. The
    /// point block is bitwise-identical to [`PredictionService::forecast`];
    /// the interval attaches as two scalar offsets calibrated from the
    /// entity's rolling ingest residuals. Degraded entities are answered
    /// from their journaled last-good interval, never an uncovered point
    /// estimate.
    pub fn forecast_with_interval(&self, id: &str) -> Result<IntervalForecast, ServeError> {
        let mut results = self.forecast_with_interval_many(&[id]);
        match results.pop() {
            Some((_, res)) => res,
            None => Err(ServeError::UnknownEntity(id.to_string())),
        }
    }

    /// Batched [`PredictionService::forecast_with_interval`], grouped per
    /// shard and returned in the caller's id order.
    pub fn forecast_with_interval_many(
        &self,
        ids: &[&str],
    ) -> Vec<(String, Result<IntervalForecast, ServeError>)> {
        self.fan_out(ids, |ids, reply| ShardMsg::ForecastIntervalBatch {
            ids,
            reply,
        })
    }

    /// One Bayesian capacity-reservation decision for an entity: interval
    /// forecast, newsvendor target from the configured [`DecisionConfig`]
    /// cost model, then per-entity scale-down hysteresis.
    pub fn reserve(&self, id: &str) -> Result<Reservation, ServeError> {
        let mut results = self.reserve_many(&[id]);
        match results.pop() {
            Some((_, res)) => res,
            None => Err(ServeError::UnknownEntity(id.to_string())),
        }
    }

    /// Batched [`PredictionService::reserve`], grouped per shard and
    /// returned in the caller's id order.
    pub fn reserve_many(&self, ids: &[&str]) -> Vec<(String, Result<Reservation, ServeError>)> {
        self.fan_out(ids, |ids, reply| ShardMsg::ReserveBatch { ids, reply })
    }

    /// Shared fan-out plumbing for the batched request APIs: group ids per
    /// shard, dispatch to every shard concurrently, then collect replies
    /// back into the caller's id order. A shard that cannot be reached
    /// answers its whole group with the transport error.
    fn fan_out<T>(
        &self,
        ids: &[&str],
        make_msg: impl Fn(Vec<String>, SyncSender<Vec<(String, Result<T, ServeError>)>>) -> ShardMsg,
    ) -> Vec<(String, Result<T, ServeError>)> {
        let mut collected: HashMap<String, Result<T, ServeError>> = HashMap::new();
        let mut pending = Vec::new();
        for (shard, group) in group_by_shard(ids, self.config.shards) {
            let (reply_tx, reply_rx) = sync_channel(1);
            let msg = make_msg(group.iter().map(|s| s.to_string()).collect(), reply_tx);
            match self.send_blocking(shard, msg) {
                Ok(()) => pending.push((shard, group, reply_rx)),
                Err(err) => {
                    for id in group {
                        collected.insert(id.to_string(), Err(err.clone()));
                    }
                }
            }
        }
        for (shard, group, reply_rx) in pending {
            match reply_rx.recv() {
                Ok(results) => {
                    for (id, res) in results {
                        collected.insert(id, res);
                    }
                }
                Err(_) => {
                    for id in group {
                        collected.insert(id.to_string(), Err(ServeError::ShardDown(shard)));
                    }
                }
            }
        }
        ids.iter()
            .map(|&id| {
                let res = collected
                    .remove(id)
                    .unwrap_or_else(|| Err(ServeError::UnknownEntity(id.to_string())));
                (id.to_string(), res)
            })
            .collect()
    }

    /// Wait until every shard has drained all messages queued before this
    /// call (ingests applied, refit results installed).
    pub fn flush(&self) -> Result<(), ServeError> {
        let mut pending = Vec::new();
        for shard in 0..self.config.shards {
            let (reply_tx, reply_rx) = sync_channel(1);
            self.send_blocking(shard, ShardMsg::Barrier { reply: reply_tx })?;
            pending.push((shard, reply_rx));
        }
        for (shard, reply_rx) in pending {
            reply_rx.recv().map_err(|_| ServeError::ShardDown(shard))?;
        }
        Ok(())
    }

    /// Serving health of every entity: `Healthy` entities are served by
    /// their model, `Degraded` ones by the naive fallback until a clean
    /// refit restores them. Reported per entity with crash counts and the
    /// error that caused the last transition.
    pub fn entity_health(&self) -> Result<BTreeMap<String, EntityHealthReport>, ServeError> {
        let mut pending = Vec::new();
        for shard in 0..self.config.shards {
            let (reply_tx, reply_rx) = sync_channel(1);
            self.send_blocking(shard, ShardMsg::Health { reply: reply_tx })?;
            pending.push((shard, reply_rx));
        }
        let mut out = BTreeMap::new();
        for (shard, reply_rx) in pending {
            let reports = reply_rx.recv().map_err(|_| ServeError::ShardDown(shard))?;
            out.extend(reports);
        }
        Ok(out)
    }

    /// Point-in-time statistics for every shard.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            shards: self
                .stats
                .iter()
                .enumerate()
                .map(|(shard, core)| core.snapshot(shard))
                .collect(),
        }
    }

    /// The service's bounded event journal: shard restarts, degradations,
    /// quarantines, refit outcomes and batch forecasts, with shard and
    /// entity attribution.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// The metrics registry backing [`PredictionService::stats`]; useful
    /// for registering service-adjacent metrics under the same export.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Point-in-time copy of every registered metric, ready for
    /// `obs::to_text` / `obs::to_json`.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Entity ids currently served, sorted.
    pub fn entity_ids(&self) -> Vec<String> {
        self.ids.iter().cloned().collect()
    }

    /// Number of entities currently served.
    pub fn entity_count(&self) -> usize {
        self.ids.len()
    }

    /// Whether `id` is currently onboarded, without copying the id set
    /// (cheap enough for per-entry checks on million-entity fleets).
    pub fn contains_entity(&self, id: &str) -> bool {
        self.ids.contains(id)
    }

    /// The injectable clock this service (and its shards, journal and
    /// latency spans) runs on.
    pub fn clock(&self) -> SharedClock {
        self.config.clock.clone()
    }

    /// The shard serving `id`.
    pub fn shard_of(&self, id: &str) -> usize {
        shard_for(id, self.config.shards)
    }

    /// Capture every entity's full state (model weights, preprocessing,
    /// history) in memory, sorted by id. The snapshot is taken per shard
    /// behind the same FIFO queues as ingestion, so it reflects every
    /// sample ingested before this call. This is the building block for
    /// both file checkpoints and node-to-node state migration.
    pub fn snapshot_entities(&self) -> Result<Vec<(String, rptcn::PredictorState)>, ServeError> {
        let mut pending = Vec::new();
        for shard in 0..self.config.shards {
            let (reply_tx, reply_rx) = sync_channel(1);
            self.send_blocking(shard, ShardMsg::Snapshot { reply: reply_tx })?;
            pending.push((shard, reply_rx));
        }
        let mut entities = Vec::new();
        for (shard, reply_rx) in pending {
            let states = reply_rx
                .recv()
                .map_err(|_| ServeError::ShardDown(shard))??;
            entities.extend(states);
        }
        entities.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(entities)
    }

    /// Install an entity from a captured [`rptcn::PredictorState`] — the
    /// receiving half of a warm handoff: model weights, preprocessing
    /// state and history resume bit-identical to the snapshotting node.
    pub fn install_state(
        &mut self,
        id: &str,
        state: &rptcn::PredictorState,
    ) -> Result<(), ServeError> {
        if self.ids.contains(id) {
            return Err(ServeError::DuplicateEntity(id.to_string()));
        }
        let predictor = ResourcePredictor::from_state(state)?;
        self.install(id, predictor)
    }

    /// Stop serving `id` and drop its state (used after its state has
    /// been migrated to another node). Returns [`ServeError::UnknownEntity`]
    /// if the entity was never onboarded.
    pub fn remove_entity(&mut self, id: &str) -> Result<(), ServeError> {
        if !self.ids.contains(id) {
            return Err(ServeError::UnknownEntity(id.to_string()));
        }
        let shard = shard_for(id, self.config.shards);
        let (reply_tx, reply_rx) = sync_channel(1);
        self.send_blocking(
            shard,
            ShardMsg::Remove {
                id: id.to_string(),
                reply: reply_tx,
            },
        )?;
        let removed = reply_rx.recv().map_err(|_| ServeError::ShardDown(shard))?;
        self.ids.remove(id);
        if removed {
            Ok(())
        } else {
            Err(ServeError::UnknownEntity(id.to_string()))
        }
    }

    /// Capture every entity's full state into a versioned fleet checkpoint
    /// at `path` (see [`PredictionService::snapshot_entities`]). Returns
    /// the number of entities written.
    pub fn checkpoint(&self, path: &Path) -> Result<usize, ServeError> {
        let entities = self.snapshot_entities()?;
        save_fleet(path, &entities)?;
        Ok(entities.len())
    }

    /// Rebuild a service from a fleet checkpoint: every entity is restored
    /// onto its shard with identical model weights, preprocessing state and
    /// history, so forecasts resume exactly where the checkpoint left off.
    pub fn restore(path: &Path, config: ServiceConfig) -> Result<Self, ServeError> {
        let entities = load_fleet(path)?;
        let mut service = Self::new(config)?;
        for (id, state) in &entities {
            let predictor = ResourcePredictor::from_state(state)?;
            service.install(id, predictor)?;
        }
        Ok(service)
    }

    /// Send a message to `shard`, blocking when its queue is full. Every
    /// send path increments `queue_depth` first; the shard decrements once
    /// per received message — so depth is never transiently negative.
    fn send_blocking(&self, shard: usize, msg: ShardMsg) -> Result<(), ServeError> {
        self.stats[shard].queue_depth.inc();
        self.shard_txs[shard].send(msg).map_err(|_| {
            self.stats[shard].queue_depth.dec();
            ServeError::ShardDown(shard)
        })
    }
}

impl Drop for PredictionService {
    fn drop(&mut self) {
        // Explicit shutdown breaks the sender cycle: shards hold refit-pool
        // senders, refit workers hold shard senders. Shards exit on the
        // marker, which closes the refit channel, which drains the pool.
        for shard in 0..self.shard_txs.len() {
            self.stats[shard].queue_depth.inc();
            if self.shard_txs[shard].send(ShardMsg::Shutdown).is_err() {
                self.stats[shard].queue_depth.dec();
            }
        }
        self.shard_txs.clear();
        for handle in self.shard_handles.drain(..) {
            let _ = handle.join();
        }
        for handle in self.refit_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use models::NaiveForecaster;
    use rptcn::Scenario;

    fn bootstrap_frame(n: usize, phase: f32) -> TimeSeriesFrame {
        let cpu: Vec<f32> = (0..n)
            .map(|i| 40.0 + 25.0 * ((i as f32 * 0.2 + phase).sin()))
            .collect();
        let mem: Vec<f32> = (0..n).map(|i| 30.0 + 0.01 * i as f32).collect();
        TimeSeriesFrame::from_columns(&[("cpu_util_percent", cpu), ("mem_util_percent", mem)])
            .unwrap()
    }

    fn uni_config() -> PipelineConfig {
        PipelineConfig {
            scenario: Scenario::Uni,
            window: 12,
            horizon: 1,
            ..Default::default()
        }
    }

    fn service_with_entities(config: ServiceConfig, n: usize) -> PredictionService {
        let mut service = PredictionService::new(config).expect("spawn service");
        for i in 0..n {
            service
                .add_entity(
                    &format!("c_{i}"),
                    &bootstrap_frame(96, i as f32),
                    uni_config(),
                    Box::new(NaiveForecaster::new()),
                )
                .unwrap();
        }
        service
    }

    #[test]
    fn lifecycle_ingest_and_forecast() {
        let service = service_with_entities(
            ServiceConfig {
                shards: 3,
                refit_workers: 0,
                ..Default::default()
            },
            8,
        );
        assert_eq!(service.entity_count(), 8);
        for i in 0..8 {
            service.ingest(&format!("c_{i}"), vec![55.0, 31.0]).unwrap();
        }
        let ids: Vec<String> = (0..8).map(|i| format!("c_{i}")).collect();
        let refs: Vec<&str> = ids.iter().map(String::as_str).collect();
        let results = service.forecast_many(&refs);
        assert_eq!(results.len(), 8);
        for (i, (id, res)) in results.iter().enumerate() {
            assert_eq!(id, &format!("c_{i}"));
            let fc = res.as_ref().unwrap();
            assert_eq!(fc.len(), 1);
            // Naive forecaster repeats the last observed target value.
            assert!((fc[0] - 55.0).abs() < 1.0, "forecast {} for {id}", fc[0]);
        }
        let stats = service.stats();
        assert_eq!(stats.total_ingested(), 8);
        assert_eq!(stats.total_forecasts(), 8);
        assert_eq!(stats.total_entities(), 8);
    }

    #[test]
    fn duplicate_and_unknown_entities_are_rejected() {
        let mut service = service_with_entities(ServiceConfig::default(), 1);
        let err = service
            .add_entity(
                "c_0",
                &bootstrap_frame(96, 0.0),
                uni_config(),
                Box::new(NaiveForecaster::new()),
            )
            .unwrap_err();
        assert!(matches!(err, ServeError::DuplicateEntity(_)));
        assert!(matches!(
            service.ingest("nope", vec![1.0, 2.0]),
            Err(ServeError::UnknownEntity(_))
        ));
        assert!(matches!(
            service.forecast("nope"),
            Err(ServeError::UnknownEntity(_))
        ));
    }

    #[test]
    fn flush_drains_queued_ingests() {
        let service = service_with_entities(ServiceConfig::default(), 2);
        for _ in 0..50 {
            service.ingest("c_0", vec![60.0, 31.0]).unwrap();
            service.ingest("c_1", vec![20.0, 31.0]).unwrap();
        }
        service.flush().unwrap();
        let stats = service.stats();
        assert_eq!(stats.total_ingested(), 100);
        for shard in &stats.shards {
            assert_eq!(shard.queue_depth, 0, "shard {} not drained", shard.shard);
        }
    }
}
