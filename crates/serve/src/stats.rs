//! Service observability: per-shard counters, forecast-latency percentiles
//! and rolling online accuracy, all readable without stopping the shards.
//!
//! The shard worker owns the hot path, so every write here is either a
//! relaxed atomic increment or a short mutex hold on data only the shard
//! thread writes — the stats reader never contends with ingestion.
//!
//! Fault-tolerance counters live here too: shard restarts, entities in
//! degraded mode, fallback forecasts, repaired/quarantined samples and
//! refit failures/timeouts — everything an operator needs to see whether
//! the fleet is healthy or limping.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Serving health of one entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntityHealth {
    /// The fitted model is serving forecasts normally.
    Healthy,
    /// The model crashed or produced a non-finite forecast; the entity is
    /// served by the naive fallback until a clean refit restores it.
    Degraded,
}

/// Lock a stats mutex, recovering from poisoning: a panicking shard must
/// not take observability down with it — the guarded data is only ever a
/// counter accumulator and stays usable after an unwind.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner()) // lint: allow(r4) — the one blessed bare lock
}

/// Fixed-size ring of recent forecast latencies (nanoseconds).
#[derive(Debug)]
pub struct LatencyRing {
    buf: Vec<u64>,
    next: usize,
    filled: usize,
}

impl LatencyRing {
    /// A ring retaining the latest `capacity` samples (at least one).
    pub fn new(capacity: usize) -> Self {
        Self {
            buf: vec![0; capacity.max(1)],
            next: 0,
            filled: 0,
        }
    }

    /// Push one latency sample, evicting the oldest once full.
    pub fn record(&mut self, nanos: u64) {
        self.buf[self.next] = nanos;
        self.next = (self.next + 1) % self.buf.len();
        self.filled = (self.filled + 1).min(self.buf.len());
    }

    /// The `q`-quantile (0.0–1.0) over the retained window, nearest-rank.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.filled == 0 {
            return None;
        }
        let mut window: Vec<u64> = self.buf[..self.filled].to_vec();
        window.sort_unstable();
        let rank = ((q.clamp(0.0, 1.0) * self.filled as f64).ceil() as usize).clamp(1, self.filled);
        Some(window[rank - 1])
    }

    /// Number of samples currently retained.
    pub fn len(&self) -> usize {
        self.filled
    }

    /// True before the first recorded sample.
    pub fn is_empty(&self) -> bool {
        self.filled == 0
    }
}

/// Rolling online-accuracy accumulator: forecasts scored against the
/// ground truth that arrives one interval later.
#[derive(Debug, Default)]
pub struct ScoreAccum {
    pub abs_err_sum: f64,
    pub sq_err_sum: f64,
    pub scored: u64,
}

impl ScoreAccum {
    /// Fold one (forecast, later-arriving truth) pair into the error sums.
    pub fn score(&mut self, forecast: f32, actual: f32) {
        let err = (forecast - actual) as f64;
        self.abs_err_sum += err.abs();
        self.sq_err_sum += err * err;
        self.scored += 1;
    }

    /// Mean absolute error over everything scored so far (0.0 if nothing).
    pub fn mae(&self) -> f64 {
        if self.scored == 0 {
            0.0
        } else {
            self.abs_err_sum / self.scored as f64
        }
    }

    /// Mean squared error over everything scored so far (0.0 if nothing).
    pub fn mse(&self) -> f64 {
        if self.scored == 0 {
            0.0
        } else {
            self.sq_err_sum / self.scored as f64
        }
    }
}

/// Live counters shared between one shard worker and the stats reader.
#[derive(Debug)]
pub struct ShardStatsCore {
    pub entities: AtomicUsize,
    pub ingested: AtomicU64,
    pub forecasts: AtomicU64,
    pub refits_started: AtomicU64,
    pub refits_completed: AtomicU64,
    /// Samples not applied because the queue was full under `Reject`.
    pub rejected: AtomicU64,
    /// Ingests addressed to an entity this shard has never installed.
    pub unknown_entity_ingests: AtomicU64,
    /// Messages currently queued for this shard.
    pub queue_depth: AtomicUsize,
    /// Times the supervisor restarted this shard's worker loop after a
    /// panic escaped message processing.
    pub restarts: AtomicU64,
    /// Entities currently in degraded (fallback-serving) mode.
    pub degraded: AtomicUsize,
    /// Forecasts answered by the naive fallback instead of the model.
    pub fallback_forecasts: AtomicU64,
    /// Forecasts answered through a batched (multi-entity) engine call.
    pub batched_forecasts: AtomicU64,
    /// Batched engine calls issued (each covers ≥2 entities).
    pub batch_calls: AtomicU64,
    /// Samples with non-finite values repaired by forward-filling the last
    /// valid observation at the shard boundary.
    pub repaired_samples: AtomicU64,
    /// Samples dropped at the shard boundary (wrong arity, unrepairable,
    /// or stale sequence numbers).
    pub quarantined_samples: AtomicU64,
    /// Missing samples detected through sequence-number gaps.
    pub gap_samples: AtomicU64,
    /// Background refits that failed every attempt.
    pub refit_failures: AtomicU64,
    /// Background refits abandoned at the configured deadline.
    pub refit_timeouts: AtomicU64,
    /// Refit replacements rejected because they could not produce a finite
    /// forecast on the live history.
    pub refits_rejected: AtomicU64,
    pub latency: Mutex<LatencyRing>,
    pub score: Mutex<ScoreAccum>,
}

impl ShardStatsCore {
    /// Zeroed counters with a latency ring of `latency_window` samples.
    pub fn new(latency_window: usize) -> Self {
        Self {
            entities: AtomicUsize::new(0),
            ingested: AtomicU64::new(0),
            forecasts: AtomicU64::new(0),
            refits_started: AtomicU64::new(0),
            refits_completed: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            unknown_entity_ingests: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
            restarts: AtomicU64::new(0),
            degraded: AtomicUsize::new(0),
            fallback_forecasts: AtomicU64::new(0),
            batched_forecasts: AtomicU64::new(0),
            batch_calls: AtomicU64::new(0),
            repaired_samples: AtomicU64::new(0),
            quarantined_samples: AtomicU64::new(0),
            gap_samples: AtomicU64::new(0),
            refit_failures: AtomicU64::new(0),
            refit_timeouts: AtomicU64::new(0),
            refits_rejected: AtomicU64::new(0),
            latency: Mutex::new(LatencyRing::new(latency_window)),
            score: Mutex::new(ScoreAccum::default()),
        }
    }

    /// Point-in-time snapshot for shard `shard`.
    pub fn snapshot(&self, shard: usize) -> ShardStats {
        let (p50, p99) = {
            let ring = lock_recover(&self.latency);
            (ring.quantile(0.50), ring.quantile(0.99))
        };
        let (mae, mse, scored) = {
            let score = lock_recover(&self.score);
            (score.mae(), score.mse(), score.scored)
        };
        ShardStats {
            shard,
            entities: self.entities.load(Ordering::Relaxed),
            ingested: self.ingested.load(Ordering::Relaxed),
            forecasts: self.forecasts.load(Ordering::Relaxed),
            refits_started: self.refits_started.load(Ordering::Relaxed),
            refits_completed: self.refits_completed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            unknown_entity_ingests: self.unknown_entity_ingests.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            fallback_forecasts: self.fallback_forecasts.load(Ordering::Relaxed),
            batched_forecasts: self.batched_forecasts.load(Ordering::Relaxed),
            batch_calls: self.batch_calls.load(Ordering::Relaxed),
            repaired_samples: self.repaired_samples.load(Ordering::Relaxed),
            quarantined_samples: self.quarantined_samples.load(Ordering::Relaxed),
            gap_samples: self.gap_samples.load(Ordering::Relaxed),
            refit_failures: self.refit_failures.load(Ordering::Relaxed),
            refit_timeouts: self.refit_timeouts.load(Ordering::Relaxed),
            refits_rejected: self.refits_rejected.load(Ordering::Relaxed),
            forecast_p50_us: p50.map(|n| n as f64 / 1_000.0),
            forecast_p99_us: p99.map(|n| n as f64 / 1_000.0),
            rolling_mae: mae,
            rolling_mse: mse,
            scored,
        }
    }
}

/// Point-in-time view of one shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    pub shard: usize,
    pub entities: usize,
    pub ingested: u64,
    pub forecasts: u64,
    pub refits_started: u64,
    pub refits_completed: u64,
    pub rejected: u64,
    pub unknown_entity_ingests: u64,
    pub queue_depth: usize,
    pub restarts: u64,
    pub degraded: usize,
    pub fallback_forecasts: u64,
    /// Forecasts answered through a batched (multi-entity) engine call.
    pub batched_forecasts: u64,
    /// Batched engine calls issued (each covers ≥2 entities).
    pub batch_calls: u64,
    pub repaired_samples: u64,
    pub quarantined_samples: u64,
    pub gap_samples: u64,
    pub refit_failures: u64,
    pub refit_timeouts: u64,
    pub refits_rejected: u64,
    /// Median forecast latency in microseconds (`None` before any forecast).
    pub forecast_p50_us: Option<f64>,
    /// 99th-percentile forecast latency in microseconds.
    pub forecast_p99_us: Option<f64>,
    /// Rolling MAE of forecasts scored against later-arriving truth.
    pub rolling_mae: f64,
    pub rolling_mse: f64,
    /// How many forecasts have been scored.
    pub scored: u64,
}

impl Default for ShardStats {
    fn default() -> Self {
        Self {
            shard: 0,
            entities: 0,
            ingested: 0,
            forecasts: 0,
            refits_started: 0,
            refits_completed: 0,
            rejected: 0,
            unknown_entity_ingests: 0,
            queue_depth: 0,
            restarts: 0,
            degraded: 0,
            fallback_forecasts: 0,
            batched_forecasts: 0,
            batch_calls: 0,
            repaired_samples: 0,
            quarantined_samples: 0,
            gap_samples: 0,
            refit_failures: 0,
            refit_timeouts: 0,
            refits_rejected: 0,
            forecast_p50_us: None,
            forecast_p99_us: None,
            rolling_mae: 0.0,
            rolling_mse: 0.0,
            scored: 0,
        }
    }
}

/// Fleet-wide view: one entry per shard plus aggregate helpers.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStats {
    pub shards: Vec<ShardStats>,
}

impl ServiceStats {
    /// Entities currently installed across all shards.
    pub fn total_entities(&self) -> usize {
        self.shards.iter().map(|s| s.entities).sum()
    }

    /// Samples applied across all shards.
    pub fn total_ingested(&self) -> u64 {
        self.shards.iter().map(|s| s.ingested).sum()
    }

    /// Forecasts answered across all shards (model, batched or fallback).
    pub fn total_forecasts(&self) -> u64 {
        self.shards.iter().map(|s| s.forecasts).sum()
    }

    /// Background refits that finished and installed a model.
    pub fn total_refits_completed(&self) -> u64 {
        self.shards.iter().map(|s| s.refits_completed).sum()
    }

    /// Samples rejected fleet-wide under `Reject` backpressure.
    pub fn total_rejected(&self) -> u64 {
        self.shards.iter().map(|s| s.rejected).sum()
    }

    /// Shard worker restarts after an escaped panic, fleet-wide.
    pub fn total_restarts(&self) -> u64 {
        self.shards.iter().map(|s| s.restarts).sum()
    }

    /// Entities currently serving from the naive fallback.
    pub fn total_degraded(&self) -> usize {
        self.shards.iter().map(|s| s.degraded).sum()
    }

    /// Forecasts answered by the fallback instead of the model.
    pub fn total_fallback_forecasts(&self) -> u64 {
        self.shards.iter().map(|s| s.fallback_forecasts).sum()
    }

    /// Forecasts answered through batched engine calls.
    pub fn total_batched_forecasts(&self) -> u64 {
        self.shards.iter().map(|s| s.batched_forecasts).sum()
    }

    /// Batched engine calls issued fleet-wide.
    pub fn total_batch_calls(&self) -> u64 {
        self.shards.iter().map(|s| s.batch_calls).sum()
    }

    /// Non-finite samples repaired at the shard boundary.
    pub fn total_repaired_samples(&self) -> u64 {
        self.shards.iter().map(|s| s.repaired_samples).sum()
    }

    /// Samples dropped at the shard boundary.
    pub fn total_quarantined_samples(&self) -> u64 {
        self.shards.iter().map(|s| s.quarantined_samples).sum()
    }

    /// Background refits that failed every attempt.
    pub fn total_refit_failures(&self) -> u64 {
        self.shards.iter().map(|s| s.refit_failures).sum()
    }

    /// Background refits abandoned at the deadline.
    pub fn total_refit_timeouts(&self) -> u64 {
        self.shards.iter().map(|s| s.refit_timeouts).sum()
    }

    /// Scored-count-weighted rolling MAE across shards.
    pub fn rolling_mae(&self) -> f64 {
        let scored: u64 = self.shards.iter().map(|s| s.scored).sum();
        if scored == 0 {
            return 0.0;
        }
        self.shards
            .iter()
            .map(|s| s.rolling_mae * s.scored as f64)
            .sum::<f64>()
            / scored as f64
    }

    /// Scored-count-weighted rolling MSE across shards.
    pub fn rolling_mse(&self) -> f64 {
        let scored: u64 = self.shards.iter().map(|s| s.scored).sum();
        if scored == 0 {
            return 0.0;
        }
        self.shards
            .iter()
            .map(|s| s.rolling_mse * s.scored as f64)
            .sum::<f64>()
            / scored as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_quantiles_over_partial_window() {
        let mut ring = LatencyRing::new(100);
        for v in [10, 20, 30, 40] {
            ring.record(v);
        }
        assert_eq!(ring.quantile(0.5), Some(20));
        assert_eq!(ring.quantile(0.99), Some(40));
        assert_eq!(ring.quantile(0.0), Some(10));
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut ring = LatencyRing::new(4);
        for v in [1, 2, 3, 4, 100, 200, 300, 400] {
            ring.record(v);
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.quantile(0.5), Some(200));
    }

    #[test]
    fn empty_ring_has_no_quantiles() {
        assert_eq!(LatencyRing::new(8).quantile(0.5), None);
    }

    #[test]
    fn score_accumulates_mae_and_mse() {
        let mut s = ScoreAccum::default();
        s.score(0.5, 0.7);
        s.score(0.9, 0.7);
        assert!((s.mae() - 0.2).abs() < 1e-6);
        assert!((s.mse() - 0.04).abs() < 1e-5);
        assert_eq!(s.scored, 2);
    }

    #[test]
    fn service_stats_aggregate_weighted() {
        let base = ShardStats {
            entities: 2,
            ingested: 10,
            forecasts: 5,
            refits_started: 1,
            refits_completed: 1,
            forecast_p50_us: Some(10.0),
            forecast_p99_us: Some(20.0),
            rolling_mae: 0.1,
            rolling_mse: 0.01,
            scored: 10,
            ..ShardStats::default()
        };
        let stats = ServiceStats {
            shards: vec![
                base.clone(),
                ShardStats {
                    shard: 1,
                    rolling_mae: 0.3,
                    scored: 30,
                    ..base
                },
            ],
        };
        assert_eq!(stats.total_ingested(), 20);
        assert_eq!(stats.total_entities(), 4);
        // (0.1*10 + 0.3*30) / 40 = 0.25
        assert!((stats.rolling_mae() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn fault_counters_aggregate() {
        let stats = ServiceStats {
            shards: vec![
                ShardStats {
                    restarts: 1,
                    degraded: 2,
                    fallback_forecasts: 5,
                    repaired_samples: 3,
                    quarantined_samples: 1,
                    refit_failures: 2,
                    refit_timeouts: 1,
                    ..ShardStats::default()
                },
                ShardStats {
                    shard: 1,
                    restarts: 2,
                    degraded: 1,
                    quarantined_samples: 4,
                    ..ShardStats::default()
                },
            ],
        };
        assert_eq!(stats.total_restarts(), 3);
        assert_eq!(stats.total_degraded(), 3);
        assert_eq!(stats.total_fallback_forecasts(), 5);
        assert_eq!(stats.total_repaired_samples(), 3);
        assert_eq!(stats.total_quarantined_samples(), 5);
        assert_eq!(stats.total_refit_failures(), 2);
        assert_eq!(stats.total_refit_timeouts(), 1);
    }

    #[test]
    fn lock_recover_survives_poisoning() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let m = Mutex::new(ScoreAccum::default());
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap();
            panic!("poison the lock");
        }));
        assert!(m.is_poisoned());
        lock_recover(&m).score(1.0, 2.0);
        assert_eq!(lock_recover(&m).scored, 1);
    }
}
