//! Service observability: per-shard counters, forecast-latency percentiles
//! and rolling online accuracy, all readable without stopping the shards.
//!
//! Counters, gauges and latency histograms are `obs` metrics registered
//! in the service's [`obs::Registry`] under `shard{N}.*` names, so the
//! whole fleet can be exported as one snapshot (`obs::to_text` /
//! `obs::to_json`) while this module keeps serving the typed
//! [`ShardStats`] view. The shard worker owns the hot path, so every
//! write here is either a relaxed atomic op on an `obs` handle or a short
//! mutex hold on data only the shard thread writes — the stats reader
//! never contends with ingestion.
//!
//! Fault-tolerance counters live here too: shard restarts, entities in
//! degraded mode, fallback forecasts, repaired/quarantined samples and
//! refit failures/timeouts — everything an operator needs to see whether
//! the fleet is healthy or limping.

use std::sync::{Arc, Mutex, MutexGuard};

use obs::{Counter, Gauge, Histogram, Registry};

/// Serving health of one entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntityHealth {
    /// The fitted model is serving forecasts normally.
    Healthy,
    /// The model crashed or produced a non-finite forecast; the entity is
    /// served by the naive fallback until a clean refit restores it.
    Degraded,
}

/// Lock a stats mutex, recovering from poisoning: a panicking shard must
/// not take observability down with it — the guarded data is only ever a
/// counter accumulator and stays usable after an unwind. Public so the
/// distributed tier (`rptcn-net`) shares the same blessed acquisition
/// path instead of minting its own bare `.lock()` calls.
pub fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner()) // lint: allow(r4) — the one blessed bare lock
}

/// Rolling online-accuracy accumulator: forecasts scored against the
/// ground truth that arrives one interval later.
#[derive(Debug, Default)]
pub struct ScoreAccum {
    pub abs_err_sum: f64,
    pub sq_err_sum: f64,
    pub scored: u64,
}

impl ScoreAccum {
    /// Fold one (forecast, later-arriving truth) pair into the error sums.
    pub fn score(&mut self, forecast: f32, actual: f32) {
        let err = (forecast - actual) as f64;
        self.abs_err_sum += err.abs();
        self.sq_err_sum += err * err;
        self.scored += 1;
    }

    /// Mean absolute error over everything scored so far (0.0 if nothing).
    pub fn mae(&self) -> f64 {
        if self.scored == 0 {
            0.0
        } else {
            self.abs_err_sum / self.scored as f64
        }
    }

    /// Mean squared error over everything scored so far (0.0 if nothing).
    pub fn mse(&self) -> f64 {
        if self.scored == 0 {
            0.0
        } else {
            self.sq_err_sum / self.scored as f64
        }
    }
}

/// Live metric handles shared between one shard worker and the stats
/// reader. Every handle is registered under `shard{N}.<field>` in the
/// service registry, so the same numbers are visible both through
/// [`ShardStats`] and through an exported `obs` snapshot.
#[derive(Debug)]
pub struct ShardStatsCore {
    pub entities: Arc<Gauge>,
    pub ingested: Arc<Counter>,
    pub forecasts: Arc<Counter>,
    pub refits_started: Arc<Counter>,
    pub refits_completed: Arc<Counter>,
    /// Samples not applied because the queue was full under `Reject`.
    pub rejected: Arc<Counter>,
    /// Ingests addressed to an entity this shard has never installed.
    pub unknown_entity_ingests: Arc<Counter>,
    /// Messages currently queued for this shard.
    pub queue_depth: Arc<Gauge>,
    /// Times the supervisor restarted this shard's worker loop after a
    /// panic escaped message processing.
    pub restarts: Arc<Counter>,
    /// Entities currently in degraded (fallback-serving) mode.
    pub degraded: Arc<Gauge>,
    /// Forecasts answered by the naive fallback instead of the model.
    pub fallback_forecasts: Arc<Counter>,
    /// Forecasts answered through a batched (multi-entity) engine call.
    pub batched_forecasts: Arc<Counter>,
    /// Batched engine calls issued (each covers ≥2 entities).
    pub batch_calls: Arc<Counter>,
    /// Samples with non-finite values repaired by forward-filling the last
    /// valid observation at the shard boundary.
    pub repaired_samples: Arc<Counter>,
    /// Samples dropped at the shard boundary (wrong arity, unrepairable,
    /// or stale sequence numbers).
    pub quarantined_samples: Arc<Counter>,
    /// Missing samples detected through sequence-number gaps.
    pub gap_samples: Arc<Counter>,
    /// Background refits that failed every attempt.
    pub refit_failures: Arc<Counter>,
    /// Background refits abandoned at the configured deadline.
    pub refit_timeouts: Arc<Counter>,
    /// Refit replacements rejected because they could not produce a finite
    /// forecast on the live history.
    pub refits_rejected: Arc<Counter>,
    /// Interval forecasts answered (live conformal offsets).
    pub interval_forecasts: Arc<Counter>,
    /// Interval requests on degraded entities answered from the last-good
    /// interval instead of a live point estimate.
    pub interval_fallbacks: Arc<Counter>,
    /// Capacity reservations decided.
    pub reservations: Arc<Counter>,
    /// Reservation scale-up actions executed.
    pub scale_ups: Arc<Counter>,
    /// Reservation scale-down actions executed (post-hysteresis).
    pub scale_downs: Arc<Counter>,
    /// Per-forecast serving latency (nanoseconds).
    pub forecast_ns: Arc<Histogram>,
    /// Per-sample ingest processing latency (nanoseconds).
    pub ingest_ns: Arc<Histogram>,
    /// End-to-end background refit duration (nanoseconds), including
    /// retries and backoff.
    pub refit_ns: Arc<Histogram>,
    /// Supervisor restart handling latency (nanoseconds): culprit
    /// quarantine, predictor rebuild and recovery-refit dispatch.
    pub restart_ns: Arc<Histogram>,
    pub score: Mutex<ScoreAccum>,
}

impl ShardStatsCore {
    /// Metric handles for shard `shard`, registered in `registry` under
    /// `shard{shard}.*` names.
    pub fn new(registry: &Registry, shard: usize) -> Self {
        let counter = |field: &str| registry.counter(&format!("shard{shard}.{field}"));
        let gauge = |field: &str| registry.gauge(&format!("shard{shard}.{field}"));
        let latency = |field: &str| registry.latency_histogram(&format!("shard{shard}.{field}"));
        Self {
            entities: gauge("entities"),
            ingested: counter("ingested"),
            forecasts: counter("forecasts"),
            refits_started: counter("refits_started"),
            refits_completed: counter("refits_completed"),
            rejected: counter("rejected"),
            unknown_entity_ingests: counter("unknown_entity_ingests"),
            queue_depth: gauge("queue_depth"),
            restarts: counter("restarts"),
            degraded: gauge("degraded"),
            fallback_forecasts: counter("fallback_forecasts"),
            batched_forecasts: counter("batched_forecasts"),
            batch_calls: counter("batch_calls"),
            repaired_samples: counter("repaired_samples"),
            quarantined_samples: counter("quarantined_samples"),
            gap_samples: counter("gap_samples"),
            refit_failures: counter("refit_failures"),
            refit_timeouts: counter("refit_timeouts"),
            refits_rejected: counter("refits_rejected"),
            interval_forecasts: counter("interval_forecasts"),
            interval_fallbacks: counter("interval_fallbacks"),
            reservations: counter("reservations"),
            scale_ups: counter("scale_ups"),
            scale_downs: counter("scale_downs"),
            forecast_ns: latency("forecast_ns"),
            ingest_ns: latency("ingest_ns"),
            refit_ns: latency("refit_ns"),
            restart_ns: latency("restart_ns"),
            score: Mutex::new(ScoreAccum::default()),
        }
    }

    /// Point-in-time snapshot for shard `shard`.
    pub fn snapshot(&self, shard: usize) -> ShardStats {
        let latency = self.forecast_ns.snapshot();
        let (mae, mse, scored) = {
            let score = lock_recover(&self.score);
            (score.mae(), score.mse(), score.scored)
        };
        ShardStats {
            shard,
            entities: self.entities.get_non_negative() as usize,
            ingested: self.ingested.get(),
            forecasts: self.forecasts.get(),
            refits_started: self.refits_started.get(),
            refits_completed: self.refits_completed.get(),
            rejected: self.rejected.get(),
            unknown_entity_ingests: self.unknown_entity_ingests.get(),
            queue_depth: self.queue_depth.get_non_negative() as usize,
            restarts: self.restarts.get(),
            degraded: self.degraded.get_non_negative() as usize,
            fallback_forecasts: self.fallback_forecasts.get(),
            batched_forecasts: self.batched_forecasts.get(),
            batch_calls: self.batch_calls.get(),
            repaired_samples: self.repaired_samples.get(),
            quarantined_samples: self.quarantined_samples.get(),
            gap_samples: self.gap_samples.get(),
            refit_failures: self.refit_failures.get(),
            refit_timeouts: self.refit_timeouts.get(),
            refits_rejected: self.refits_rejected.get(),
            interval_forecasts: self.interval_forecasts.get(),
            interval_fallbacks: self.interval_fallbacks.get(),
            reservations: self.reservations.get(),
            scale_ups: self.scale_ups.get(),
            scale_downs: self.scale_downs.get(),
            forecast_p50_us: latency.quantile(0.50).map(|n| n as f64 / 1_000.0),
            forecast_p99_us: latency.quantile(0.99).map(|n| n as f64 / 1_000.0),
            rolling_mae: mae,
            rolling_mse: mse,
            scored,
        }
    }
}

/// Point-in-time view of one shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    pub shard: usize,
    pub entities: usize,
    pub ingested: u64,
    pub forecasts: u64,
    pub refits_started: u64,
    pub refits_completed: u64,
    pub rejected: u64,
    pub unknown_entity_ingests: u64,
    pub queue_depth: usize,
    pub restarts: u64,
    pub degraded: usize,
    pub fallback_forecasts: u64,
    /// Forecasts answered through a batched (multi-entity) engine call.
    pub batched_forecasts: u64,
    /// Batched engine calls issued (each covers ≥2 entities).
    pub batch_calls: u64,
    pub repaired_samples: u64,
    pub quarantined_samples: u64,
    pub gap_samples: u64,
    pub refit_failures: u64,
    pub refit_timeouts: u64,
    pub refits_rejected: u64,
    /// Interval forecasts answered with live conformal offsets.
    pub interval_forecasts: u64,
    /// Interval requests answered from a degraded entity's last-good
    /// interval.
    pub interval_fallbacks: u64,
    /// Capacity reservations decided.
    pub reservations: u64,
    /// Reservation scale-up actions executed.
    pub scale_ups: u64,
    /// Reservation scale-down actions executed.
    pub scale_downs: u64,
    /// Median forecast latency in microseconds (`None` before any forecast),
    /// estimated from the shard's latency histogram buckets.
    pub forecast_p50_us: Option<f64>,
    /// 99th-percentile forecast latency in microseconds (histogram
    /// estimate, exact at the recorded maximum).
    pub forecast_p99_us: Option<f64>,
    /// Rolling MAE of forecasts scored against later-arriving truth.
    pub rolling_mae: f64,
    pub rolling_mse: f64,
    /// How many forecasts have been scored.
    pub scored: u64,
}

impl Default for ShardStats {
    fn default() -> Self {
        Self {
            shard: 0,
            entities: 0,
            ingested: 0,
            forecasts: 0,
            refits_started: 0,
            refits_completed: 0,
            rejected: 0,
            unknown_entity_ingests: 0,
            queue_depth: 0,
            restarts: 0,
            degraded: 0,
            fallback_forecasts: 0,
            batched_forecasts: 0,
            batch_calls: 0,
            repaired_samples: 0,
            quarantined_samples: 0,
            gap_samples: 0,
            refit_failures: 0,
            refit_timeouts: 0,
            refits_rejected: 0,
            interval_forecasts: 0,
            interval_fallbacks: 0,
            reservations: 0,
            scale_ups: 0,
            scale_downs: 0,
            forecast_p50_us: None,
            forecast_p99_us: None,
            rolling_mae: 0.0,
            rolling_mse: 0.0,
            scored: 0,
        }
    }
}

/// Fleet-wide view: one entry per shard plus aggregate helpers.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStats {
    pub shards: Vec<ShardStats>,
}

impl ServiceStats {
    /// Entities currently installed across all shards.
    pub fn total_entities(&self) -> usize {
        self.shards.iter().map(|s| s.entities).sum()
    }

    /// Samples applied across all shards.
    pub fn total_ingested(&self) -> u64 {
        self.shards.iter().map(|s| s.ingested).sum()
    }

    /// Forecasts answered across all shards (model, batched or fallback).
    pub fn total_forecasts(&self) -> u64 {
        self.shards.iter().map(|s| s.forecasts).sum()
    }

    /// Background refits that finished and installed a model.
    pub fn total_refits_completed(&self) -> u64 {
        self.shards.iter().map(|s| s.refits_completed).sum()
    }

    /// Samples rejected fleet-wide under `Reject` backpressure.
    pub fn total_rejected(&self) -> u64 {
        self.shards.iter().map(|s| s.rejected).sum()
    }

    /// Shard worker restarts after an escaped panic, fleet-wide.
    pub fn total_restarts(&self) -> u64 {
        self.shards.iter().map(|s| s.restarts).sum()
    }

    /// Entities currently serving from the naive fallback.
    pub fn total_degraded(&self) -> usize {
        self.shards.iter().map(|s| s.degraded).sum()
    }

    /// Forecasts answered by the fallback instead of the model.
    pub fn total_fallback_forecasts(&self) -> u64 {
        self.shards.iter().map(|s| s.fallback_forecasts).sum()
    }

    /// Forecasts answered through batched engine calls.
    pub fn total_batched_forecasts(&self) -> u64 {
        self.shards.iter().map(|s| s.batched_forecasts).sum()
    }

    /// Batched engine calls issued fleet-wide.
    pub fn total_batch_calls(&self) -> u64 {
        self.shards.iter().map(|s| s.batch_calls).sum()
    }

    /// Non-finite samples repaired at the shard boundary.
    pub fn total_repaired_samples(&self) -> u64 {
        self.shards.iter().map(|s| s.repaired_samples).sum()
    }

    /// Samples dropped at the shard boundary.
    pub fn total_quarantined_samples(&self) -> u64 {
        self.shards.iter().map(|s| s.quarantined_samples).sum()
    }

    /// Background refits that failed every attempt.
    pub fn total_refit_failures(&self) -> u64 {
        self.shards.iter().map(|s| s.refit_failures).sum()
    }

    /// Background refits abandoned at the deadline.
    pub fn total_refit_timeouts(&self) -> u64 {
        self.shards.iter().map(|s| s.refit_timeouts).sum()
    }

    /// Interval forecasts answered fleet-wide.
    pub fn total_interval_forecasts(&self) -> u64 {
        self.shards.iter().map(|s| s.interval_forecasts).sum()
    }

    /// Interval requests answered from a last-good interval fleet-wide.
    pub fn total_interval_fallbacks(&self) -> u64 {
        self.shards.iter().map(|s| s.interval_fallbacks).sum()
    }

    /// Capacity reservations decided fleet-wide.
    pub fn total_reservations(&self) -> u64 {
        self.shards.iter().map(|s| s.reservations).sum()
    }

    /// Scaling actions (up + down) executed fleet-wide — reservation churn.
    pub fn total_scale_actions(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.scale_ups + s.scale_downs)
            .sum()
    }

    /// Scored-count-weighted rolling MAE across shards.
    pub fn rolling_mae(&self) -> f64 {
        let scored: u64 = self.shards.iter().map(|s| s.scored).sum();
        if scored == 0 {
            return 0.0;
        }
        self.shards
            .iter()
            .map(|s| s.rolling_mae * s.scored as f64)
            .sum::<f64>()
            / scored as f64
    }

    /// Scored-count-weighted rolling MSE across shards.
    pub fn rolling_mse(&self) -> f64 {
        let scored: u64 = self.shards.iter().map(|s| s.scored).sum();
        if scored == 0 {
            return 0.0;
        }
        self.shards
            .iter()
            .map(|s| s.rolling_mse * s.scored as f64)
            .sum::<f64>()
            / scored as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_metrics_show_up_in_snapshot_and_registry() {
        let registry = Registry::new();
        let core = ShardStatsCore::new(&registry, 3);
        core.ingested.add(7);
        core.entities.inc();
        core.degraded.inc();
        for nanos in [10_000, 20_000, 30_000, 40_000] {
            core.forecast_ns.record(nanos);
        }
        let stats = core.snapshot(3);
        assert_eq!(stats.shard, 3);
        assert_eq!(stats.ingested, 7);
        assert_eq!(stats.entities, 1);
        assert_eq!(stats.degraded, 1);
        // p50 resolves to a bucket bound within the recorded envelope;
        // p99 is the exact recorded max.
        assert!(stats.forecast_p50_us.unwrap() <= stats.forecast_p99_us.unwrap());
        assert_eq!(stats.forecast_p99_us, Some(40.0));
        // The same numbers are visible through the registry export.
        let exported = registry.snapshot();
        assert!(exported
            .counters
            .contains(&("shard3.ingested".to_string(), 7)));
        assert!(exported
            .gauges
            .contains(&("shard3.degraded".to_string(), 1)));
    }

    #[test]
    fn same_registry_shard_names_are_disjoint() {
        let registry = Registry::new();
        let a = ShardStatsCore::new(&registry, 0);
        let b = ShardStatsCore::new(&registry, 1);
        a.ingested.inc();
        assert_eq!(a.ingested.get(), 1);
        assert_eq!(b.ingested.get(), 0, "shard metrics must not alias");
    }

    #[test]
    fn empty_latency_has_no_quantiles() {
        let core = ShardStatsCore::new(&Registry::new(), 0);
        let stats = core.snapshot(0);
        assert_eq!(stats.forecast_p50_us, None);
        assert_eq!(stats.forecast_p99_us, None);
    }

    #[test]
    fn score_accumulates_mae_and_mse() {
        let mut s = ScoreAccum::default();
        s.score(0.5, 0.7);
        s.score(0.9, 0.7);
        assert!((s.mae() - 0.2).abs() < 1e-6);
        assert!((s.mse() - 0.04).abs() < 1e-5);
        assert_eq!(s.scored, 2);
    }

    #[test]
    fn service_stats_aggregate_weighted() {
        let base = ShardStats {
            entities: 2,
            ingested: 10,
            forecasts: 5,
            refits_started: 1,
            refits_completed: 1,
            forecast_p50_us: Some(10.0),
            forecast_p99_us: Some(20.0),
            rolling_mae: 0.1,
            rolling_mse: 0.01,
            scored: 10,
            ..ShardStats::default()
        };
        let stats = ServiceStats {
            shards: vec![
                base.clone(),
                ShardStats {
                    shard: 1,
                    rolling_mae: 0.3,
                    scored: 30,
                    ..base
                },
            ],
        };
        assert_eq!(stats.total_ingested(), 20);
        assert_eq!(stats.total_entities(), 4);
        // (0.1*10 + 0.3*30) / 40 = 0.25
        assert!((stats.rolling_mae() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn fault_counters_aggregate() {
        let stats = ServiceStats {
            shards: vec![
                ShardStats {
                    restarts: 1,
                    degraded: 2,
                    fallback_forecasts: 5,
                    repaired_samples: 3,
                    quarantined_samples: 1,
                    refit_failures: 2,
                    refit_timeouts: 1,
                    ..ShardStats::default()
                },
                ShardStats {
                    shard: 1,
                    restarts: 2,
                    degraded: 1,
                    quarantined_samples: 4,
                    ..ShardStats::default()
                },
            ],
        };
        assert_eq!(stats.total_restarts(), 3);
        assert_eq!(stats.total_degraded(), 3);
        assert_eq!(stats.total_fallback_forecasts(), 5);
        assert_eq!(stats.total_repaired_samples(), 3);
        assert_eq!(stats.total_quarantined_samples(), 5);
        assert_eq!(stats.total_refit_failures(), 2);
        assert_eq!(stats.total_refit_timeouts(), 1);
    }

    #[test]
    fn lock_recover_survives_poisoning() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let m = Mutex::new(ScoreAccum::default());
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap();
            panic!("poison the lock");
        }));
        assert!(m.is_poisoned());
        lock_recover(&m).score(1.0, 2.0);
        assert_eq!(lock_recover(&m).scored, 1);
    }
}
