//! Deterministic, seeded fault injection for chaos-testing the serving
//! stack. A [`FaultPlan`] is built by a test (or a staging harness), handed
//! to [`ServiceConfig::faults`](crate::ServiceConfig), and consulted by the
//! shard workers and the refit pool at well-defined points:
//!
//! - **Poisoned samples**: corrupt a fraction of an entity's ingested
//!   samples with `NaN` *before* validation, exercising the repair /
//!   quarantine guardrails.
//! - **Panicking models**: unwind the shard worker while it processes a
//!   chosen entity's forecast, exercising supervision and restart.
//! - **Failing / slow refits**: make background refits for an entity fail
//!   permanently or sleep before training, exercising retry, backoff and
//!   timeout handling.
//! - **Queue saturation**: stall a shard for a duration per message so
//!   bounded queues fill and backpressure fires.
//!
//! All randomness derives from the plan's seed plus per-entity counters
//! (splitmix64), so a chaos run replays bit-identically.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::router::entity_hash;
use crate::stats::lock_recover;

/// What the refit pool should do with a job for a planned entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RefitFault {
    /// Every attempt fails (training is skipped and reported failed).
    Fail,
    /// Sleep this long before each training attempt (drives timeouts).
    Slow(Duration),
}

#[derive(Debug)]
struct PoisonRule {
    /// Fraction of this entity's samples to corrupt (0.0–1.0).
    rate: f64,
    /// Samples seen so far — the deterministic RNG counter.
    seen: u64,
}

#[derive(Debug, Default)]
struct Inner {
    seed: u64,
    poison: Mutex<HashMap<String, PoisonRule>>,
    /// Entity → remaining forecast-time panics.
    panic_forecast: Mutex<HashMap<String, u32>>,
    refit: Mutex<HashMap<String, RefitFault>>,
    /// Shard → (per-message stall, remaining stalled messages).
    stall: Mutex<HashMap<usize, (Duration, u32)>>,
}

/// A reproducible schedule of faults to inject into a
/// [`PredictionService`](crate::PredictionService).
///
/// Cloning is cheap and shares the underlying state, so the service and
/// the test observe the same remaining-fault budgets.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    inner: Arc<Inner>,
}

impl FaultPlan {
    /// An empty plan with a deterministic seed.
    pub fn seeded(seed: u64) -> Self {
        Self {
            inner: Arc::new(Inner {
                seed,
                ..Inner::default()
            }),
        }
    }

    /// Corrupt `rate` (0.0–1.0) of `entity`'s ingested samples with `NaN`
    /// before shard-boundary validation runs.
    pub fn poison_entity(self, entity: &str, rate: f64) -> Self {
        lock_recover(&self.inner.poison).insert(
            entity.to_string(),
            PoisonRule {
                rate: rate.clamp(0.0, 1.0),
                seen: 0,
            },
        );
        self
    }

    /// Panic the shard worker the next `times` times it forecasts for
    /// `entity` — simulating a model whose panic escapes into the worker.
    pub fn panic_on_forecast(self, entity: &str, times: u32) -> Self {
        lock_recover(&self.inner.panic_forecast).insert(entity.to_string(), times);
        self
    }

    /// Make every background refit for `entity` fail.
    pub fn fail_refit(self, entity: &str) -> Self {
        lock_recover(&self.inner.refit).insert(entity.to_string(), RefitFault::Fail);
        self
    }

    /// Delay every background refit attempt for `entity` by `delay`
    /// (drives the per-entity refit timeout).
    pub fn slow_refit(self, entity: &str, delay: Duration) -> Self {
        lock_recover(&self.inner.refit).insert(entity.to_string(), RefitFault::Slow(delay));
        self
    }

    /// Stall `shard` for `delay` on each of its next `messages` messages,
    /// saturating its bounded queue.
    pub fn stall_shard(self, shard: usize, delay: Duration, messages: u32) -> Self {
        lock_recover(&self.inner.stall).insert(shard, (delay, messages));
        self
    }

    /// Hook: possibly corrupt `sample` for `entity`. Returns `true` when a
    /// value was poisoned. Deterministic in (seed, entity, sample index).
    pub(crate) fn corrupt_sample(&self, entity: &str, sample: &mut [f32]) -> bool {
        let mut poison = lock_recover(&self.inner.poison);
        let Some(rule) = poison.get_mut(entity) else {
            return false;
        };
        let draw = splitmix64(
            self.inner
                .seed
                .wrapping_add(entity_hash(entity))
                .wrapping_add(rule.seen.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        rule.seen += 1;
        if sample.is_empty() || (draw >> 11) as f64 / (1u64 << 53) as f64 >= rule.rate {
            return false;
        }
        let idx = (splitmix64(draw) % sample.len() as u64) as usize;
        sample[idx] = f32::NAN;
        true
    }

    /// Hook: should the shard panic while forecasting `entity`? Consumes
    /// one unit of the panic budget.
    pub(crate) fn take_forecast_panic(&self, entity: &str) -> bool {
        let mut panics = lock_recover(&self.inner.panic_forecast);
        match panics.get_mut(entity) {
            Some(left) if *left > 0 => {
                *left -= 1;
                true
            }
            _ => false,
        }
    }

    /// Deliberately unwind to emulate a model crash mid-forecast. The
    /// panic lives here — not on the serving path — so `shard.rs` stays
    /// free of panicking macros; the supervisor catches the unwind and
    /// degrades the entity exactly like a real model crash.
    pub(crate) fn forecast_panic_now(entity: &str) -> ! {
        panic!("fault injection: model panic while forecasting `{entity}`") // lint: allow(r2) — the injected fault itself; unwinding is this fn's contract
    }

    /// Hook: the planned fault for a refit of `entity`, if any.
    pub(crate) fn refit_fault(&self, entity: &str) -> Option<RefitFault> {
        lock_recover(&self.inner.refit).get(entity).copied()
    }

    /// Hook: how long shard `shard` should stall on the current message.
    pub(crate) fn message_stall(&self, shard: usize) -> Option<Duration> {
        let mut stall = lock_recover(&self.inner.stall);
        match stall.get_mut(&shard) {
            Some((delay, left)) if *left > 0 => {
                *left -= 1;
                Some(*delay)
            }
            _ => None,
        }
    }
}

/// splitmix64: tiny, high-quality mixing function — the standard choice
/// for deriving independent deterministic streams from a seed.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisoning_is_deterministic_per_seed() {
        let corrupt_pattern = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::seeded(seed).poison_entity("c_1", 0.5);
            (0..64)
                .map(|_| {
                    let mut s = vec![1.0f32, 2.0, 3.0];
                    plan.corrupt_sample("c_1", &mut s)
                })
                .collect()
        };
        let a = corrupt_pattern(7);
        let b = corrupt_pattern(7);
        let c = corrupt_pattern(8);
        assert_eq!(a, b, "same seed must replay identically");
        assert_ne!(a, c, "different seeds should differ");
        let hits = a.iter().filter(|&&x| x).count();
        assert!((10..=54).contains(&hits), "rate 0.5 wildly off: {hits}/64");
    }

    #[test]
    fn full_rate_poisons_every_sample_with_nan() {
        let plan = FaultPlan::seeded(1).poison_entity("e", 1.0);
        for _ in 0..16 {
            let mut s = vec![1.0f32, 2.0];
            assert!(plan.corrupt_sample("e", &mut s));
            assert!(s.iter().any(|v| v.is_nan()));
        }
        // Unplanned entities are untouched.
        let mut s = vec![1.0f32];
        assert!(!plan.corrupt_sample("other", &mut s));
        assert_eq!(s, vec![1.0]);
    }

    #[test]
    fn panic_budget_is_consumed() {
        let plan = FaultPlan::seeded(0).panic_on_forecast("e", 2);
        assert!(plan.take_forecast_panic("e"));
        assert!(plan.take_forecast_panic("e"));
        assert!(!plan.take_forecast_panic("e"));
        assert!(!plan.take_forecast_panic("other"));
    }

    #[test]
    fn refit_faults_and_stalls_are_scoped() {
        let plan = FaultPlan::seeded(0)
            .fail_refit("bad")
            .slow_refit("slow", Duration::from_millis(5))
            .stall_shard(1, Duration::from_millis(2), 1);
        assert_eq!(plan.refit_fault("bad"), Some(RefitFault::Fail));
        assert_eq!(
            plan.refit_fault("slow"),
            Some(RefitFault::Slow(Duration::from_millis(5)))
        );
        assert_eq!(plan.refit_fault("fine"), None);
        assert_eq!(plan.message_stall(1), Some(Duration::from_millis(2)));
        assert_eq!(plan.message_stall(1), None, "stall budget exhausted");
        assert_eq!(plan.message_stall(0), None);
    }

    #[test]
    fn clones_share_fault_budgets() {
        let plan = FaultPlan::seeded(0).panic_on_forecast("e", 1);
        let clone = plan.clone();
        assert!(clone.take_forecast_panic("e"));
        assert!(!plan.take_forecast_panic("e"));
    }
}
