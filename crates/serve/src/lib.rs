//! Sharded online prediction service for fleets of monitored entities.
//!
//! The offline pipeline in `rptcn` fits one predictor per container; this
//! crate turns that into a serving system for thousands of them:
//!
//! - **Sharding** ([`router`]): entity ids hash (FNV-1a) to a fixed shard,
//!   so one thread owns each entity and its messages stay FIFO-ordered.
//! - **Backpressure** ([`service`]): shard queues are bounded; callers
//!   choose between blocking and fail-fast [`ServeError::QueueFull`].
//! - **Shadow refits** ([`shard`](crate::service)): when an entity's refit
//!   cadence fires, the shard ships its history to a background training
//!   pool and keeps serving from the old model; the replacement is
//!   validated and swapped in between messages — ingest never blocks on
//!   training.
//! - **Supervision** ([`supervisor`]): shard workers run under
//!   `catch_unwind`; a panicking model restarts the shard loop with the
//!   surviving entities intact, degrades the culprit and counts the
//!   restart.
//! - **Degraded mode** ([`fallback`]): entities whose model errors,
//!   panics or emits non-finite values are served by an always-warm naive
//!   forecaster, and auto-recover on the next clean refit.
//! - **Ingest guardrails**: samples are validated at the shard boundary —
//!   NaN/Inf values repaired or quarantined, wrong arity dropped,
//!   sequence gaps forward-filled (the paper's cleaning step, online).
//! - **Probabilistic serving** ([`interval`]): every forecast can carry a
//!   split-conformal interval calibrated from the entity's rolling ingest
//!   residuals (two scalar offsets — zero extra allocations on the
//!   streaming path), and [`service::PredictionService::reserve`] turns
//!   interval + cost model into a Bayesian capacity reservation with
//!   scale-down hysteresis. Degraded entities answer from a journaled
//!   last-good interval, never an uncovered point estimate.
//! - **Fault injection** ([`faults`]): a seeded, deterministic
//!   [`FaultPlan`] drives chaos tests — poisoned samples, panicking
//!   models, failing/slow refits, saturated queues.
//! - **Checkpointing** ([`checkpoint`]): the full fleet (weights,
//!   preprocessing state, history) round-trips through a versioned binary
//!   file, and restored services resume bit-identical forecasts.
//! - **Observability** ([`stats`]): per-shard ingest/forecast/refit
//!   counters, restart/degraded/quarantine counters, queue depths, latency
//!   histograms and rolling online accuracy — all registered in an
//!   `obs::Registry` (exportable as text/JSON), with a bounded
//!   `obs::Journal` of operational events and an injectable `obs::Clock`
//!   so every timing-dependent test can run on virtual time.

pub mod checkpoint;
pub mod dedup;
pub mod error;
pub mod fallback;
pub mod faults;
pub mod interval;
pub mod router;
pub mod service;
mod shard;
pub mod stats;
pub mod supervisor;

pub use checkpoint::{load_fleet, save_fleet, FLEET_MAGIC, FLEET_VERSION};
pub use dedup::DedupCache;
pub use error::ServeError;
pub use fallback::FallbackForecaster;
pub use faults::FaultPlan;
pub use interval::{IntervalForecast, IntervalSource, Reservation};
pub use router::{entity_hash, group_by_shard, shard_for};
pub use service::{Backpressure, IngestGuard, PredictionService, RefitPolicy, ServiceConfig};
pub use stats::{lock_recover, EntityHealth, ServiceStats, ShardStats};
pub use supervisor::EntityHealthReport;
