//! Sharded online prediction service for fleets of monitored entities.
//!
//! The offline pipeline in `rptcn` fits one predictor per container; this
//! crate turns that into a serving system for thousands of them:
//!
//! - **Sharding** ([`router`]): entity ids hash (FNV-1a) to a fixed shard,
//!   so one thread owns each entity and its messages stay FIFO-ordered.
//! - **Backpressure** ([`service`]): shard queues are bounded; callers
//!   choose between blocking and fail-fast [`ServeError::QueueFull`].
//! - **Shadow refits** ([`shard`](crate::service)): when an entity's refit
//!   cadence fires, the shard ships its history to a background training
//!   pool and keeps serving from the old model; the replacement is swapped
//!   in between messages — ingest never blocks on training.
//! - **Checkpointing** ([`checkpoint`]): the full fleet (weights,
//!   preprocessing state, history) round-trips through a versioned binary
//!   file, and restored services resume bit-identical forecasts.
//! - **Observability** ([`stats`]): per-shard ingest/forecast/refit
//!   counters, queue depths, latency percentiles and rolling online
//!   accuracy.

pub mod checkpoint;
pub mod error;
pub mod router;
pub mod service;
mod shard;
pub mod stats;

pub use checkpoint::{load_fleet, save_fleet, FLEET_MAGIC, FLEET_VERSION};
pub use error::ServeError;
pub use router::{entity_hash, group_by_shard, shard_for};
pub use service::{Backpressure, PredictionService, ServiceConfig};
pub use stats::{ServiceStats, ShardStats};
