//! Bounded request-deduplication cache for idempotent ingest.
//!
//! The distributed tier delivers mutating requests *at least once*: a
//! reply lost to a partition makes the router retry the same logical
//! request, and a faulty link can duplicate a frame outright. Without
//! dedup, a retried ingest is applied twice and every downstream
//! forecast is computed from a corrupted history. A node therefore
//! remembers the replies of recently executed mutating requests, keyed
//! by their globally unique request id, and answers a replay with the
//! cached reply instead of re-executing — turning at-least-once
//! delivery into exactly-once *effect*.
//!
//! The cache is a fixed-capacity FIFO: insertion evicts the oldest
//! entry once full, so memory stays bounded no matter how long a node
//! lives. Capacity should comfortably exceed the number of in-flight
//! retryable requests (a few thousand), not the node's lifetime request
//! count.

use std::collections::{HashMap, VecDeque};

/// A bounded FIFO cache mapping request ids to their first reply.
///
/// Generic over the stored value so the serving layer stays free of any
/// wire-protocol dependency: the net tier stores encoded reply messages,
/// tests can store plain integers.
#[derive(Debug)]
pub struct DedupCache<V> {
    capacity: usize,
    order: VecDeque<u64>,
    entries: HashMap<u64, V>,
    hits: u64,
}

impl<V: Clone> DedupCache<V> {
    /// A cache retaining at most `capacity` request ids (at least one).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        DedupCache {
            capacity,
            order: VecDeque::with_capacity(capacity),
            entries: HashMap::with_capacity(capacity),
            hits: 0,
        }
    }

    /// Maximum number of retained request ids.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of request ids currently retained.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Replays observed via [`DedupCache::get`] since creation.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// The cached reply for `request_id`, if this id was already
    /// executed. Counts a hit when present.
    pub fn get(&mut self, request_id: u64) -> Option<V> {
        let found = self.entries.get(&request_id).cloned();
        if found.is_some() {
            self.hits += 1;
        }
        found
    }

    /// Whether `request_id` is retained, without counting a hit.
    pub fn contains(&self, request_id: u64) -> bool {
        self.entries.contains_key(&request_id)
    }

    /// Remember the reply for `request_id`, evicting the oldest entry
    /// once the cache is full. Re-inserting an id refreshes its value
    /// but keeps its original eviction slot.
    pub fn insert(&mut self, request_id: u64, reply: V) {
        if self.entries.insert(request_id, reply).is_some() {
            return;
        }
        self.order.push_back(request_id);
        while self.order.len() > self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.entries.remove(&oldest);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_returns_cached_reply_and_counts_hits() {
        let mut cache: DedupCache<u32> = DedupCache::new(8);
        assert!(cache.get(1).is_none());
        assert_eq!(cache.hits(), 0);
        cache.insert(1, 77);
        assert_eq!(cache.get(1), Some(77));
        assert_eq!(cache.get(1), Some(77));
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capacity_is_enforced_fifo() {
        let mut cache: DedupCache<u32> = DedupCache::new(3);
        for id in 0..5u64 {
            cache.insert(id, id as u32);
        }
        assert_eq!(cache.len(), 3);
        assert!(!cache.contains(0), "oldest evicted first");
        assert!(!cache.contains(1));
        for id in 2..5u64 {
            assert!(cache.contains(id), "id {id} must survive");
        }
    }

    #[test]
    fn reinsert_refreshes_value_without_growing() {
        let mut cache: DedupCache<u32> = DedupCache::new(2);
        cache.insert(1, 10);
        cache.insert(1, 11);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(1), Some(11));
        cache.insert(2, 20);
        cache.insert(3, 30);
        assert!(!cache.contains(1), "1 was the oldest slot");
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut cache: DedupCache<u32> = DedupCache::new(0);
        assert_eq!(cache.capacity(), 1);
        cache.insert(1, 10);
        cache.insert(2, 20);
        assert_eq!(cache.len(), 1);
        assert!(cache.contains(2));
    }
}
