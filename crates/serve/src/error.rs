//! Service-level error type: everything that can go wrong between an
//! ingest call and a forecast reply.

use std::fmt;

use models::checkpoint::CheckpointError;
use timeseries::FrameError;

/// Errors surfaced by the prediction service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The entity id has never been onboarded (or lives on another service).
    UnknownEntity(String),
    /// An entity with this id is already being served.
    DuplicateEntity(String),
    /// The shard's ingest queue is full and the backpressure policy is
    /// [`Reject`](crate::service::Backpressure::Reject).
    QueueFull { shard: usize, entity: String },
    /// The shard worker thread is gone (service shutting down or panicked).
    ShardDown(usize),
    /// The entity's serving state is unusable: its model crashed or went
    /// non-finite *and* the naive fallback has no history to serve from.
    Poisoned(String),
    /// A background refit for this entity exceeded the configured deadline
    /// and was abandoned; the entity keeps serving from its previous model
    /// (or the fallback if it is degraded).
    RefitTimeout { entity: String },
    /// Preprocessing / pipeline failure (bad sample width, short history…).
    Frame(String),
    /// Checkpoint serialisation or restore failure.
    Checkpoint(String),
    /// The OS refused to spawn a worker thread while bringing the
    /// service up (resource exhaustion); the service cannot start.
    Spawn(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownEntity(id) => write!(f, "unknown entity `{id}`"),
            ServeError::DuplicateEntity(id) => write!(f, "entity `{id}` already exists"),
            ServeError::QueueFull { shard, entity } => {
                write!(
                    f,
                    "shard {shard} queue full, sample for `{entity}` rejected"
                )
            }
            ServeError::ShardDown(shard) => write!(f, "shard {shard} is down"),
            ServeError::Poisoned(id) => {
                write!(f, "entity `{id}` state is poisoned and no fallback is warm")
            }
            ServeError::RefitTimeout { entity } => {
                write!(f, "background refit for `{entity}` timed out")
            }
            ServeError::Frame(msg) => write!(f, "pipeline error: {msg}"),
            ServeError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            ServeError::Spawn(msg) => write!(f, "failed to spawn worker thread: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<FrameError> for ServeError {
    fn from(e: FrameError) -> Self {
        ServeError::Frame(e.0)
    }
}

impl From<CheckpointError> for ServeError {
    fn from(e: CheckpointError) -> Self {
        ServeError::Checkpoint(e.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_entity_and_shard() {
        let e = ServeError::QueueFull {
            shard: 3,
            entity: "c_42".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("shard 3") && msg.contains("c_42"), "{msg}");
    }

    #[test]
    fn conversions_preserve_messages() {
        let f: ServeError = FrameError("too short".into()).into();
        assert_eq!(f, ServeError::Frame("too short".into()));
        let c: ServeError = CheckpointError("bad magic".into()).into();
        assert_eq!(c, ServeError::Checkpoint("bad magic".into()));
    }
}
