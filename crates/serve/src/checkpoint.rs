//! Fleet checkpointing: the whole service — every entity's model weights,
//! preprocessing state and raw history — in one versioned binary file
//! (`magic + version + entity table`), built on the same wire primitives
//! as the single-model format in `models::checkpoint`.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use models::checkpoint::{read_model_state, wire, write_model_state, CheckpointError};
use rptcn::{PipelineConfig, PredictorState, ScalerScope, Scenario};
use tensor::Tensor;
use timeseries::{RepairPolicy, SplitRatios};

/// File magic for fleet (multi-entity service) checkpoints.
pub const FLEET_MAGIC: [u8; 4] = *b"RPTF";
/// Current fleet checkpoint format version.
pub const FLEET_VERSION: u32 = 1;

fn write_pipeline_config<W: Write>(w: &mut W, cfg: &PipelineConfig) -> Result<(), CheckpointError> {
    wire::write_str(w, &cfg.target)?;
    wire::write_u32(
        w,
        match cfg.scenario {
            Scenario::Uni => 0,
            Scenario::Mul => 1,
            Scenario::MulExp => 2,
        },
    )?;
    wire::write_u64(w, cfg.window as u64)?;
    wire::write_u64(w, cfg.horizon as u64)?;
    wire::write_f64(w, cfg.ratios.train)?;
    wire::write_f64(w, cfg.ratios.valid)?;
    wire::write_f64(w, cfg.ratios.test)?;
    wire::write_u32(
        w,
        match cfg.repair {
            RepairPolicy::DropRows => 0,
            RepairPolicy::Interpolate => 1,
            RepairPolicy::ForwardFill => 2,
        },
    )?;
    wire::write_u64(w, cfg.expansion_copies as u64)?;
    wire::write_u32(
        w,
        match cfg.scaler_scope {
            ScalerScope::TrainOnly => 0,
            ScalerScope::Global => 1,
        },
    )?;
    Ok(())
}

fn read_pipeline_config<R: Read>(r: &mut R) -> Result<PipelineConfig, CheckpointError> {
    let target = wire::read_str(r)?;
    let scenario = match wire::read_u32(r)? {
        0 => Scenario::Uni,
        1 => Scenario::Mul,
        2 => Scenario::MulExp,
        other => return Err(CheckpointError(format!("unknown scenario tag {other}"))),
    };
    let window = wire::read_u64(r)? as usize;
    let horizon = wire::read_u64(r)? as usize;
    let (train, valid, test) = (wire::read_f64(r)?, wire::read_f64(r)?, wire::read_f64(r)?);
    let ratios = SplitRatios::new(train, valid, test)
        .map_err(|e| CheckpointError(format!("bad split ratios in checkpoint: {}", e.0)))?;
    let repair = match wire::read_u32(r)? {
        0 => RepairPolicy::DropRows,
        1 => RepairPolicy::Interpolate,
        2 => RepairPolicy::ForwardFill,
        other => return Err(CheckpointError(format!("unknown repair tag {other}"))),
    };
    let expansion_copies = wire::read_u64(r)? as usize;
    let scaler_scope = match wire::read_u32(r)? {
        0 => ScalerScope::TrainOnly,
        1 => ScalerScope::Global,
        other => return Err(CheckpointError(format!("unknown scaler-scope tag {other}"))),
    };
    Ok(PipelineConfig {
        target,
        scenario,
        window,
        horizon,
        ratios,
        repair,
        expansion_copies,
        scaler_scope,
    })
}

/// Serialise one entity's complete predictor state.
pub fn write_predictor_state<W: Write>(
    w: &mut W,
    state: &PredictorState,
) -> Result<(), CheckpointError> {
    write_model_state(w, &state.model)?;
    write_pipeline_config(w, &state.cfg)?;
    wire::write_u32(w, state.names.len() as u32)?;
    for name in &state.names {
        wire::write_str(w, name)?;
    }
    // History columns ride as rank-1 tensors to reuse the bounded reader.
    wire::write_u32(w, state.history.len() as u32)?;
    for col in &state.history {
        wire::write_tensor(w, &Tensor::from_vec(col.clone(), &[col.len()]))?;
    }
    wire::write_u32(w, state.scaler_columns.len() as u32)?;
    for (name, min, max) in &state.scaler_columns {
        wire::write_str(w, name)?;
        wire::write_f32(w, *min)?;
        wire::write_f32(w, *max)?;
    }
    wire::write_u32(w, state.selected.len() as u32)?;
    for name in &state.selected {
        wire::write_str(w, name)?;
    }
    wire::write_str(w, &state.expanded_target)?;
    wire::write_u64(w, state.samples_since_fit as u64)?;
    wire::write_u64(w, state.refit_every as u64)?;
    Ok(())
}

/// Inverse of [`write_predictor_state`].
pub fn read_predictor_state<R: Read>(r: &mut R) -> Result<PredictorState, CheckpointError> {
    let model = read_model_state(r)?;
    let cfg = read_pipeline_config(r)?;
    let n_names = wire::read_u32(r)? as usize;
    if n_names > wire::MAX_STR {
        return Err(CheckpointError(format!(
            "implausible column count {n_names}"
        )));
    }
    let mut names = Vec::with_capacity(n_names);
    for _ in 0..n_names {
        names.push(wire::read_str(r)?);
    }
    let n_cols = wire::read_u32(r)? as usize;
    if n_cols > wire::MAX_STR {
        return Err(CheckpointError(format!(
            "implausible history column count {n_cols}"
        )));
    }
    let mut history = Vec::with_capacity(n_cols);
    for _ in 0..n_cols {
        history.push(wire::read_tensor(r)?.into_vec());
    }
    let n_scaler = wire::read_u32(r)? as usize;
    if n_scaler > wire::MAX_STR {
        return Err(CheckpointError(format!(
            "implausible scaler column count {n_scaler}"
        )));
    }
    let mut scaler_columns = Vec::with_capacity(n_scaler);
    for _ in 0..n_scaler {
        let name = wire::read_str(r)?;
        let min = wire::read_f32(r)?;
        let max = wire::read_f32(r)?;
        scaler_columns.push((name, min, max));
    }
    let n_selected = wire::read_u32(r)? as usize;
    if n_selected > wire::MAX_STR {
        return Err(CheckpointError(format!(
            "implausible selected count {n_selected}"
        )));
    }
    let mut selected = Vec::with_capacity(n_selected);
    for _ in 0..n_selected {
        selected.push(wire::read_str(r)?);
    }
    let expanded_target = wire::read_str(r)?;
    let samples_since_fit = wire::read_u64(r)? as usize;
    let refit_every = wire::read_u64(r)? as usize;
    Ok(PredictorState {
        model,
        cfg,
        names,
        history,
        scaler_columns,
        selected,
        expanded_target,
        samples_since_fit,
        refit_every,
    })
}

/// Write a framed fleet checkpoint: every `(entity id, state)` pair.
pub fn write_fleet<W: Write>(
    w: &mut W,
    entities: &[(String, PredictorState)],
) -> Result<(), CheckpointError> {
    w.write_all(&FLEET_MAGIC).map_err(CheckpointError::from)?;
    wire::write_u32(w, FLEET_VERSION)?;
    wire::write_u32(w, entities.len() as u32)?;
    for (id, state) in entities {
        wire::write_str(w, id)?;
        write_predictor_state(w, state)?;
    }
    Ok(())
}

/// Read a framed fleet checkpoint, rejecting bad magic / unknown versions.
pub fn read_fleet<R: Read>(r: &mut R) -> Result<Vec<(String, PredictorState)>, CheckpointError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic).map_err(CheckpointError::from)?;
    if magic != FLEET_MAGIC {
        return Err(CheckpointError(format!(
            "bad magic {magic:?}, expected {FLEET_MAGIC:?} — not a fleet checkpoint"
        )));
    }
    let version = wire::read_u32(r)?;
    if version != FLEET_VERSION {
        return Err(CheckpointError(format!(
            "unsupported fleet checkpoint version {version} (this build reads {FLEET_VERSION})"
        )));
    }
    let count = wire::read_u32(r)? as usize;
    if count > wire::MAX_STR {
        return Err(CheckpointError(format!("implausible entity count {count}")));
    }
    let mut entities = Vec::with_capacity(count);
    for _ in 0..count {
        let id = wire::read_str(r)?;
        let state = read_predictor_state(r)?;
        entities.push((id, state));
    }
    Ok(entities)
}

/// Save a fleet checkpoint to `path`.
pub fn save_fleet(
    path: &Path,
    entities: &[(String, PredictorState)],
) -> Result<(), CheckpointError> {
    let mut w = BufWriter::new(File::create(path).map_err(CheckpointError::from)?);
    write_fleet(&mut w, entities)?;
    w.flush().map_err(CheckpointError::from)?;
    Ok(())
}

/// Load a fleet checkpoint from `path`.
pub fn load_fleet(path: &Path) -> Result<Vec<(String, PredictorState)>, CheckpointError> {
    let mut r = BufReader::new(File::open(path).map_err(CheckpointError::from)?);
    read_fleet(&mut r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use models::checkpoint::ModelState;

    fn sample_entity(id: &str) -> (String, PredictorState) {
        let mut model = ModelState::new("Naive", 0, 2);
        model.push_meta("target_index", 0.0);
        (
            id.to_string(),
            PredictorState {
                model,
                cfg: PipelineConfig {
                    window: 12,
                    scenario: Scenario::MulExp,
                    ..Default::default()
                },
                names: vec!["cpu".into(), "mem".into()],
                history: vec![vec![0.1, 0.2, 0.3], vec![0.4, 0.5, 0.6]],
                scaler_columns: vec![("cpu".into(), 0.0, 1.0), ("mem".into(), 0.2, 0.8)],
                selected: vec!["cpu".into()],
                expanded_target: "cpu#lag0".into(),
                samples_since_fit: 7,
                refit_every: 100,
            },
        )
    }

    #[test]
    fn fleet_roundtrips_through_bytes() {
        let entities = vec![sample_entity("c_0"), sample_entity("c_1")];
        let mut buf = Vec::new();
        write_fleet(&mut buf, &entities).unwrap();
        let back = read_fleet(&mut buf.as_slice()).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].0, "c_0");
        assert_eq!(back[0].1.model, entities[0].1.model);
        assert_eq!(back[0].1.history, entities[0].1.history);
        assert_eq!(back[0].1.scaler_columns, entities[0].1.scaler_columns);
        assert_eq!(back[0].1.cfg.window, 12);
        assert_eq!(back[0].1.cfg.scenario, Scenario::MulExp);
        assert_eq!(back[1].1.samples_since_fit, 7);
        assert_eq!(back[1].1.refit_every, 100);
    }

    #[test]
    fn fleet_magic_and_version_are_checked() {
        let mut buf = Vec::new();
        write_fleet(&mut buf, &[sample_entity("c_0")]).unwrap();
        let mut bad_magic = buf.clone();
        bad_magic[0] = b'Z';
        assert!(read_fleet(&mut bad_magic.as_slice())
            .unwrap_err()
            .0
            .contains("bad magic"));
        let mut bad_version = buf;
        bad_version[4] = 42;
        assert!(read_fleet(&mut bad_version.as_slice())
            .unwrap_err()
            .0
            .contains("version"));
    }

    #[test]
    fn truncated_fleet_files_error() {
        let mut buf = Vec::new();
        write_fleet(&mut buf, &[sample_entity("c_0")]).unwrap();
        for cut in [0, 3, 4, 7, 8, buf.len() / 2, buf.len() - 1] {
            assert!(
                read_fleet(&mut &buf[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }
}
