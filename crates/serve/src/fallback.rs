//! Degraded-mode forecasting: a naive last-value / moving-average blend
//! that keeps an entity emitting *finite* forecasts while its real model is
//! broken (panicked, non-finite output, failed refit).
//!
//! Every entity keeps its fallback warm: the shard feeds it the target
//! value of each valid ingested sample, so the moment the model misbehaves
//! the fallback can answer without any bootstrap delay. Only finite values
//! are ever admitted, so a fallback forecast is finite by construction.

use std::collections::VecDeque;

/// Retained window of recent target values (enough for a stable mean,
/// small enough to track regime shifts quickly).
const DEFAULT_WINDOW: usize = 16;

/// A per-entity naive forecaster used when the model cannot be trusted.
#[derive(Debug, Clone)]
pub struct FallbackForecaster {
    window: VecDeque<f32>,
    capacity: usize,
}

impl Default for FallbackForecaster {
    fn default() -> Self {
        Self::new(DEFAULT_WINDOW)
    }
}

impl FallbackForecaster {
    /// An empty window retaining at most `capacity` observations.
    pub fn new(capacity: usize) -> Self {
        Self {
            window: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
        }
    }

    /// Warm the window from historical target values (oldest first).
    /// Non-finite values are skipped.
    pub fn seed(&mut self, history: &[f32]) {
        for &v in history {
            self.observe(v);
        }
    }

    /// Record one target observation; non-finite values are ignored so the
    /// window only ever holds values we could serve.
    pub fn observe(&mut self, value: f32) {
        if !value.is_finite() {
            return;
        }
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(value);
    }

    /// Number of finite observations currently retained.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// True before the first finite observation.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Naive forecast: a 50/50 blend of the last observation (persistence)
    /// and the window mean (smoothing), repeated across the horizon.
    /// `None` when no finite value has ever been observed — the caller maps
    /// that to [`ServeError::Poisoned`](crate::ServeError::Poisoned).
    pub fn forecast(&self, horizon: usize) -> Option<Vec<f32>> {
        let &last = self.window.back()?;
        let mean = self.window.iter().sum::<f32>() / self.window.len() as f32;
        let value = 0.5 * last + 0.5 * mean;
        debug_assert!(value.is_finite());
        Some(vec![value; horizon.max(1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_fallback_cannot_forecast() {
        assert_eq!(FallbackForecaster::default().forecast(1), None);
    }

    #[test]
    fn blends_last_and_mean() {
        let mut f = FallbackForecaster::new(4);
        f.seed(&[1.0, 2.0, 3.0, 4.0]);
        // mean = 2.5, last = 4.0 → 3.25
        let fc = f.forecast(3).unwrap();
        assert_eq!(fc, vec![3.25; 3]);
    }

    #[test]
    fn ignores_non_finite_observations() {
        let mut f = FallbackForecaster::new(8);
        f.observe(5.0);
        f.observe(f32::NAN);
        f.observe(f32::INFINITY);
        assert_eq!(f.len(), 1);
        let fc = f.forecast(2).unwrap();
        assert!(fc.iter().all(|v| v.is_finite()));
        assert_eq!(fc, vec![5.0; 2]);
    }

    #[test]
    fn window_is_bounded() {
        let mut f = FallbackForecaster::new(2);
        f.seed(&[1.0, 2.0, 3.0]);
        assert_eq!(f.len(), 2);
        // window = [2, 3]: mean 2.5, last 3 → 2.75
        assert_eq!(f.forecast(1).unwrap(), vec![2.75]);
    }

    #[test]
    fn horizon_zero_still_returns_one_value() {
        let mut f = FallbackForecaster::default();
        f.observe(1.0);
        assert_eq!(f.forecast(0).unwrap().len(), 1);
    }
}
