//! Interval parity: `forecast_with_interval` must answer with a point
//! block bitwise-identical to `forecast` — per entity and batched through
//! a shared group — because both ride the SAME forecast path; the interval
//! only attaches two scalar conformal offsets on top.

use models::{NaiveForecaster, NeuralTrainSpec, RptcnConfig, RptcnForecaster};
use rptcn::{Calibration, PipelineConfig, Scenario};
use serve::{IntervalSource, PredictionService, ServiceConfig};
use timeseries::TimeSeriesFrame;

fn bootstrap_frame(n: usize, phase: f32) -> TimeSeriesFrame {
    let cpu: Vec<f32> = (0..n)
        .map(|i| 40.0 + 25.0 * ((i as f32 * 0.2 + phase).sin()))
        .collect();
    let mem: Vec<f32> = (0..n)
        .map(|i| 30.0 + 10.0 * ((i as f32 * 0.13 + phase).cos()))
        .collect();
    TimeSeriesFrame::from_columns(&[("cpu_util_percent", cpu), ("mem_util_percent", mem)]).unwrap()
}

fn uni_config() -> PipelineConfig {
    PipelineConfig {
        scenario: Scenario::Uni,
        window: 12,
        horizon: 1,
        ..Default::default()
    }
}

/// Per-entity path with a real fitted RPTCN (tape-free serving engine):
/// the interval's point block is bitwise-identical to `forecast`, before
/// and after the conformal window calibrates.
#[test]
fn interval_point_block_matches_forecast_bitwise() {
    let mut service = PredictionService::new(ServiceConfig {
        shards: 2,
        refit_workers: 0,
        score_on_ingest: true,
        ..Default::default()
    })
    .expect("spawn service");
    service
        .add_entity(
            "vm-0",
            &bootstrap_frame(96, 0.0),
            uni_config(),
            Box::new(RptcnForecaster::new(RptcnConfig {
                channels: 4,
                levels: 1,
                fc_dim: 8,
                spec: NeuralTrainSpec {
                    epochs: 1,
                    ..Default::default()
                },
                ..Default::default()
            })),
        )
        .unwrap();

    // Cold: fewer than MIN_CALIBRATION_SAMPLES scored ingests.
    let point = service.forecast("vm-0").unwrap();
    let interval = service.forecast_with_interval("vm-0").unwrap();
    assert_eq!(interval.point.len(), point.len());
    for (a, b) in interval.point.iter().zip(&point) {
        assert_eq!(a.to_bits(), b.to_bits(), "cold interval point diverged");
    }
    assert_eq!(interval.calibration, Calibration::Insufficient);
    assert_eq!(interval.source, IntervalSource::Live);
    assert!(interval.offset_lo <= interval.offset_hi);
    assert!(interval.lower(0) <= interval.upper(0));

    // Warm the conformal window past the calibration threshold.
    for i in 0..16 {
        service
            .ingest("vm-0", vec![45.0 + (i as f32 * 0.7).sin() * 20.0, 31.0])
            .unwrap();
    }
    service.flush().unwrap();

    let point = service.forecast("vm-0").unwrap();
    let interval = service.forecast_with_interval("vm-0").unwrap();
    for (a, b) in interval.point.iter().zip(&point) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "calibrated interval point diverged"
        );
    }
    assert_eq!(interval.calibration, Calibration::Calibrated);
    assert_eq!(interval.source, IntervalSource::Live);
    assert!(interval.offset_lo.is_finite() && interval.offset_hi.is_finite());
    assert!(interval.offset_lo <= interval.offset_hi);

    let stats = service.stats();
    assert_eq!(stats.total_interval_forecasts(), 2, "{stats:?}");
    assert_eq!(stats.total_interval_fallbacks(), 0, "{stats:?}");
}

/// Batched path through a shared group: `forecast_with_interval_many`
/// point blocks are bitwise-identical to `forecast_many`, member by
/// member, and interval requests ride the same batched engine call.
#[test]
fn batched_interval_points_match_forecast_many_bitwise() {
    let mut service = PredictionService::new(ServiceConfig {
        shards: 1,
        refit_workers: 0,
        score_on_ingest: true,
        ..Default::default()
    })
    .expect("spawn service");
    let frames: Vec<(String, TimeSeriesFrame)> = (0..5)
        .map(|i| (format!("s_{i}"), bootstrap_frame(96, i as f32)))
        .collect();
    let refs: Vec<(&str, TimeSeriesFrame)> = frames
        .iter()
        .map(|(id, f)| (id.as_str(), f.clone()))
        .collect();
    service
        .add_entities_shared(&refs, uni_config(), Box::new(NaiveForecaster::new()))
        .unwrap();
    let ids: Vec<String> = frames.into_iter().map(|(id, _)| id).collect();
    for (i, id) in ids.iter().enumerate() {
        for j in 0..12 {
            service
                .ingest(id, vec![50.0 + i as f32 + j as f32 * 0.5, 31.0])
                .unwrap();
        }
    }
    service.flush().unwrap();

    let refs: Vec<&str> = ids.iter().map(String::as_str).collect();
    let points = service.forecast_many(&refs);
    let intervals = service.forecast_with_interval_many(&refs);
    assert_eq!(points.len(), intervals.len());
    for ((pid, pres), (iid, ires)) in points.iter().zip(&intervals) {
        assert_eq!(pid, iid, "caller-order mismatch");
        let point = pres.as_ref().unwrap();
        let interval = ires.as_ref().unwrap();
        assert_eq!(interval.point.len(), point.len());
        for (a, b) in interval.point.iter().zip(point) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "batched interval point diverged for {pid}"
            );
        }
        assert_eq!(interval.calibration, Calibration::Calibrated);
        assert_eq!(interval.source, IntervalSource::Live);
    }

    let stats = service.stats();
    assert_eq!(stats.total_interval_forecasts(), 5, "{stats:?}");
    // Both request waves used the shared-group batch path.
    assert_eq!(stats.total_batch_calls(), 2, "{stats:?}");
}
