//! Chaos tests: a seeded [`FaultPlan`] injects poisoned samples, panicking
//! models, failing/slow refits and queue saturation, and the service must
//! keep every guarantee it makes in clear weather — finite forecasts,
//! surviving shards, honest counters and automatic recovery. Every
//! injected fault must additionally leave a matching entry in the
//! service's event journal, attributed to the right shard and entity.

use std::time::{Duration, Instant};

use models::NaiveForecaster;
use obs::{EventKind, SimClock};
use rptcn::{PipelineConfig, Scenario};
use serve::{
    Backpressure, EntityHealth, FaultPlan, PredictionService, RefitPolicy, ServeError,
    ServiceConfig,
};
use timeseries::TimeSeriesFrame;

fn bootstrap_frame(n: usize, phase: f32) -> TimeSeriesFrame {
    let cpu: Vec<f32> = (0..n)
        .map(|i| 40.0 + 25.0 * ((i as f32 * 0.2 + phase).sin()))
        .collect();
    let mem: Vec<f32> = (0..n)
        .map(|i| 30.0 + 10.0 * ((i as f32 * 0.13 + phase).cos()))
        .collect();
    TimeSeriesFrame::from_columns(&[("cpu_util_percent", cpu), ("mem_util_percent", mem)]).unwrap()
}

fn uni_config() -> PipelineConfig {
    PipelineConfig {
        scenario: Scenario::Uni,
        window: 12,
        horizon: 1,
        ..Default::default()
    }
}

fn sample(i: usize, phase: f32) -> Vec<f32> {
    vec![
        40.0 + 25.0 * ((i as f32 * 0.2 + phase).sin()),
        30.0 + 10.0 * ((i as f32 * 0.13 + phase).cos()),
    ]
}

fn naive_service(config: ServiceConfig, entities: usize) -> PredictionService {
    let mut service = PredictionService::new(config).expect("spawn service");
    for i in 0..entities {
        service
            .add_entity(
                &format!("c_{i}"),
                &bootstrap_frame(96, i as f32),
                uni_config(),
                Box::new(NaiveForecaster::new()),
            )
            .unwrap();
    }
    service
}

fn assert_finite(id: &str, fc: &[f32]) {
    assert!(!fc.is_empty(), "empty forecast for {id}");
    assert!(
        fc.iter().all(|v| v.is_finite()),
        "non-finite forecast for {id}: {fc:?}"
    );
}

/// The acceptance scenario: a panicking model on one shard, NaN samples
/// for 10% of the fleet, and one permanently failing refit — all at once.
/// The service must (a) never return a non-finite forecast, (b) restart
/// the crashed shard and keep serving its other entities, (c) report
/// degraded / restart / quarantine counts, and (d) recover the crashed
/// entity to `Healthy` after a clean refit while the permanently failing
/// one stays `Degraded`.
#[test]
fn service_survives_combined_fault_plan() {
    const ENTITIES: usize = 24;
    let panicker = "c_0"; // model whose panic escapes into the shard worker
    let perm_fail = "c_1"; // degrades, then every recovery refit fails
    let poisoned = ["c_3", "c_11", "c_19"]; // 10% of the fleet streams NaN

    let mut plan = FaultPlan::seeded(42)
        .panic_on_forecast(panicker, 1)
        .panic_on_forecast(perm_fail, 1)
        .fail_refit(perm_fail);
    for id in poisoned {
        plan = plan.poison_entity(id, 1.0);
    }

    let service = naive_service(
        ServiceConfig {
            shards: 3,
            refit_every: 10,
            refit_workers: 2,
            faults: Some(plan),
            ..Default::default()
        },
        ENTITIES,
    );
    let crash_shard = service.shard_of(panicker);

    // Stream the fleet. Every sample of the poisoned entities arrives with
    // a NaN and must be repaired at the shard boundary.
    for i in 0..30 {
        for e in 0..ENTITIES {
            service
                .ingest(&format!("c_{e}"), sample(i, e as f32))
                .unwrap();
        }
    }
    // One malformed (wrong-arity) sample: unrepairable, must be quarantined.
    service.ingest("c_2", vec![50.0]).unwrap();
    service.flush().unwrap();

    // Trip both injected panics. The in-flight request observes ShardDown
    // (its reply sender died mid-unwind); the supervisor restarts the loop.
    for id in [panicker, perm_fail] {
        match service.forecast(id) {
            Err(ServeError::ShardDown(_)) => {}
            other => panic!("expected ShardDown from injected panic for {id}, got {other:?}"),
        }
    }
    service.flush().unwrap();

    // (a) + (b): after the crash every entity — including the crashed ones,
    // now on fallback, and the crashed shard's bystanders — serves finite
    // forecasts.
    let mut bystander_on_crash_shard = false;
    for e in 0..ENTITIES {
        let id = format!("c_{e}");
        let fc = service.forecast(&id).unwrap();
        assert_finite(&id, &fc);
        if id != panicker && service.shard_of(&id) == crash_shard {
            bystander_on_crash_shard = true;
        }
    }
    assert!(
        bystander_on_crash_shard,
        "no other entity shared shard {crash_shard}; weaken the test layout"
    );

    // (c): the counters tell the story.
    let stats = service.stats();
    assert!(
        stats.total_restarts() >= 2,
        "expected one restart per injected panic: {stats:?}"
    );
    assert!(
        stats.shards[crash_shard].restarts >= 1,
        "restart not attributed to the crashed shard"
    );
    assert!(
        stats.total_repaired_samples() >= 30,
        "poisoned samples were not repaired: {stats:?}"
    );
    assert!(
        stats.total_quarantined_samples() >= 1,
        "malformed sample was not quarantined: {stats:?}"
    );
    // The crashed entity may already have healed (naive refits are fast),
    // but the permanently failing one is still degraded and must have
    // answered from the fallback.
    assert!(
        stats.total_fallback_forecasts() >= 1,
        "degraded entities did not serve from the fallback: {stats:?}"
    );
    let health = service.entity_health().unwrap();
    assert_eq!(health.len(), ENTITIES);
    assert!(
        health[panicker].crashes >= 1,
        "crash not attributed to {panicker}: {:?}",
        health[panicker]
    );

    // (d): the panicker heals on the next clean refit; the permanently
    // failing entity stays degraded (still serving via fallback) and its
    // failures are counted.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        service.flush().unwrap();
        let health = service.entity_health().unwrap();
        let stats = service.stats();
        if health[panicker].health == EntityHealth::Healthy && stats.total_refit_failures() >= 1 {
            assert_eq!(
                health[perm_fail].health,
                EntityHealth::Degraded,
                "entity with permanently failing refits must stay degraded"
            );
            assert!(stats.total_degraded() >= 1);
            break;
        }
        assert!(
            Instant::now() < deadline,
            "no recovery before deadline: {health:?} {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // Healed entity serves from its model again; degraded one still answers.
    assert_finite(panicker, &service.forecast(panicker).unwrap());
    assert_finite(perm_fail, &service.forecast(perm_fail).unwrap());

    // Every injected fault left its trace in the journal, attributed to
    // the right shard and entity.
    let journal = service.journal();
    let restarts = journal.of_kind(EventKind::ShardRestart);
    assert!(
        restarts.len() >= 2,
        "expected a journal entry per escaped panic: {restarts:?}"
    );
    assert!(
        restarts
            .iter()
            .any(|e| e.shard == Some(crash_shard) && e.entity.as_deref() == Some(panicker)),
        "restart not attributed to {panicker} on shard {crash_shard}: {restarts:?}"
    );
    for id in poisoned {
        assert!(
            journal
                .for_entity(id)
                .iter()
                .any(|e| e.kind == EventKind::Repaired),
            "no repair event for poisoned entity {id}"
        );
    }
    assert!(
        journal
            .for_entity("c_2")
            .iter()
            .any(|e| e.kind == EventKind::Quarantined),
        "no quarantine event for the malformed sample"
    );
    for id in [panicker, perm_fail] {
        assert!(
            journal
                .for_entity(id)
                .iter()
                .any(|e| e.kind == EventKind::Degraded),
            "no degradation event for {id}"
        );
    }
    assert!(
        journal
            .for_entity(perm_fail)
            .iter()
            .any(|e| e.kind == EventKind::RefitFailed),
        "no refit-failure event for {perm_fail}"
    );
    assert!(
        journal
            .for_entity(panicker)
            .iter()
            .any(|e| e.kind == EventKind::RefitCompleted),
        "no refit-completion event for the healed {panicker}"
    );
}

/// A refit that outlives its per-attempt deadline is abandoned and counted,
/// and the entity keeps serving from the model it already has. The whole
/// scenario — a 400ms injected delay, a 50ms deadline, exponential backoff
/// between attempts — runs on a [`SimClock`], so the injected sleeps
/// advance virtual time instantly and the test finishes without ever
/// sleeping real wall-time for the faults themselves.
#[test]
fn slow_refits_hit_the_deadline_and_are_abandoned() {
    let sim = SimClock::new();
    let plan = FaultPlan::seeded(7).slow_refit("c_0", Duration::from_millis(400));
    let service = naive_service(
        ServiceConfig {
            shards: 1,
            refit_every: 4,
            refit_workers: 1,
            refit_policy: RefitPolicy {
                max_attempts: 2,
                backoff: Duration::from_millis(5),
                backoff_max: Duration::from_millis(20),
                timeout: Some(Duration::from_millis(50)),
            },
            clock: sim.shared(),
            faults: Some(plan),
            ..Default::default()
        },
        1,
    );
    for i in 0..4 {
        service.ingest("c_0", sample(i, 0.0)).unwrap();
    }
    // The refit worker runs on its own thread, so we still poll for its
    // verdict — but every injected 400ms delay and 5–20ms backoff advances
    // the virtual clock instead of stalling the suite.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        service.flush().unwrap();
        let stats = service.stats();
        if stats.total_refit_timeouts() >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "refit never timed out: {stats:?}"
        );
        std::thread::yield_now();
    }
    // A timed-out refit is an operational event, not a model failure: the
    // entity keeps its working model and stays healthy.
    let health = service.entity_health().unwrap();
    assert_eq!(health["c_0"].health, EntityHealth::Healthy);
    assert!(matches!(
        health["c_0"].last_error,
        Some(ServeError::RefitTimeout { .. })
    ));
    assert_finite("c_0", &service.forecast("c_0").unwrap());
    // The abandonment is journalled at a virtual timestamp on the shared
    // timeline, attributed to the slow entity.
    let timeouts = service.journal().of_kind(EventKind::RefitTimedOut);
    assert!(
        timeouts
            .iter()
            .any(|e| e.entity.as_deref() == Some("c_0") && e.shard == Some(0)),
        "no timeout event for c_0: {timeouts:?}"
    );
    // Virtual time moved: at least one full injected delay elapsed.
    assert!(
        timeouts
            .iter()
            .any(|e| e.at_nanos >= Duration::from_millis(50).as_nanos() as u64),
        "timeout journalled before the virtual deadline could pass: {timeouts:?}"
    );
}

/// A stalled shard saturates its bounded queue; under `Reject` the caller
/// sees `QueueFull` for the overflow and every drop is counted.
#[test]
fn stalled_shard_saturates_queue_and_backpressure_fires() {
    let plan = FaultPlan::seeded(3).stall_shard(0, Duration::from_millis(20), 50);
    let service = naive_service(
        ServiceConfig {
            shards: 1,
            queue_capacity: 2,
            backpressure: Backpressure::Reject,
            refit_workers: 0,
            score_on_ingest: false,
            faults: Some(plan),
            ..Default::default()
        },
        2,
    );
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    for i in 0..200 {
        match service.ingest("c_0", sample(i, 0.0)) {
            Ok(()) => accepted += 1,
            Err(ServeError::QueueFull { .. }) => rejected += 1,
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert!(rejected > 0, "queue never filled despite the stall");
    service.flush().unwrap();
    let stats = service.stats();
    assert_eq!(stats.total_ingested(), accepted);
    assert_eq!(stats.total_rejected(), rejected);
    // One journal entry per drop, attributed to the saturated shard and
    // the entity whose sample was turned away.
    let journal = service.journal();
    let drops = journal.of_kind(EventKind::QueueRejected);
    assert_eq!(drops.len() as u64, rejected, "drop events != rejections");
    assert!(
        drops
            .iter()
            .all(|e| e.shard == Some(0) && e.entity.as_deref() == Some("c_0")),
        "misattributed drop event: {drops:?}"
    );
}

/// Probabilistic serving under fire: once an entity degrades, interval
/// and reservation requests are answered from its journaled last-good
/// interval — never an uncovered live point estimate — and a degraded
/// entity that never produced a calibrated interval gets a widened
/// fallback with `Insufficient` calibration instead of a bare point.
#[test]
fn degraded_entity_reserves_from_last_good_interval() {
    use rptcn::Calibration;
    use serve::IntervalSource;

    // The fault plan shares state across clones: keep a handle so panics
    // can be armed mid-test, after the last-good interval exists.
    let plan = FaultPlan::seeded(9);
    let service = naive_service(
        ServiceConfig {
            shards: 1,
            refit_workers: 0,
            score_on_ingest: true,
            faults: Some(plan.clone()),
            ..Default::default()
        },
        3,
    );
    // Calibrate every entity's conformal window past the threshold.
    for i in 0..16 {
        for e in 0..3 {
            service
                .ingest(&format!("c_{e}"), sample(i, e as f32))
                .unwrap();
        }
    }
    service.flush().unwrap();

    // A healthy reservation wave: c_0 and c_1 record calibrated last-good
    // intervals; c_2 deliberately gets none.
    let live = service.reserve_many(&["c_0", "c_1"]);
    for (id, res) in &live {
        let r = res.as_ref().unwrap_or_else(|e| panic!("{id}: {e}"));
        assert_eq!(r.source, IntervalSource::Live);
        assert_eq!(r.calibration, Calibration::Calibrated);
        assert!(r.reservation.is_finite());
    }
    let live_interval = service.forecast_with_interval("c_0").unwrap();

    // Now arm the panics and trip them: c_0 (with a last-good interval)
    // and c_2 (without one) both degrade.
    let _ = plan.clone().panic_on_forecast("c_0", 1);
    let _ = plan.clone().panic_on_forecast("c_2", 1);
    for id in ["c_0", "c_2"] {
        match service.forecast(id) {
            Err(ServeError::ShardDown(_)) => {}
            other => panic!("expected ShardDown from injected panic for {id}, got {other:?}"),
        }
        service.flush().unwrap();
    }
    let health = service.entity_health().unwrap();
    assert_eq!(health["c_0"].health, EntityHealth::Degraded);
    assert_eq!(health["c_2"].health, EntityHealth::Degraded);

    // Degraded-with-history: answered from the last-good interval, point
    // block bitwise-identical to the interval served while healthy.
    let fallback = service.forecast_with_interval("c_0").unwrap();
    assert_eq!(fallback.source, IntervalSource::LastGood);
    assert_eq!(fallback.calibration, Calibration::Calibrated);
    assert_eq!(fallback.point.len(), live_interval.point.len());
    for (a, b) in fallback.point.iter().zip(&live_interval.point) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "last-good interval must replay the healthy point block"
        );
    }
    assert!(fallback.offset_lo <= fallback.offset_hi);
    let reservation = service.reserve("c_0").unwrap();
    assert_eq!(reservation.source, IntervalSource::LastGood);
    assert_eq!(reservation.calibration, Calibration::Calibrated);
    assert!(reservation.reservation.is_finite());

    // Degraded-without-history: a widened fallback, never a bare point.
    let widened = service.forecast_with_interval("c_2").unwrap();
    assert_eq!(widened.source, IntervalSource::Widened);
    assert_eq!(widened.calibration, Calibration::Insufficient);
    assert!(widened.offset_lo < widened.offset_hi, "{widened:?}");
    assert!(widened.lower(0) < widened.upper(0));
    let widened_reservation = service.reserve("c_2").unwrap();
    assert_eq!(widened_reservation.source, IntervalSource::Widened);
    assert!(widened_reservation.reservation.is_finite());

    // The healthy bystander still serves live intervals.
    let bystander = service.forecast_with_interval("c_1").unwrap();
    assert_eq!(bystander.source, IntervalSource::Live);

    // Every fallback answer is journalled against the degraded entity.
    let journal = service.journal();
    let fallbacks = journal.of_kind(EventKind::IntervalFallback);
    assert!(
        fallbacks
            .iter()
            .any(|e| e.entity.as_deref() == Some("c_0") && e.shard == Some(0)),
        "no interval-fallback event for c_0: {fallbacks:?}"
    );
    assert!(
        fallbacks
            .iter()
            .any(|e| e.entity.as_deref() == Some("c_2") && e.detail.contains("widened")),
        "no widened-fallback event for c_2: {fallbacks:?}"
    );
    let stats = service.stats();
    assert!(
        stats.total_interval_fallbacks() >= 4,
        "fallback counter missed requests: {stats:?}"
    );
    assert!(stats.total_reservations() >= 4, "{stats:?}");
}

/// Sequence-numbered ingestion: gaps are detected and forward-filled (up
/// to the cap), stale replays are quarantined, and forecasts stay finite
/// throughout.
#[test]
fn sequence_gaps_are_counted_and_stale_replays_quarantined() {
    let service = naive_service(
        ServiceConfig {
            shards: 1,
            refit_workers: 0,
            ..Default::default()
        },
        1,
    );
    for seq in 0..5u64 {
        service
            .ingest_at("c_0", seq, sample(seq as usize, 0.0))
            .unwrap();
    }
    // Jump from 5 to 11: six missing samples.
    service.ingest_at("c_0", 11, sample(11, 0.0)).unwrap();
    // Replay an old sequence number: must be dropped, not applied.
    service.ingest_at("c_0", 3, vec![9_999.0, 9_999.0]).unwrap();
    service.flush().unwrap();

    let stats = service.stats();
    assert_eq!(stats.shards[0].gap_samples, 6);
    assert_eq!(stats.shards[0].quarantined_samples, 1);
    let fc = service.forecast("c_0").unwrap();
    assert_finite("c_0", &fc);
    // The stale replay's absurd value must not have reached the model.
    assert!(
        fc[0] < 1_000.0,
        "stale replay leaked into the history: {fc:?}"
    );
    // The drop is journalled against the replaying entity with the
    // offending sequence numbers in the detail.
    let quarantines = service.journal().of_kind(EventKind::Quarantined);
    assert!(
        quarantines
            .iter()
            .any(|e| e.entity.as_deref() == Some("c_0") && e.detail.contains("stale")),
        "stale replay left no quarantine event: {quarantines:?}"
    );
}
