//! Property tests for the no-NaN-out guarantee: however many NaN/Inf
//! values enter — in the bootstrap frame, in streamed samples, under
//! either ingest guard — every forecast the stack hands back is finite.

use models::NaiveForecaster;
use obs::{EventKind, SimClock};
use proptest::prelude::*;
use rptcn::{PipelineConfig, ResourcePredictor, Scenario};
use serve::{IngestGuard, PredictionService, ServiceConfig};
use timeseries::{clean, MinMaxScaler, RepairPolicy, TimeSeriesFrame};

const LEN: usize = 48;

fn series() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-50.0f32..150.0, LEN)
}

/// Positions to poison and which non-finite value to plant at each.
fn poison_mask(max: usize) -> impl Strategy<Value = Vec<(usize, usize)>> {
    proptest::collection::vec((0usize..LEN, 0usize..3), 0..max)
}

fn poison_value(kind: usize) -> f32 {
    [f32::NAN, f32::INFINITY, f32::NEG_INFINITY][kind]
}

fn poisoned_frame(
    mut cpu: Vec<f32>,
    mut mem: Vec<f32>,
    mask: &[(usize, usize)],
) -> TimeSeriesFrame {
    for (i, &(pos, kind)) in mask.iter().enumerate() {
        let col: &mut Vec<f32> = if i % 2 == 0 { &mut cpu } else { &mut mem };
        col[pos] = poison_value(kind);
    }
    TimeSeriesFrame::from_columns(&[("cpu_util_percent", cpu), ("mem_util_percent", mem)]).unwrap()
}

fn uni_config(repair: RepairPolicy) -> PipelineConfig {
    PipelineConfig {
        scenario: Scenario::Uni,
        window: 8,
        horizon: 1,
        repair,
        ..Default::default()
    }
}

proptest! {
    /// The offline path: a poisoned frame through cleaning and min-max
    /// scaling yields only finite values, under every repair policy.
    #[test]
    fn preprocess_and_scaler_swallow_non_finite_input(
        cpu in series(),
        mem in series(),
        mask in poison_mask(10),
        policy_idx in 0usize..3,
    ) {
        let frame = poisoned_frame(cpu, mem, &mask);
        let policy = [RepairPolicy::DropRows, RepairPolicy::Interpolate, RepairPolicy::ForwardFill][policy_idx];
        let (cleaned, _) = clean(&frame, policy);
        prop_assert!(cleaned.is_clean());
        let scaled = MinMaxScaler::fit(&cleaned).transform(&cleaned);
        for j in 0..scaled.num_columns() {
            for &v in scaled.column_at(j) {
                prop_assert!(v.is_finite(), "scaler leaked non-finite value {v}");
            }
        }
    }

    /// The full offline pipeline: fitting a predictor on a poisoned
    /// bootstrap frame and forecasting never yields non-finite output.
    #[test]
    fn predictor_fit_on_poisoned_bootstrap_forecasts_finite(
        cpu in series(),
        mem in series(),
        mask in poison_mask(8),
        policy_idx in 0usize..2,
    ) {
        let frame = poisoned_frame(cpu, mem, &mask);
        let policy = [RepairPolicy::Interpolate, RepairPolicy::ForwardFill][policy_idx];
        let (predictor, _) = ResourcePredictor::fit(
            Box::new(NaiveForecaster::new()),
            &frame,
            uni_config(policy),
        )
        .expect("repairing policies keep every row, so fit must succeed");
        let fc = predictor.forecast().unwrap();
        prop_assert!(!fc.is_empty());
        for v in fc {
            prop_assert!(v.is_finite(), "non-finite forecast {v}; mask {mask:?} policy {policy:?}");
        }
    }
}

proptest! {
    // Each case spins up a real service (threads and all); fewer, fatter
    // cases keep the suite fast without losing coverage.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The online path: streaming poisoned samples into a live service —
    /// under both ingest guards — never produces a non-finite forecast,
    /// and every poisoned sample is accounted for as repaired or
    /// quarantined.
    #[test]
    fn service_ingest_of_poisoned_samples_forecasts_finite(
        cpu in series(),
        mem in series(),
        mask in poison_mask(12),
        guard_idx in 0usize..2,
    ) {
        let guard = [IngestGuard::Repair, IngestGuard::Quarantine][guard_idx];
        // A virtual clock keeps the whole service off real wall-time and
        // stamps journal entries on a deterministic timeline.
        let mut service = PredictionService::new(ServiceConfig {
            shards: 1,
            refit_workers: 0,
            ingest_guard: guard,
            clock: SimClock::new().shared(),
            ..Default::default()
        })
        .expect("spawn service");
        service
            .add_entity(
                "c_0",
                &poisoned_frame(vec![50.0; LEN], vec![30.0; LEN], &[]),
                uni_config(RepairPolicy::ForwardFill),
                Box::new(NaiveForecaster::new()),
            )
            .unwrap();

        let frame = poisoned_frame(cpu, mem, &mask);
        let mut dirty = 0u64;
        for row in 0..frame.len() {
            let sample: Vec<f32> = (0..frame.num_columns())
                .map(|j| frame.column_at(j)[row])
                .collect();
            if sample.iter().any(|v| !v.is_finite()) {
                dirty += 1;
            }
            service.ingest("c_0", sample).unwrap();

            let fc = service.forecast("c_0").unwrap();
            prop_assert!(!fc.is_empty());
            for v in fc {
                prop_assert!(v.is_finite(), "non-finite forecast {v} after row {row}");
            }
        }
        service.flush().unwrap();
        let stats = service.stats();
        prop_assert_eq!(
            stats.total_repaired_samples() + stats.total_quarantined_samples(),
            dirty,
            "every poisoned sample must be repaired or quarantined"
        );
        match guard {
            IngestGuard::Repair => prop_assert_eq!(stats.total_quarantined_samples(), 0),
            IngestGuard::Quarantine => prop_assert_eq!(stats.total_repaired_samples(), 0),
        }
        // The journal agrees with the counters, event for event.
        let journal = service.journal();
        prop_assert_eq!(
            journal.count(EventKind::Quarantined) as u64,
            stats.total_quarantined_samples()
        );
        prop_assert_eq!(
            journal.count(EventKind::Repaired) as u64,
            stats.total_repaired_samples()
        );
    }
}
