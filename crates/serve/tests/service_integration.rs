//! End-to-end service tests: routing determinism, lossless ingestion under
//! backpressure, stats accounting, background refits and fleet
//! checkpoint/restore equivalence.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use models::{NaiveForecaster, NeuralTrainSpec, RptcnConfig, RptcnForecaster};
use rptcn::{PipelineConfig, Scenario};
use serve::{shard_for, Backpressure, PredictionService, ServeError, ServiceConfig};
use timeseries::TimeSeriesFrame;

static NEXT_FILE: AtomicU64 = AtomicU64::new(0);

fn scratch_path(tag: &str) -> PathBuf {
    let n = NEXT_FILE.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "rptcn-serve-test-{}-{tag}-{n}.bin",
        std::process::id()
    ))
}

fn bootstrap_frame(n: usize, phase: f32) -> TimeSeriesFrame {
    let cpu: Vec<f32> = (0..n)
        .map(|i| 40.0 + 25.0 * ((i as f32 * 0.2 + phase).sin()))
        .collect();
    let mem: Vec<f32> = (0..n)
        .map(|i| 30.0 + 10.0 * ((i as f32 * 0.13 + phase).cos()))
        .collect();
    TimeSeriesFrame::from_columns(&[("cpu_util_percent", cpu), ("mem_util_percent", mem)]).unwrap()
}

fn uni_config() -> PipelineConfig {
    PipelineConfig {
        scenario: Scenario::Uni,
        window: 12,
        horizon: 1,
        ..Default::default()
    }
}

fn sample(i: usize, phase: f32) -> Vec<f32> {
    vec![
        40.0 + 25.0 * ((i as f32 * 0.2 + phase).sin()),
        30.0 + 10.0 * ((i as f32 * 0.13 + phase).cos()),
    ]
}

fn naive_service(config: ServiceConfig, entities: usize) -> PredictionService {
    let mut service = PredictionService::new(config).expect("spawn service");
    for i in 0..entities {
        service
            .add_entity(
                &format!("c_{i}"),
                &bootstrap_frame(96, i as f32),
                uni_config(),
                Box::new(NaiveForecaster::new()),
            )
            .unwrap();
    }
    service
}

#[test]
fn shard_assignment_is_deterministic_and_stable() {
    let service = naive_service(
        ServiceConfig {
            shards: 5,
            refit_workers: 0,
            ..Default::default()
        },
        20,
    );
    for i in 0..20 {
        let id = format!("c_{i}");
        assert_eq!(service.shard_of(&id), shard_for(&id, 5));
        assert_eq!(service.shard_of(&id), service.shard_of(&id));
    }
    // Per-shard entity counts must sum to the fleet size.
    let stats = service.stats();
    assert_eq!(stats.total_entities(), 20);
    let nonempty = stats.shards.iter().filter(|s| s.entities > 0).count();
    assert!(nonempty > 1, "20 entities all landed on one of 5 shards");
}

#[test]
fn no_sample_loss_under_block_backpressure_with_tiny_queues() {
    // Queue capacity 2 forces constant backpressure; Block must deliver
    // every sample, from several producer threads at once.
    let service = naive_service(
        ServiceConfig {
            shards: 2,
            queue_capacity: 2,
            backpressure: Backpressure::Block,
            refit_workers: 0,
            ..Default::default()
        },
        8,
    );
    let per_thread = 200usize;
    let threads = 4usize;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let service = &service;
            scope.spawn(move || {
                for i in 0..per_thread {
                    let id = format!("c_{}", (t * per_thread + i) % 8);
                    service.ingest(&id, sample(i, t as f32)).unwrap();
                }
            });
        }
    });
    service.flush().unwrap();
    let stats = service.stats();
    assert_eq!(
        stats.total_ingested(),
        (threads * per_thread) as u64,
        "samples were lost under backpressure"
    );
    assert_eq!(stats.total_rejected(), 0);
    for shard in &stats.shards {
        assert_eq!(shard.queue_depth, 0, "shard {} not drained", shard.shard);
    }
}

#[test]
fn reject_backpressure_counts_every_dropped_sample() {
    let service = naive_service(
        ServiceConfig {
            shards: 1,
            queue_capacity: 1,
            backpressure: Backpressure::Reject,
            refit_workers: 0,
            ..Default::default()
        },
        2,
    );
    let mut accepted = 0u64;
    let mut rejected = 0u64;
    for i in 0..500 {
        match service.ingest("c_0", sample(i, 0.0)) {
            Ok(()) => accepted += 1,
            Err(ServeError::QueueFull { shard, entity }) => {
                assert_eq!(shard, 0);
                assert_eq!(entity, "c_0");
                rejected += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    service.flush().unwrap();
    let stats = service.stats();
    assert_eq!(stats.total_ingested(), accepted);
    assert_eq!(stats.total_rejected(), rejected);
    assert_eq!(accepted + rejected, 500);
    assert!(accepted > 0, "nothing was ever accepted");
}

#[test]
fn background_refits_complete_without_blocking_ingest() {
    let service = naive_service(
        ServiceConfig {
            shards: 2,
            refit_every: 10,
            refit_workers: 2,
            ..Default::default()
        },
        4,
    );
    for i in 0..40 {
        for e in 0..4 {
            service
                .ingest(&format!("c_{e}"), sample(i, e as f32))
                .unwrap();
        }
        // Forecasts keep flowing while refits are pending in the pool.
        let fc = service.forecast("c_0").unwrap();
        assert_eq!(fc.len(), 1);
    }
    service.flush().unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = service.stats();
        if stats.total_refits_completed() >= 4 {
            assert!(stats.shards.iter().map(|s| s.refits_started).sum::<u64>() >= 4);
            break;
        }
        assert!(
            Instant::now() < deadline,
            "refits never completed: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
        service.flush().unwrap();
    }
    // The swapped-in models must keep forecasting.
    for e in 0..4 {
        assert_eq!(service.forecast(&format!("c_{e}")).unwrap().len(), 1);
    }
}

#[test]
fn fleet_checkpoint_restore_resumes_identical_forecasts() {
    let mut service = PredictionService::new(ServiceConfig {
        shards: 2,
        refit_workers: 0,
        ..Default::default()
    })
    .expect("spawn service");
    // A mixed fleet: two real neural models plus naive fillers.
    for i in 0..2 {
        service
            .add_entity(
                &format!("rptcn_{i}"),
                &bootstrap_frame(120, i as f32),
                uni_config(),
                Box::new(RptcnForecaster::new(RptcnConfig {
                    channels: 6,
                    levels: 2,
                    fc_dim: 12,
                    spec: NeuralTrainSpec {
                        epochs: 2,
                        ..Default::default()
                    },
                    ..Default::default()
                })),
            )
            .unwrap();
    }
    for i in 0..6 {
        service
            .add_entity(
                &format!("naive_{i}"),
                &bootstrap_frame(96, i as f32),
                uni_config(),
                Box::new(NaiveForecaster::new()),
            )
            .unwrap();
    }
    for i in 0..20 {
        for id in service.entity_ids() {
            service.ingest(&id, sample(i, 0.3)).unwrap();
        }
    }
    service.flush().unwrap();

    let ids = service.entity_ids();
    let refs: Vec<&str> = ids.iter().map(String::as_str).collect();
    let before: Vec<Vec<f32>> = service
        .forecast_many(&refs)
        .into_iter()
        .map(|(_, r)| r.unwrap())
        .collect();

    let path = scratch_path("fleet");
    let written = service.checkpoint(&path).unwrap();
    assert_eq!(written, 8);
    drop(service);

    // Restore under a different shard layout: routing must not affect
    // forecasts, only placement.
    let restored = PredictionService::restore(
        &path,
        ServiceConfig {
            shards: 3,
            refit_workers: 0,
            ..Default::default()
        },
    )
    .unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(restored.entity_ids(), ids);

    let after: Vec<Vec<f32>> = restored
        .forecast_many(&refs)
        .into_iter()
        .map(|(_, r)| r.unwrap())
        .collect();
    for (id, (b, a)) in ids.iter().zip(before.iter().zip(&after)) {
        assert_eq!(b.len(), a.len());
        for (x, y) in b.iter().zip(a) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "forecast for {id} changed across checkpoint/restore: {x} vs {y}"
            );
        }
    }
}

#[test]
fn restore_rejects_garbage_files() {
    let path = scratch_path("garbage");
    std::fs::write(&path, b"definitely not a checkpoint").unwrap();
    let err = match PredictionService::restore(&path, ServiceConfig::default()) {
        Ok(_) => panic!("garbage file restored successfully"),
        Err(err) => err,
    };
    std::fs::remove_file(&path).ok();
    assert!(matches!(err, ServeError::Checkpoint(_)), "{err}");
}
