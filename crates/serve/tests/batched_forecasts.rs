//! Batched shard forecasts: entities onboarded with
//! `add_entities_shared` share one model's weights and are answered by a
//! single stacked engine call per shard — bit-identical to the per-entity
//! path — while degraded or faulted members fall back to individual
//! serving without disturbing their groupmates.

use models::NaiveForecaster;
use rptcn::{PipelineConfig, Scenario};
use serve::{EntityHealth, FaultPlan, PredictionService, ServeError, ServiceConfig};
use timeseries::TimeSeriesFrame;

fn bootstrap_frame(n: usize, phase: f32) -> TimeSeriesFrame {
    let cpu: Vec<f32> = (0..n)
        .map(|i| 40.0 + 25.0 * ((i as f32 * 0.2 + phase).sin()))
        .collect();
    let mem: Vec<f32> = (0..n)
        .map(|i| 30.0 + 10.0 * ((i as f32 * 0.13 + phase).cos()))
        .collect();
    TimeSeriesFrame::from_columns(&[("cpu_util_percent", cpu), ("mem_util_percent", mem)]).unwrap()
}

fn uni_config() -> PipelineConfig {
    PipelineConfig {
        scenario: Scenario::Uni,
        window: 12,
        horizon: 1,
        ..Default::default()
    }
}

fn shared_service(config: ServiceConfig, entities: usize) -> (PredictionService, Vec<String>) {
    let mut service = PredictionService::new(config).expect("spawn service");
    let frames: Vec<(String, TimeSeriesFrame)> = (0..entities)
        .map(|i| (format!("s_{i}"), bootstrap_frame(96, i as f32)))
        .collect();
    let refs: Vec<(&str, TimeSeriesFrame)> = frames
        .iter()
        .map(|(id, f)| (id.as_str(), f.clone()))
        .collect();
    service
        .add_entities_shared(&refs, uni_config(), Box::new(NaiveForecaster::new()))
        .unwrap();
    let ids = frames.into_iter().map(|(id, _)| id).collect();
    (service, ids)
}

#[test]
fn batched_forecasts_match_per_entity_path_bitwise() {
    let (service, ids) = shared_service(
        ServiceConfig {
            shards: 1,
            refit_workers: 0,
            score_on_ingest: false,
            ..Default::default()
        },
        5,
    );
    for (i, id) in ids.iter().enumerate() {
        service.ingest(id, vec![50.0 + i as f32, 31.0]).unwrap();
    }
    service.flush().unwrap();

    // Single-id requests are singleton groups and take the per-entity path.
    let singles: Vec<Vec<f32>> = ids.iter().map(|id| service.forecast(id).unwrap()).collect();
    let refs: Vec<&str> = ids.iter().map(String::as_str).collect();
    let batched = service.forecast_many(&refs);
    for ((id, res), single) in batched.iter().zip(&singles) {
        let fc = res.as_ref().unwrap();
        assert_eq!(fc.len(), 1);
        for (a, b) in fc.iter().zip(single) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "batched forecast for {id} differs from per-entity path: {a} vs {b}"
            );
        }
    }

    let stats = service.stats();
    assert_eq!(stats.total_batch_calls(), 1, "{stats:?}");
    assert_eq!(stats.total_batched_forecasts(), 5, "{stats:?}");
    // 5 singles + 5 batched.
    assert_eq!(stats.total_forecasts(), 10);
    assert_eq!(stats.total_fallback_forecasts(), 0);
}

#[test]
fn shared_onboarding_rejects_duplicates_and_empty_fleets() {
    let mut service = PredictionService::new(ServiceConfig {
        shards: 1,
        refit_workers: 0,
        ..Default::default()
    })
    .expect("spawn service");
    let err = service
        .add_entities_shared(&[], uni_config(), Box::new(NaiveForecaster::new()))
        .unwrap_err();
    assert!(matches!(err, ServeError::Frame(_)), "{err}");

    let frame = bootstrap_frame(96, 0.0);
    let err = service
        .add_entities_shared(
            &[("dup", frame.clone()), ("dup", frame)],
            uni_config(),
            Box::new(NaiveForecaster::new()),
        )
        .unwrap_err();
    assert!(matches!(err, ServeError::DuplicateEntity(_)), "{err}");
    assert_eq!(service.entity_count(), 0, "failed onboarding left entities");
}

#[test]
fn degraded_member_bypasses_the_batch_and_groupmates_keep_batching() {
    let (service, ids) = shared_service(
        ServiceConfig {
            shards: 1,
            refit_workers: 0,
            score_on_ingest: false,
            faults: Some(FaultPlan::seeded(7).panic_on_forecast("s_1", 1)),
            ..Default::default()
        },
        4,
    );
    let refs: Vec<&str> = ids.iter().map(String::as_str).collect();

    // First request: the injected panic kills the shard loop mid-batch; the
    // supervisor restarts it and the caller sees ShardDown for this request.
    let crashed = service.forecast_many(&refs);
    assert!(
        crashed
            .iter()
            .any(|(_, r)| matches!(r, Err(ServeError::ShardDown(_)))),
        "expected a ShardDown from the injected panic: {crashed:?}"
    );
    service.flush().unwrap();
    let health = service.entity_health().unwrap();
    assert_eq!(health["s_1"].health, EntityHealth::Degraded);
    assert_eq!(health["s_1"].crashes, 1);

    // Retry: the degraded member is served by its fallback on the
    // per-entity path while the three healthy groupmates share one call.
    let retried = service.forecast_many(&refs);
    for (id, res) in &retried {
        let fc = res.as_ref().unwrap_or_else(|e| panic!("{id} failed: {e}"));
        assert!(fc.iter().all(|v| v.is_finite()), "{id} returned {fc:?}");
    }
    let stats = service.stats();
    assert_eq!(stats.total_restarts(), 1);
    assert_eq!(stats.total_degraded(), 1);
    assert_eq!(stats.total_fallback_forecasts(), 1, "{stats:?}");
    assert_eq!(stats.total_batch_calls(), 1, "{stats:?}");
    assert_eq!(stats.total_batched_forecasts(), 3, "{stats:?}");
}

/// A shared group big enough to cross the batch executor's parallel
/// threshold: the stacked engine call inside `forecast_many` fans its rows
/// out over the pinned worker pool (inline on 1-core hosts). Either way the
/// batched answers must stay bitwise identical to the per-entity path —
/// with a real fitted RPTCN, not a toy forecaster, so the full conv →
/// attention → FC → head stack rides the GEMM microkernel.
#[test]
fn executor_sized_batch_matches_per_entity_path_bitwise() {
    use autograd::batch_exec::MIN_PARALLEL_ROWS;
    use models::{NeuralTrainSpec, RptcnConfig, RptcnForecaster};

    let entities = MIN_PARALLEL_ROWS + 2;
    let mut service = PredictionService::new(ServiceConfig {
        shards: 1,
        refit_workers: 0,
        score_on_ingest: false,
        ..Default::default()
    })
    .expect("spawn service");
    let frames: Vec<(String, TimeSeriesFrame)> = (0..entities)
        .map(|i| (format!("x_{i}"), bootstrap_frame(96, i as f32)))
        .collect();
    let refs: Vec<(&str, TimeSeriesFrame)> = frames
        .iter()
        .map(|(id, f)| (id.as_str(), f.clone()))
        .collect();
    service
        .add_entities_shared(
            &refs,
            uni_config(),
            Box::new(RptcnForecaster::new(RptcnConfig {
                channels: 4,
                levels: 1,
                fc_dim: 8,
                spec: NeuralTrainSpec {
                    epochs: 1,
                    ..Default::default()
                },
                ..Default::default()
            })),
        )
        .unwrap();
    let ids: Vec<String> = frames.into_iter().map(|(id, _)| id).collect();
    for (i, id) in ids.iter().enumerate() {
        service.ingest(id, vec![48.0 + i as f32, 29.0]).unwrap();
    }
    service.flush().unwrap();

    let singles: Vec<Vec<f32>> = ids.iter().map(|id| service.forecast(id).unwrap()).collect();
    let refs: Vec<&str> = ids.iter().map(String::as_str).collect();
    let batched = service.forecast_many(&refs);
    assert_eq!(batched.len(), entities);
    for ((id, res), single) in batched.iter().zip(&singles) {
        let fc = res.as_ref().unwrap_or_else(|e| panic!("{id}: {e:?}"));
        for (a, b) in fc.iter().zip(single) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "executor-sized batch diverged from per-entity path for {id}"
            );
        }
    }
    let stats = service.stats();
    assert_eq!(stats.total_batch_calls(), 1, "{stats:?}");
    assert_eq!(
        stats.total_batched_forecasts(),
        entities as u64,
        "{stats:?}"
    );
}
