#!/bin/sh
cd /root/repo
./target/release/fig8_pred_vs_true --out experiments > experiments/fig8_pred_vs_true.txt 2>>experiments/progress.log
./target/release/fig9_10_convergence --out experiments > experiments/fig9_10_convergence.txt 2>>experiments/progress.log
./target/release/ablation_components --entities 1 --out experiments > experiments/ablation_components.txt 2>>experiments/progress.log
./target/release/ablation_expansion --entities 1 --out experiments > experiments/ablation_expansion.txt 2>>experiments/progress.log
./target/release/ablation_vertical_vs_horizontal --entities 1 --out experiments > experiments/ablation_vertical_vs_horizontal.txt 2>>experiments/progress.log
./target/release/ablation_receptive_field --quick --out experiments > experiments/ablation_receptive_field.txt 2>>experiments/progress.log
./target/release/ablation_horizon --entities 1 --quick --out experiments > experiments/ablation_horizon.txt 2>>experiments/progress.log
./target/release/table2_extended --entities 1 --quick --out experiments > experiments/table2_extended.txt 2>>experiments/progress.log
./target/release/fig2_cpu_boxplot --out experiments > experiments/fig2_cpu_boxplot.txt 2>>experiments/progress.log
./target/release/fig3_underused --out experiments > experiments/fig3_underused.txt 2>>experiments/progress.log
echo TRIMMED_DONE >> experiments/progress.log
