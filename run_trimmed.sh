#!/bin/sh
cd /root/repo
./target/release/fig8_pred_vs_true --out experiments > experiments/fig8_pred_vs_true.txt 2>>experiments/progress.log
./target/release/fig9_10_convergence --out experiments > experiments/fig9_10_convergence.txt 2>>experiments/progress.log
./target/release/ablation_components --entities 1 --out experiments > experiments/ablation_components.txt 2>>experiments/progress.log
./target/release/ablation_expansion --entities 1 --out experiments > experiments/ablation_expansion.txt 2>>experiments/progress.log
./target/release/ablation_vertical_vs_horizontal --entities 1 --out experiments > experiments/ablation_vertical_vs_horizontal.txt 2>>experiments/progress.log
./target/release/ablation_receptive_field --quick --out experiments > experiments/ablation_receptive_field.txt 2>>experiments/progress.log
./target/release/ablation_horizon --entities 1 --quick --out experiments > experiments/ablation_horizon.txt 2>>experiments/progress.log
./target/release/table2_extended --entities 1 --quick --out experiments > experiments/table2_extended.txt 2>>experiments/progress.log
./target/release/fig2_cpu_boxplot --out experiments > experiments/fig2_cpu_boxplot.txt 2>>experiments/progress.log
./target/release/fig3_underused --out experiments > experiments/fig3_underused.txt 2>>experiments/progress.log
./target/release/bench_infer --quick > experiments/bench_infer.txt 2>>experiments/progress.log
# bench_infer must leave its machine-readable latency report behind; a
# missing or empty file means the run silently produced nothing — fail loudly
# instead of stamping TRIMMED_DONE over a broken run.
if [ ! -s BENCH_infer.json ]; then
    echo "FATAL: bench_infer produced no BENCH_infer.json" >&2
    echo "FATAL: bench_infer produced no BENCH_infer.json" >> experiments/progress.log
    exit 1
fi
./target/release/bench_fleet --quick --rounds 2 > experiments/bench_fleet.txt 2>>experiments/progress.log
# Same contract for the fleet benchmark: the distributed-tier run must
# leave its throughput/latency report behind or the run is broken.
if [ ! -s BENCH_fleet.json ]; then
    echo "FATAL: bench_fleet produced no BENCH_fleet.json" >&2
    echo "FATAL: bench_fleet produced no BENCH_fleet.json" >> experiments/progress.log
    exit 1
fi
./target/release/bench_sim --quick > experiments/bench_sim.txt 2>>experiments/progress.log
# The simulator smoke must leave its invariant report behind; bench_sim
# also exits non-zero if any seed violates a fleet invariant.
if [ ! -s BENCH_sim.json ]; then
    echo "FATAL: bench_sim produced no BENCH_sim.json" >&2
    echo "FATAL: bench_sim produced no BENCH_sim.json" >> experiments/progress.log
    exit 1
fi
./target/release/bench_decide --quick > experiments/bench_decide.txt 2>>experiments/progress.log
# The decision-layer bench must leave its frontier report behind;
# bench_decide also exits non-zero if the Bayesian layer fails to
# Pareto-dominate the reactive threshold baseline.
if [ ! -s BENCH_decide.json ]; then
    echo "FATAL: bench_decide produced no BENCH_decide.json" >&2
    echo "FATAL: bench_decide produced no BENCH_decide.json" >> experiments/progress.log
    exit 1
fi
# Static analysis sweep: deny findings and baseline drift abort the run,
# and the machine-readable SARIF report must exist afterwards.
./target/release/rptcn-analysis check --format sarif --out experiments/analysis.sarif > experiments/analysis.txt 2>>experiments/progress.log
if [ $? -ne 0 ]; then
    echo "FATAL: rptcn-analysis found deny findings or baseline drift" >&2
    echo "FATAL: rptcn-analysis found deny findings or baseline drift" >> experiments/progress.log
    exit 1
fi
if [ ! -s experiments/analysis.sarif ]; then
    echo "FATAL: rptcn-analysis produced no analysis.sarif" >&2
    echo "FATAL: rptcn-analysis produced no analysis.sarif" >> experiments/progress.log
    exit 1
fi
echo TRIMMED_DONE >> experiments/progress.log
