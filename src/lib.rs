//! # rptcn-repro — reproduction of "RPTCN: Resource Prediction for
//! # High-dynamic Workloads in Clouds based on Deep Learning" (CLUSTER 2021)
//!
//! This umbrella crate re-exports the whole workspace so examples and
//! downstream users need a single dependency:
//!
//! * [`tensor`] — dense numerical kernels (ndarray-lite, linalg, stats).
//! * [`autograd`] — tape-based reverse-mode autodiff, layers, optimisers.
//! * [`timeseries`] — cleaning, scaling, PCC screening, expansion, windows.
//! * [`cloudtrace`] — synthetic Alibaba-v2018-style cluster traces.
//! * [`models`] — RPTCN plus the ARIMA / XGBoost / LSTM / CNN-LSTM baselines.
//! * [`rptcn`] — the Algorithm-1 pipeline, online predictor and capacity
//!   planner.
//! * [`serve`] — sharded online prediction service with bounded ingest
//!   queues, background refits and fleet checkpointing.
//!
//! See `examples/quickstart.rs` for the 30-line happy path and DESIGN.md /
//! EXPERIMENTS.md for the experiment inventory.

pub use autograd;
pub use cloudtrace;
pub use models;
pub use rptcn;
pub use serve;
pub use tensor;
pub use timeseries;
