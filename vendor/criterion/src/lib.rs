//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no network access, so the workspace vendors the
//! subset of the criterion API its benches use: `Criterion`,
//! `benchmark_group` (+ `sample_size`, `throughput`), `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput` and the
//! `criterion_group!` / `criterion_main!` macros. Instead of criterion's
//! statistical machinery, each benchmark runs a calibrated timing loop
//! (warm-up → pick an iteration count that fills the measurement window →
//! take the best of three batches) and prints mean wall-time per iteration
//! plus throughput when declared. Good enough to compare configurations on
//! one machine; not a replacement for criterion's confidence intervals.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 3;
const MEASURE_WINDOW: Duration = Duration::from_millis(200);
const BATCHES: usize = 3;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().label, None, &mut f);
        self
    }
}

/// A named set of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the timing loop is self-calibrating.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.throughput, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        Self { label }
    }
}

/// Units the measured routine processes per iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Handed to the benchmark closure; times the routine it is given.
pub struct Bencher {
    per_iter: Option<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        let probe = Instant::now();
        black_box(f());
        let once = probe.elapsed().max(Duration::from_nanos(1));
        let iters = (MEASURE_WINDOW.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut best = Duration::MAX;
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let mean = start.elapsed() / iters as u32;
            best = best.min(mean);
        }
        self.per_iter = Some(best);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, f: &mut F) {
    let mut bencher = Bencher { per_iter: None };
    f(&mut bencher);
    match bencher.per_iter {
        Some(per_iter) => {
            let rate = throughput
                .map(|t| {
                    let (units, suffix) = match t {
                        Throughput::Elements(n) => (n, "elem/s"),
                        Throughput::Bytes(n) => (n, "B/s"),
                    };
                    let per_sec = units as f64 / per_iter.as_secs_f64();
                    format!("  thrpt: {} {suffix}", format_rate(per_sec))
                })
                .unwrap_or_default();
            println!("{label:<48} time: {}{rate}", format_duration(per_iter));
        }
        None => println!("{label:<48} (no measurement: Bencher::iter never called)"),
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn format_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2}G", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2}M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2}K", per_sec / 1e3)
    } else {
        format!("{per_sec:.1}")
    }
}

/// `criterion_group!(name, target1, target2, ...)` — generates a function
/// running every target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// `criterion_main!(group1, group2, ...)` — generates `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(10);
        group.throughput(Throughput::Elements(100));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(stub_group, sample_bench);

    #[test]
    fn group_runs_all_targets() {
        stub_group();
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500.0 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.50 ms");
        assert_eq!(format_rate(2_500_000.0), "2.50M");
        assert_eq!(format_rate(999.0), "999.0");
    }
}
