//! Offline stand-in for the `rayon` crate.
//!
//! The build container has no network access, so the workspace vendors the
//! subset of rayon it calls: `par_iter`, `into_par_iter`, `par_chunks_mut`
//! and the adapter chain `enumerate / map / filter_map / for_each / reduce /
//! collect / max_by`. Side-effecting terminals ([`ParIter::for_each`]) fan
//! work out over `std::thread::scope` so the hot kernels (matmul, conv1d)
//! keep real multi-core speedup; value-returning adapters run sequentially,
//! which is observationally identical for deterministic pipelines.

use std::num::NonZeroUsize;

/// Wrapper that gives any iterator rayon's parallel-iterator surface.
pub struct ParIter<I>(I);

fn worker_count() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

impl<I: Iterator> ParIter<I> {
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    pub fn map<F, R>(self, f: F) -> ParIter<std::iter::Map<I, F>>
    where
        F: FnMut(I::Item) -> R,
    {
        ParIter(self.0.map(f))
    }

    pub fn filter_map<F, R>(self, f: F) -> ParIter<std::iter::FilterMap<I, F>>
    where
        F: FnMut(I::Item) -> Option<R>,
    {
        ParIter(self.0.filter_map(f))
    }

    /// Parallel terminal: items are split into one stripe per core and
    /// consumed on scoped threads. Falls back to the current thread for
    /// tiny workloads.
    pub fn for_each<F>(self, f: F)
    where
        I::Item: Send,
        F: Fn(I::Item) + Send + Sync,
    {
        let mut items: Vec<I::Item> = self.0.collect();
        let workers = worker_count().min(items.len().max(1));
        if workers < 2 {
            items.into_iter().for_each(f);
            return;
        }
        let stripe = items.len().div_ceil(workers);
        std::thread::scope(|scope| {
            while !items.is_empty() {
                let take = stripe.min(items.len());
                let batch: Vec<I::Item> = items.drain(..take).collect();
                let f = &f;
                scope.spawn(move || batch.into_iter().for_each(f));
            }
        });
    }

    /// rayon-style reduce: fold from an identity element. Sequential.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: FnOnce() -> I::Item,
        OP: FnMut(I::Item, I::Item) -> I::Item,
    {
        let init = identity();
        self.0.fold(init, op)
    }

    /// Reduce without an identity element; `None` on an empty iterator.
    pub fn reduce_with<OP>(mut self, op: OP) -> Option<I::Item>
    where
        OP: FnMut(I::Item, I::Item) -> I::Item,
    {
        let first = self.0.next()?;
        Some(self.0.fold(first, op))
    }

    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    pub fn max_by<F>(self, compare: F) -> Option<I::Item>
    where
        F: FnMut(&I::Item, &I::Item) -> std::cmp::Ordering,
    {
        self.0.max_by(compare)
    }

    pub fn min_by<F>(self, compare: F) -> Option<I::Item>
    where
        F: FnMut(&I::Item, &I::Item) -> std::cmp::Ordering,
    {
        self.0.min_by(compare)
    }

    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }
}

/// `collection.into_par_iter()` for anything iterable (ranges, vecs).
pub trait IntoParallelIterator: IntoIterator + Sized {
    fn into_par_iter(self) -> ParIter<Self::IntoIter> {
        ParIter(self.into_iter())
    }
}

impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

/// `slice.par_iter()` — `Vec` reaches this through auto-deref.
pub trait ParallelRefIterator {
    type Item;
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, Self::Item>>;
}

impl<T> ParallelRefIterator for [T] {
    type Item = T;
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter(self.iter())
    }
}

/// `slice.par_chunks_mut(n)` — disjoint mutable chunks, processable in
/// parallel through [`ParIter::for_each`].
pub trait ParallelSliceMut {
    type Item;
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, Self::Item>>;
}

impl<T> ParallelSliceMut for [T] {
    type Item = T;
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter(self.chunks_mut(size))
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter, ParallelRefIterator, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_for_each_touches_every_chunk() {
        let mut data = vec![0u64; 1000];
        data.par_chunks_mut(7)
            .enumerate()
            .for_each(|(i, chunk)| chunk.iter_mut().for_each(|v| *v = i as u64 + 1));
        assert!(data.iter().all(|&v| v > 0));
        assert_eq!(data[0], 1);
        assert_eq!(data[999], 1000u64.div_ceil(7));
    }

    #[test]
    fn map_reduce_matches_sequential() {
        let total =
            (0..100usize)
                .into_par_iter()
                .map(|i| vec![i; 3])
                .reduce(Vec::new, |mut a, b| {
                    a.extend(b);
                    a
                });
        assert_eq!(total.len(), 300);
        assert_eq!(total.iter().sum::<usize>(), 3 * 4950);
    }

    #[test]
    fn par_iter_filter_map_collect() {
        let v = [1, 2, 3, 4, 5];
        let odd: Vec<i32> = v
            .par_iter()
            .filter_map(|&x| (x % 2 == 1).then_some(x * 10))
            .collect();
        assert_eq!(odd, vec![10, 30, 50]);
    }
}
