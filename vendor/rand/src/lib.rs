//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access, so the workspace vendors the
//! thin slice of the rand 0.8 API it actually uses: `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`] and the [`Rng`] extension methods
//! `gen::<f32/f64/u64>()` and `gen_range` over `usize` ranges. The
//! generator is xoshiro256++ seeded through SplitMix64 — statistically
//! solid for simulation workloads, *not* the CSPRNG the real `StdRng` is.
//! Sequences therefore differ from upstream rand; everything downstream
//! only relies on determinism-per-seed, which this preserves.

use std::ops::{Range, RangeInclusive};

/// Minimal core trait: a source of uniformly random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable via [`Rng::gen`] (the subset of rand's `Standard`
/// distribution the workspace draws from).
pub trait StandardSample: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of mantissa entropy.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of mantissa entropy.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_sample_range!(usize, u64, u32, u8);

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        self.start + (self.end - self.start) * f32::sample(rng)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

/// The user-facing extension trait, blanket-implemented like upstream.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring rand's trait of the same name.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64 — deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expands the single word into four non-degenerate
            // state words (xoshiro must not be seeded all-zero).
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&f));
            let d = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(rng.gen_range(3usize..9) < 9);
            assert!(rng.gen_range(3usize..9) >= 3);
            let inc = rng.gen_range(0usize..=4);
            assert!(inc <= 4);
        }
    }

    #[test]
    fn uniformish_distribution() {
        let mut rng = StdRng::seed_from_u64(3);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
