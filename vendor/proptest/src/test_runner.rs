//! Deterministic case generation for the vendored proptest stand-in.

use std::fmt;

/// Error a proptest case body can return with `?`, mirroring upstream's
/// `TestCaseError`. The stub has no shrinking or rejection bookkeeping, so
/// one failure payload covers both.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        Self(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Per-test configuration. Only `cases` is consulted.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 128 keeps full-workspace test runs
        // quick while still sweeping a meaningful input space.
        Self { cases: 128 }
    }
}

/// xoshiro256++ seeded from a hash of `(test name, case index)` so every
/// case of every test draws from an independent, reproducible stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h ^= (case as u64).wrapping_mul(0x9E3779B97F4A7C15);
        let mut x = h;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}
