//! Value-generation strategies for the vendored proptest stand-in.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type. Unlike upstream proptest
/// there is no value tree / shrinking — `generate` yields a sample directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i64, i32, i16, i8);

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
