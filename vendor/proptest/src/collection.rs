//! Collection strategies for the vendored proptest stand-in.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specification accepted by [`vec`]: a fixed `usize` or a
/// half-open `Range<usize>`, mirroring upstream's `Into<SizeRange>`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
