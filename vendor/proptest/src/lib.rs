//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access, so the workspace vendors the
//! slice of proptest it uses: the [`proptest!`] macro, strategies over
//! numeric ranges / tuples / `collection::vec`, the `prop_map` /
//! `prop_flat_map` combinators and the `prop_assert*` / `prop_assume!`
//! macros. Cases are generated from a seed derived from the test's module
//! path and case index, so runs are fully deterministic. Shrinking and
//! failure persistence are not implemented — a failing case panics with the
//! generated inputs visible via the assertion message instead.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert inside a proptest body. Without shrinking there is no reason to
/// thread `Result`s through the body, so this maps directly to `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { assert!($($args)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { assert_eq!($($args)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)+) => { assert_ne!($($args)+) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
/// Expands to an early (successful) return from the per-case closure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

/// The `proptest! { ... }` block: an optional
/// `#![proptest_config(...)]` inner attribute followed by test functions
/// whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $(#[$attr:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                // The body runs inside a `Result` closure so it can use `?`
                // on `Result<_, TestCaseError>` helpers, as upstream allows.
                let __run = |__rng: &mut $crate::test_runner::TestRng|
                    -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    $body
                    ::core::result::Result::Ok(())
                };
                if let ::core::result::Result::Err(__e) = __run(&mut __rng) {
                    panic!("proptest case {} failed: {}", __case, __e);
                }
            }
        }
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    (config = $cfg:expr;) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, f in -1.0f32..1.0, s in 0u64..100) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!(s < 100);
        }

        #[test]
        fn tuples_and_assume((a, b) in (0usize..5, 0usize..5)) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        #[test]
        fn config_is_honoured(_x in 0u64..10) {
            // Four cases run; reaching the body is the assertion.
        }
    }

    #[test]
    fn vec_strategy_lengths() {
        let mut rng = crate::test_runner::TestRng::for_case("vec_strategy", 0);
        let fixed = crate::collection::vec(0.0f32..1.0, 5).generate(&mut rng);
        assert_eq!(fixed.len(), 5);
        for _ in 0..50 {
            let ranged = crate::collection::vec(0usize..3, 0..8).generate(&mut rng);
            assert!(ranged.len() < 8);
        }
    }

    #[test]
    fn flat_map_composes() {
        let strat = (1usize..4, 1usize..4).prop_flat_map(|(m, n)| {
            crate::collection::vec(0.0f32..1.0, m * n).prop_map(move |v| (m, n, v))
        });
        let mut rng = crate::test_runner::TestRng::for_case("flat_map", 1);
        for _ in 0..50 {
            let (m, n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), m * n);
        }
    }

    #[test]
    fn deterministic_per_case() {
        let a = crate::collection::vec(0.0f64..1.0, 10)
            .generate(&mut crate::test_runner::TestRng::for_case("det", 3));
        let b = crate::collection::vec(0.0f64..1.0, 10)
            .generate(&mut crate::test_runner::TestRng::for_case("det", 3));
        assert_eq!(a, b);
    }
}
